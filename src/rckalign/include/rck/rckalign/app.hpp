// rckAlign: the paper's application.
//
// A master-slaves all-vs-all protein structure comparison on the simulated
// SCC, built with the rckskel FARM construct exactly as in the paper's
// Figures 3-4: the master (first core given to the program) loads every
// structure, creates one job per unordered pair, and dispatches jobs to
// slave cores, collecting results by round-robin polling; slaves loop
// (receive pair -> compare -> return scores) until TERMINATE.
//
// Also here: the serial baseline runner (one core, structures pre-loaded,
// matching the paper's modified single-core TM-align).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rck/bio/protein.hpp"
#include "rck/noc/network.hpp"
#include "rck/rckalign/codec.hpp"
#include "rck/rckalign/cost_cache.hpp"
#include "rck/rckskel/skeletons.hpp"
#include "rck/scc/runtime.hpp"

namespace rck::rckalign {

/// Low-level option bundle for run_rckalign().
///
/// Prefer the consolidated rck::RunConfig (rck/rck.hpp), which validates its
/// fields and lowers to this struct via to_options(); RckAlignOptions remains
/// as the underlying form and for callers that need no validation.
struct RckAlignOptions {
  /// Number of slave cores (the paper sweeps 1..47); rank 0 is the master.
  int slave_count = 47;
  /// Chip / network / core-model configuration for the simulation.
  scc::RuntimeConfig runtime{};
  /// Pairwise results + costs computed up front; if null, slaves execute
  /// real TM-align inline (identical simulated times, more host CPU).
  const PairCache* cache = nullptr;
  /// Comparison method for all jobs.
  Method method = Method::TmAlign;
  /// LPT (longest-first) job ordering; the paper used FIFO.
  bool lpt = false;
  /// Farm grant size: jobs handed to a slave per round trip. With K > 1 the
  /// plain farm sends BATCH frames and slaves serve them with
  /// farm_slave_batch + kern::align_batch, packing independent TM-align
  /// pairs across SIMD lanes. Per-job results and cycle charges are
  /// bit-identical to K = 1; only the dispatch schedule (and host wall
  /// clock) changes. Requires the plain farm: incompatible with
  /// fault_tolerant / master_ft, which lease and retry individual jobs.
  std::size_t batch = 1;
  /// Use the fault-tolerant farm (leases, retry, blacklist) instead of the
  /// paper's plain FARM. Required whenever runtime.faults is non-empty, and
  /// harmless without faults (simulated makespan is within lease-bookkeeping
  /// noise of the plain farm).
  bool fault_tolerant = false;
  /// Resilience knobs for the fault-tolerant farm (leases, retries,
  /// timeouts); base.lpt_order is overridden by `lpt` above.
  rckskel::FaultTolerantFarmOptions ft{};
  /// Survive the master too: run the checkpointed farm master (periodic
  /// snapshots + heartbeats replicated to a standby) with the standby on
  /// rank slave_count + 1. Implies fault_tolerant; requires
  /// slave_count + 2 cores on the chip. The final matrix is byte-identical
  /// to the fault-free run even when the master crashes mid-farm.
  bool master_ft = false;
  /// Checkpoint cadence and heartbeat knobs for master_ft. The embedded
  /// mft.ft is overwritten by `ft` above (with standby_ue auto-derived as
  /// slave_count + 1), so only the master-ft-specific fields matter here.
  rckskel::MasterFtOptions mft{};
};

/// One collected pairwise result.
struct PairRow {
  std::uint32_t i = 0;
  std::uint32_t j = 0;
  double tm_norm_a = 0.0;
  double tm_norm_b = 0.0;
  double rmsd = 0.0;
  double seq_identity = 0.0;
  std::uint32_t aligned_length = 0;
  int worker = -1;  ///< slave rank that produced it

  bool operator==(const PairRow&) const = default;
};

/// Outcome of one simulated rckAlign execution.
struct RckAlignRun {
  noc::SimTime makespan = 0;  ///< simulated wall-clock of the whole task
  std::vector<PairRow> results;
  std::vector<scc::CoreReport> core_reports;
  noc::NetworkStats network;
  std::uint64_t events = 0;
  /// Activity trace (only populated when opts.runtime.enable_trace is set).
  std::vector<scc::TraceEvent> trace;
  /// Link-utilization heatmap (populated when opts.runtime.enable_trace).
  std::string link_heatmap;
  /// Recovery bookkeeping (populated when opts.fault_tolerant is set).
  rckskel::FarmReport farm_report{};
  /// Observability recorder (null unless opts.runtime.obs is active). Kept
  /// alive past the runtime so sinks and tests can read metrics + trace.
  std::shared_ptr<obs::Recorder> obs;
  /// Race checker (null unless opts.runtime.chk is active). Kept alive past
  /// the runtime so callers can inspect reports() / write report_json().
  std::shared_ptr<chk::Checker> chk;
  /// Host-parallel scheduler accounting (all zero in serial mode). Wall-
  /// clock dependent — a concurrency diagnostic, never a simulated result.
  scc::HostParallelStats hp{};
};

/// Run the all-vs-all task over `dataset` on the simulated SCC.
RckAlignRun run_rckalign(const std::vector<bio::Protein>& dataset,
                         const RckAlignOptions& opts);

/// Serial baseline: one core loads all structures then compares all pairs
/// back to back. Pure timing-model computation (no simulation needed).
noc::SimTime run_serial(const std::vector<bio::Protein>& dataset, const PairCache& cache,
                        const scc::CoreTimingModel& model, const scc::SccConfig& chip,
                        const noc::NetworkParams& net = {});

/// The unordered all-vs-all pair list (i < j), in the master's FIFO order.
std::vector<std::pair<std::uint32_t, std::uint32_t>> all_pairs(std::size_t n);

}  // namespace rck::rckalign
