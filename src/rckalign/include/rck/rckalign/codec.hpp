// Wire codec for rckAlign jobs and results.
//
// The paper's key design point: the master process loads every structure
// once and ships the *structure data itself* to slaves over the mesh
// (avoiding the NFS bottleneck of the distributed baseline). A job payload
// therefore carries both chains in full, plus the pair indices and the
// comparison method to run (the method tag enables the MC-PSC extension,
// where different slaves run different PSC algorithms on the same data).
#pragma once

#include <cstdint>

#include "rck/bio/protein.hpp"
#include "rck/bio/serialize.hpp"

namespace rck::rckalign {

/// Comparison method selector carried in each job.
enum class Method : std::uint8_t {
  TmAlign = 1,     ///< the paper's primary algorithm
  GaplessRmsd = 2, ///< cheap second criterion for the MC-PSC extension
  CeAlign = 3,     ///< CE-style distance-matrix alignment (core/ce_align.hpp)
  SeqNw = 4,       ///< BLOSUM62 sequence alignment (bio/seq_align.hpp) —
                   ///< the ultra-cheap pre-filter; fills seq_identity only
};

/// Decoded job payload.
struct PairJobData {
  std::uint32_t i = 0;  ///< dataset index of chain a
  std::uint32_t j = 0;  ///< dataset index of chain b
  Method method = Method::TmAlign;
  bio::Protein a;
  bio::Protein b;
};

bio::Bytes encode_pair_job(std::uint32_t i, std::uint32_t j, Method method,
                           const bio::Protein& a, const bio::Protein& b);
/// Same encoding from pre-serialized structures: `a_wire` / `b_wire` must be
/// bio::serialize() output for the chains. A long-running caller (the
/// alignment service) serializes each database entry once at load and reuses
/// the bytes across every job it appears in; the payload is byte-identical
/// to the Protein overload.
bio::Bytes encode_pair_job(std::uint32_t i, std::uint32_t j, Method method,
                           const bio::Bytes& a_wire, const bio::Bytes& b_wire);
PairJobData decode_pair_job(bio::Bytes payload);

/// Decoded result payload (what a slave returns to the master).
struct PairOutcome {
  std::uint32_t i = 0;
  std::uint32_t j = 0;
  Method method = Method::TmAlign;
  double tm_norm_a = 0.0;   ///< TM-align only
  double tm_norm_b = 0.0;   ///< TM-align only
  double rmsd = 0.0;
  double seq_identity = 0.0;
  std::uint32_t aligned_length = 0;
  std::uint64_t work_cycles = 0;  ///< compute cycles the slave charged
};

bio::Bytes encode_outcome(const PairOutcome& o);
PairOutcome decode_outcome(bio::Bytes payload);

}  // namespace rck::rckalign
