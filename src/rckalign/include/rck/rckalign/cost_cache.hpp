// All-vs-all alignment cache.
//
// The paper sweeps the slave-core count from 1 to 47 over the *same* job
// set: every sweep point redistributes identical pairwise comparisons. The
// comparisons themselves are deterministic, so we compute each pair once —
// real TM-align runs, producing real TM-scores and exact work counters —
// and let the simulator replay the recorded cost at every sweep point.
// Building the cache may use host threads (results are stored by pair
// index, so host scheduling cannot affect any simulated outcome).
#pragma once

#include <cstdint>
#include <vector>

#include "rck/bio/protein.hpp"
#include "rck/core/stats.hpp"
#include "rck/core/tmalign.hpp"
#include "rck/scc/timing.hpp"

namespace rck::rckalign {

/// Cached outcome + cost of one unordered pair (i < j).
struct PairEntry {
  double tm_norm_a = 0.0;
  double tm_norm_b = 0.0;
  double rmsd = 0.0;
  double seq_identity = 0.0;
  std::uint32_t aligned_length = 0;
  core::AlignStats stats;          ///< exact work counters of the alignment
  std::uint64_t footprint_bytes = 0;  ///< working-set estimate for the cache model
};

class PairCache {
 public:
  /// Run TM-align on every unordered pair of `dataset`.
  /// `host_threads` <= 0 means hardware_concurrency().
  static PairCache build(const std::vector<bio::Protein>& dataset, int host_threads = 0,
                         const core::TmAlignOptions& opts = {});

  std::size_t chain_count() const noexcept { return n_; }
  std::size_t pair_count() const noexcept { return entries_.size(); }

  /// Entry for the unordered pair {i, j}, i != j (order-insensitive).
  const PairEntry& at(std::uint32_t i, std::uint32_t j) const;

  /// Sum of compute cycles over all pairs under a timing model — the serial
  /// all-vs-all compute cost on that processor.
  std::uint64_t total_cycles(const scc::CoreTimingModel& model) const;

  /// Cycles for one pair under a timing model.
  std::uint64_t pair_cycles(std::uint32_t i, std::uint32_t j,
                            const scc::CoreTimingModel& model) const;

 private:
  static std::size_t tri_index(std::uint32_t i, std::uint32_t j, std::size_t n);
  std::size_t n_ = 0;
  std::vector<PairEntry> entries_;
};

}  // namespace rck::rckalign
