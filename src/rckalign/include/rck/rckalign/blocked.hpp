// Out-of-core (blocked) all-vs-all — the paper's closing future-work item:
// "building support for threading into the base library will be
// investigated, since this can be critical when the protein structure
// datasets are too large to be loaded into memory at once."
//
// When the database exceeds the master core's memory budget, the classic
// remedy is block decomposition of the pair matrix: split the chains into
// B blocks that fit two-at-a-time, and process block pairs (I, J) in a
// wavefront order, loading/evicting whole blocks. Every chain pair is
// still compared exactly once; the cost is re-reading blocks from DRAM
// (each block is loaded ~B/2 + 1 times instead of once). The simulator
// charges those reloads, so the memory/time trade-off is measurable —
// see bench_ablation_blocked.
#pragma once

#include "rck/rckalign/app.hpp"

namespace rck::rckalign {

struct BlockedOptions {
  int slave_count = 47;
  scc::RuntimeConfig runtime{};
  const PairCache* cache = nullptr;
  bool lpt = false;
  /// Master memory budget in bytes; chains are grouped into blocks such
  /// that any two blocks fit. 0 means "everything fits" (degenerates to
  /// one block = the plain algorithm).
  std::uint64_t master_memory_bytes = 0;
  /// Farm grant size (see RckAlignOptions::batch): K > 1 batches grants and
  /// packs TM-align pairs across SIMD lanes per slave. Bit-identical
  /// per-job results/cycles; 0 is invalid.
  std::size_t batch = 1;
};

struct BlockedRun {
  noc::SimTime makespan = 0;
  std::vector<PairRow> results;
  int blocks = 0;               ///< block count B chosen for the budget
  std::uint64_t block_loads = 0;  ///< total block loads (>= B when B > 1)
  std::uint64_t bytes_loaded = 0; ///< total DRAM traffic for structure data
  std::vector<scc::CoreReport> core_reports;
};

/// All-vs-all with a master memory budget. Results are identical to
/// run_rckalign (every unordered pair exactly once); only timing differs.
BlockedRun run_rckalign_blocked(const std::vector<bio::Protein>& dataset,
                                const BlockedOptions& opts);

/// The block partition chosen for a budget: chain index ranges [begin, end)
/// per block. Exposed for tests and for sizing studies.
std::vector<std::pair<std::uint32_t, std::uint32_t>> plan_blocks(
    const std::vector<bio::Protein>& dataset, std::uint64_t master_memory_bytes);

}  // namespace rck::rckalign
