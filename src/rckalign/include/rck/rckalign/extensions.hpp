// Extensions the paper discusses but did not evaluate (Section V / VI):
//
//  1. Multi-criteria PSC (MC-PSC): "all slave processes are not required to
//     run the same PSC algorithm ... different slave processes can be
//     running different algorithms on the same data received from the
//     master". run_mcpsc() partitions the slave cores between TM-align and
//     a gapless-RMSD method and farms both job streams from one master,
//     using the per-subtask UE restriction of the rckskel task tree.
//
//  2. Hierarchical masters: "this can be tackled by implementing a
//     hierarchy of master processes such that a master does not become a
//     bottleneck for the slaves it controls". run_hierarchical() puts a
//     root master over G group masters, each farming to its own slave set;
//     the root dispatches *batches* of jobs so a whole group stays busy.
#pragma once

#include <cstdint>
#include <vector>

#include "rck/bio/protein.hpp"
#include "rck/rckalign/app.hpp"

namespace rck::rckalign {

struct McPscOptions {
  scc::RuntimeConfig runtime{};
  int tmalign_slaves = 32;  ///< cores running TM-align jobs
  int rmsd_slaves = 15;     ///< cores running gapless-RMSD jobs
  const PairCache* cache = nullptr;  ///< TM-align costs/results (optional)
  bool lpt = false;
};

struct McPscRun {
  noc::SimTime makespan = 0;
  std::vector<PairRow> tmalign_results;
  std::vector<PairRow> rmsd_results;  ///< tm fields zero; rmsd/aligned valid
  std::vector<scc::CoreReport> core_reports;
};

/// All-vs-all under two criteria at once on one chip.
McPscRun run_mcpsc(const std::vector<bio::Protein>& dataset, const McPscOptions& opts);

/// Generalized MC-PSC: any number of methods, each with its own dedicated
/// slave-core group (the paper: "partition of cores to different tasks is
/// implementation specific ... facilitated using the library").
struct MethodGroup {
  Method method = Method::TmAlign;
  int slaves = 1;
};

struct MultiMethodOptions {
  scc::RuntimeConfig runtime{};
  std::vector<MethodGroup> groups;
  const PairCache* cache = nullptr;  ///< TM-align replay (optional)
  bool lpt = false;
};

struct MultiMethodRun {
  noc::SimTime makespan = 0;
  /// Results per group, same order as options.groups.
  std::vector<std::vector<PairRow>> results;
  std::vector<scc::CoreReport> core_reports;
};

MultiMethodRun run_multi_method(const std::vector<bio::Protein>& dataset,
                                const MultiMethodOptions& opts);

struct HierarchyOptions {
  scc::RuntimeConfig runtime{};
  int group_count = 4;   ///< number of sub-masters (ranks 1..group_count)
  int slave_count = 40;  ///< total leaf slaves, split evenly across groups
  const PairCache* cache = nullptr;
  /// Jobs per batch shipped root -> sub-master; 0 means one batch per
  /// group-slave count (keeps every leaf busy per round).
  int batch_size = 0;
};

struct HierarchyRun {
  noc::SimTime makespan = 0;
  std::vector<PairRow> results;
  std::vector<scc::CoreReport> core_reports;
};

/// Two-level master hierarchy over the same all-vs-all workload.
HierarchyRun run_hierarchical(const std::vector<bio::Protein>& dataset,
                              const HierarchyOptions& opts);

}  // namespace rck::rckalign
