// One-vs-all PSC: the paper's Algorithm 1.
//
// "A typical task in bioinformatics is comparison of the structure of a
// protein with a database of known protein structures, one-to-many PSC."
// Algorithm 1 (adapted from Shah et al.) loops over methods M and database
// entries D, dispatching each (query, entry, method) comparison to a free
// node. This module implements exactly that on the simulated SCC: the
// master holds the database and the query, creates one job per (entry,
// method), and farms them to slaves; results come back as a ranked hit
// list — "structurally similar proteins are ranked higher."
#pragma once

#include <vector>

#include "rck/bio/protein.hpp"
#include "rck/rckalign/app.hpp"
#include "rck/rckalign/cost_cache.hpp"

namespace rck::rckalign {

/// DEPRECATED option bundle, kept as a thin compatibility surface for one
/// release: run_one_vs_all() is now a shim over the generic run_pairs()
/// layer (pairs.hpp). New code should build an rck::Query and go through
/// rck::run_query() with a validated rck::RunConfig — one config path for
/// pair, one-vs-all and service submission alike.
struct OneVsAllOptions {
  int slave_count = 47;
  scc::RuntimeConfig runtime{};
  /// Methods to run per database entry (Algorithm 1's set M).
  std::vector<Method> methods{Method::TmAlign};
  bool lpt = false;
  /// Farm grant size (see RckAlignOptions::batch): K > 1 batches grants and
  /// packs TM-align query jobs across SIMD lanes per slave. Bit-identical
  /// per-job results/cycles; 0 is invalid.
  std::size_t batch = 1;
};

/// One database hit under one method.
struct Hit {
  std::uint32_t entry = 0;  ///< database index
  Method method = Method::TmAlign;
  double tm_query = 0.0;  ///< TM normalized by query length (ranking key)
  double tm_entry = 0.0;  ///< TM normalized by entry length
  double rmsd = 0.0;
  double seq_identity = 0.0;  ///< ranking key for Method::SeqNw
  std::uint32_t aligned_length = 0;
  int worker = -1;
};

struct OneVsAllRun {
  noc::SimTime makespan = 0;
  /// Hits per method, each sorted by descending similarity (TM-score for
  /// TM-align; ascending RMSD for the gapless method).
  std::vector<std::vector<Hit>> ranked;  ///< indexed like options.methods
  std::vector<scc::CoreReport> core_reports;
  noc::NetworkStats network;
};

/// Ranking keys for one hit; `entry` is the deterministic tie-breaker.
struct HitKey {
  double tm_query = 0.0;
  double seq_identity = 0.0;
  double rmsd = 0.0;
  std::uint32_t entry = 0;
};

/// The per-method ranking rule: does `x` outrank `y`? TM-align and CE rank
/// by descending query-normalized TM-score, SeqNw by descending sequence
/// identity, the gapless method by ascending RMSD; ties break by ascending
/// entry index. Shared by the legacy shim and rck::run_query so both
/// surfaces order hits identically.
bool outranks(Method method, const HitKey& x, const HitKey& y) noexcept;

/// Compare `query` against every chain of `database` under every method.
/// Throws AlignError on empty inputs or bad slave counts.
///
/// DEPRECATED shim over run_pairs(); prefer rck::run_query(). Kept for one
/// release — results, ranking and the simulated schedule are unchanged.
OneVsAllRun run_one_vs_all(const bio::Protein& query,
                           const std::vector<bio::Protein>& database,
                           const OneVsAllOptions& opts);

}  // namespace rck::rckalign
