// rck::chk — dynamic race detector for the simulated SCC.
//
// The simulator's message passing is *implemented* safely (inboxes are
// mutated under the scheduler), but the RCCE protocols layered on top of it
// are hand-rolled flag/MPB disciplines: a sender writes a frame into the
// receiver's MPB slice and then publishes it by setting an RCCE flag; the
// receiver must test that flag before reading the slice. Nothing in the
// simulator enforces the discipline — a skeleton that reads a slice early,
// or two writers that share a byte range without an ordering flag, computes
// garbage on real silicon while looking fine here. TSan cannot see this
// class of bug: the racing "threads" are simulated cores, serialized onto
// one host schedule.
//
// chk checks the *protocol*, not the host execution: every simulated core
// carries a vector clock, and happens-before edges are established ONLY by
//
//   * RCCE flag publish/consume — flag_set(src→dst) joins the setter's clock
//     into the flag; a flag_test that observes the flag set joins the flag's
//     clock into the tester;
//   * barriers — all participants join to a common clock.
//
// Every MPB slice byte-range write/read is then checked against an interval
// shadow map: a read overlapping a write that is not in the reader's
// happens-before past, or two unordered writes to overlapping ranges, yields
// a structured RaceReport ("rck.chk.race") naming both access sites, cores,
// simulated timestamps and the implicated flag chain.
//
// The checker is always compiled and off by default. When enabled it charges
// no simulated time and emits nothing unless a race is found, so a clean
// chk-enabled run is bit-identical (cycles, alignments, obs bytes) to a
// chk-disabled one — asserted by tests/chk/test_chk_ck34.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rck/error.hpp"

namespace rck::chk {

/// Simulated picoseconds (chk sits below noc in the dependency order, so it
/// spells the type out, like rck::obs does).
using Ts = std::uint64_t;

/// Raised on checker misuse (bad core index, unsized checker).
/// Code "rck.chk.misuse".
class ChkError : public rck::Error {
 public:
  explicit ChkError(const std::string& message)
      : Error("rck.chk.misuse", message) {}
};

/// Report-file I/O failure (cannot open / short write). Code "rck.chk.io".
class ChkIoError : public rck::Error {
 public:
  explicit ChkIoError(const std::string& message)
      : Error("rck.chk.io", message) {}
};

/// Configuration, carried inside scc::RuntimeConfig. Everything defaults to
/// off: no checker is constructed and every hook short-circuits.
struct Config {
  /// Build the checker and verify the flag/MPB protocol during the run.
  bool enable = false;
  /// Bounded schedule perturbation: when non-zero, ready cores whose virtual
  /// clocks tie at the same simulated timestamp are dispatched in an order
  /// drawn from this seed instead of lowest-rank-first. Replays are
  /// deterministic per seed. Implies enable; forces the serial scheduler
  /// (host-parallel windows would absorb some of the perturbed picks).
  std::uint64_t schedule_seed = 0;
  /// Stop recording after this many race reports (detection continues).
  std::size_t max_reports = 64;
  /// Write the structured "rck-chk-report-v1" JSON here after the run
  /// (implies enable). Written even when no race was found.
  std::string report_path;

  bool active() const noexcept {
    return enable || schedule_seed != 0 || !report_path.empty();
  }

  static Config off() noexcept { return {}; }
  static Config on() noexcept {
    Config c;
    c.enable = true;
    return c;
  }
};

/// Interned access-site label ("rcce.send", "farm_ft.stale_read", ...).
using SiteId = std::uint32_t;

enum class AccessKind : std::uint8_t { Read, Write };

/// One MPB slice access, as carried inside a RaceReport.
struct Access {
  int core = -1;  ///< simulated core that performed the access
  AccessKind kind = AccessKind::Read;
  int mpb = -1;  ///< core whose MPB slice was accessed
  std::uint32_t lo = 0;  ///< byte range [lo, hi) within that MPB
  std::uint32_t hi = 0;
  Ts ts = 0;          ///< simulated timestamp of the access
  SiteId site = 0;    ///< interned site label
  std::uint64_t clock = 0;  ///< performing core's own vector-clock entry

  bool operator==(const Access&) const = default;
};

/// One RCCE flag event, kept in a short per-flow history ring so a report
/// can show the publish/consume chain around the race.
struct FlagEvent {
  enum class Kind : std::uint8_t { Set, Test, TestEmpty, Note };

  Kind kind = Kind::Set;
  int src = -1;  ///< flow source (flag owner side)
  int dst = -1;  ///< flow destination
  int core = -1;  ///< core that performed the flag operation
  Ts ts = 0;
  SiteId site = 0;
  std::uint64_t id = 0;  ///< annotation payload (job id, lease ordinal, ...)

  bool operator==(const FlagEvent&) const = default;
};

/// One detected protocol race. `code` is always "rck.chk.race"; `kind`
/// refines it.
struct RaceReport {
  enum class Kind : std::uint8_t {
    ReadBeforePublish,   ///< read not ordered after the overlapping write
    WriteWriteOverlap,   ///< two unordered writes to overlapping ranges
  };

  Kind kind = Kind::ReadBeforePublish;
  Access prior;    ///< the earlier access (always a write)
  Access current;  ///< the racing access that triggered the report
  /// Recent flag events of the implicated flow, oldest first (empty when the
  /// racing range was written outside any flow).
  std::vector<FlagEvent> flag_chain;
};

/// Aggregate event counts (the "chk" section of the metrics snapshot).
struct Stats {
  std::uint64_t mpb_writes = 0;
  std::uint64_t mpb_reads = 0;
  std::uint64_t flag_sets = 0;
  std::uint64_t flag_tests = 0;
  std::uint64_t barriers = 0;
  std::uint64_t notes = 0;
  std::uint64_t races = 0;  ///< all detected, including past max_reports

  bool operator==(const Stats&) const = default;
};

/// The vector-clock engine. One instance per simulated run; every method is
/// called under the runtime's scheduler serialization (or single-threaded in
/// unit tests), so the checker itself needs no locking. All state is a pure
/// function of the simulated event sequence — reports are deterministic.
class Checker {
 public:
  /// `nranks` simulated cores, each owning `mpb_bytes` of MPB. The MPB is
  /// statically partitioned RCCE-style: the slice for frames flowing from
  /// core s occupies [slice_lo(s), slice_lo(s) + slice_len()).
  Checker(Config cfg, int nranks, std::uint32_t mpb_bytes);

  const Config& config() const noexcept { return cfg_; }
  int nranks() const noexcept { return nranks_; }

  /// Intern a site label (idempotent; deterministic ids in call order).
  SiteId site(std::string_view name);
  std::string_view site_name(SiteId id) const noexcept;

  std::uint32_t slice_len() const noexcept { return slice_len_; }
  std::uint32_t slice_lo(int flow_src) const noexcept {
    return static_cast<std::uint32_t>(flow_src) * slice_len_;
  }

  // -- protocol events ---------------------------------------------------
  // `flow_src`/`flow_dst` attribute an access to a flow so reports can show
  // its flag chain; pass -1/-1 for raw accesses outside any flow.

  void mpb_write(int core, int mpb, std::uint32_t lo, std::uint32_t len, Ts ts,
                 SiteId at, int flow_src = -1, int flow_dst = -1);
  void mpb_read(int core, int mpb, std::uint32_t lo, std::uint32_t len, Ts ts,
                SiteId at, int flow_src = -1, int flow_dst = -1);
  /// Publish flow (src → dst): joins the setter's clock into the flag.
  void flag_set(int core, int src, int dst, Ts ts, SiteId at);
  /// Test flow (src → dst). `observed_set` mirrors what the caller saw (a
  /// pending frame): only a successful test creates the happens-before edge.
  void flag_test(int core, int src, int dst, bool observed_set, Ts ts, SiteId at);
  /// Protocol annotation (lease expiry, reassignment): recorded into the
  /// flow's flag chain so reports show recovery context; creates no edge.
  void note(int core, int src, int dst, Ts ts, SiteId at, std::uint64_t id);
  /// Barrier release across `ranks` at time `ts`: all participants join.
  void barrier(const std::vector<int>& ranks, Ts ts);

  // -- read-out ----------------------------------------------------------
  const std::vector<RaceReport>& reports() const noexcept { return reports_; }
  const Stats& stats() const noexcept { return stats_; }

  /// Structured report document ("rck-chk-report-v1"), written to
  /// Config::report_path by rck::run / the CLI and uploadable as a CI
  /// artifact. Deterministic bytes for a deterministic run.
  std::string report_json() const;

  /// Compact stats object (raw JSON value) for the metrics snapshot's
  /// "chk" section. The runtime attaches it only when races were detected,
  /// keeping clean chk-enabled runs byte-identical to chk-off runs.
  std::string section_json() const;

 private:
  /// Interval shadow map entry: the last write covering [lo, hi) of an MPB.
  struct Segment {
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    int writer = -1;
    std::uint64_t clock = 0;  ///< writer's own clock entry at the write
    Ts ts = 0;
    SiteId site = 0;
    int flow_src = -1;
    int flow_dst = -1;
  };

  /// Per-flow RCCE flag: its accumulated clock plus a short event history.
  struct FlagState {
    std::vector<std::uint64_t> vc;  ///< empty until first touched
    std::vector<FlagEvent> ring;    ///< last kFlagRing events, oldest first
  };

  static constexpr std::size_t kFlagRing = 6;

  std::uint64_t& clock_of(int core);
  void check_core(int core, const char* what) const;
  FlagState& flag(int src, int dst);
  void push_flag_event(FlagState& f, const FlagEvent& ev);
  void report(RaceReport::Kind kind, const Segment& prior, const Access& cur);

  Config cfg_;
  int nranks_ = 0;
  std::uint32_t mpb_bytes_ = 0;
  std::uint32_t slice_len_ = 0;

  // vc_[c] is core c's vector clock (nranks entries).
  std::vector<std::vector<std::uint64_t>> vc_;
  std::vector<FlagState> flags_;  // nranks * nranks, flow (src, dst)
  std::vector<std::vector<Segment>> mpb_;  // shadow map per MPB owner

  std::vector<std::string> sites_;
  std::vector<RaceReport> reports_;
  std::vector<std::uint64_t> report_keys_;  // dedup (sorted)
  Stats stats_;
};

/// Write `checker.report_json()` to `path`, creating parent directories.
/// Used by rck::run and the CLI for Config::report_path (written even when
/// no race was found, so CI can always pick up the artifact). Throws
/// ChkIoError on failure.
void write_report(const Checker& checker, const std::string& path);

}  // namespace rck::chk
