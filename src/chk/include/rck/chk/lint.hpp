// rck::chk::lint — the static half of the analysis subsystem.
//
// A lightweight, libclang-free linter enforcing the repo invariants that
// reviews have so far policed by hand (see DESIGN.md, "Analysis &
// invariants"):
//
//   determinism      no wall-clock / PRNG / iteration-order leaks inside the
//                    simulation libraries (src/scc, src/noc, src/rcce,
//                    src/rckskel, src/chk, src/mc — replayable exploration
//                    needs the same guarantee the simulator gives)
//   throw-taxonomy   every `throw` in src/ + tools/ constructs an
//                    *Error-suffixed class (the rck::Error taxonomy with
//                    dotted codes) or is a bare rethrow
//   error-codes      every code-shaped string literal (`rck.<family>.<leaf>`,
//                    e.g. "rck.skel.checkpoint") in src/ + tools/ belongs to
//                    the registry of minted codes — typos and unregistered
//                    families fail the lint
//   hot-path-alloc   no new/malloc/container growth in the PR 3 SIMD kernel
//                    hot-path files
//   include-hygiene  quoted includes are either `rck/...` (public headers
//                    through the umbrella layout) or same-directory private
//                    headers; no `../` paths; only src/rck may include the
//                    rck/rck.hpp umbrella
//   layering         the include DAG between src libraries: every direct
//                    rck/... include edge must appear in the explicit
//                    allowed-edges table (src/chk/lint.cpp, kLayerEdges) or
//                    the registered-exception list — bio/core never see the
//                    simulator, sim layers never reach the umbrella/service
//
// The engine works on a comment/string-stripped view of each file (a real
// tokenizer pass, not raw grep), so banned names inside comments or string
// literals never fire. Individual lines opt out with
//   // rck-lint: allow(<rule>[, <rule>...])
// on the same or the preceding line.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rck::chk::lint {

/// One rule violation at a specific line.
struct Finding {
  std::string file;  ///< repo-relative path, forward slashes
  int line = 0;      ///< 1-based
  std::string rule;
  std::string message;

  bool operator==(const Finding&) const = default;
};

/// Rules that apply to `repo_rel_path` (forward-slash, repo-relative, e.g.
/// "src/scc/runtime.cpp"). Empty for files the linter does not cover.
std::vector<std::string> rules_for(std::string_view repo_rel_path);

/// Lint one file. Applies rules_for(path); honors rck-lint waivers.
std::vector<Finding> lint_file(std::string_view repo_rel_path,
                               std::string_view content);

/// Blank comments and string/char-literal bodies (keeping the quote marks
/// and all newlines) so line-based rules see code only. Exposed for tests.
std::string strip(std::string_view content);

/// Render findings as a stable JSON array of {rule, path, line, message}
/// objects in lint_file order — the payload behind `rck_lint --json` and
/// the machine-readable half of the CI analysis leg.
std::string to_json(const std::vector<Finding>& findings);

}  // namespace rck::chk::lint
