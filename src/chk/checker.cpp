#include "rck/chk/chk.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace rck::chk {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string_view kind_name(RaceReport::Kind k) noexcept {
  switch (k) {
    case RaceReport::Kind::ReadBeforePublish: return "read_before_publish";
    case RaceReport::Kind::WriteWriteOverlap: return "write_write_overlap";
  }
  return "unknown";
}

std::string_view flag_kind_name(FlagEvent::Kind k) noexcept {
  switch (k) {
    case FlagEvent::Kind::Set: return "set";
    case FlagEvent::Kind::Test: return "test";
    case FlagEvent::Kind::TestEmpty: return "test_empty";
    case FlagEvent::Kind::Note: return "note";
  }
  return "unknown";
}

/// Elementwise max of `b` into `a` (the vector-clock join).
void join(std::vector<std::uint64_t>& a, const std::vector<std::uint64_t>& b) {
  for (std::size_t k = 0; k < a.size() && k < b.size(); ++k)
    a[k] = std::max(a[k], b[k]);
}

}  // namespace

Checker::Checker(Config cfg, int nranks, std::uint32_t mpb_bytes)
    : cfg_(std::move(cfg)), nranks_(nranks), mpb_bytes_(mpb_bytes) {
  if (nranks < 1) throw ChkError("checker: nranks must be >= 1");
  if (mpb_bytes == 0) throw ChkError("checker: mpb_bytes must be > 0");
  slice_len_ = std::max<std::uint32_t>(
      1, mpb_bytes / static_cast<std::uint32_t>(nranks));
  vc_.assign(static_cast<std::size_t>(nranks),
             std::vector<std::uint64_t>(static_cast<std::size_t>(nranks), 0));
  flags_.resize(static_cast<std::size_t>(nranks) * static_cast<std::size_t>(nranks));
  mpb_.resize(static_cast<std::size_t>(nranks));
  sites_.emplace_back("?");  // SiteId 0: unknown site
}

SiteId Checker::site(std::string_view name) {
  for (std::size_t k = 0; k < sites_.size(); ++k)
    if (sites_[k] == name) return static_cast<SiteId>(k);
  sites_.emplace_back(name);
  return static_cast<SiteId>(sites_.size() - 1);
}

std::string_view Checker::site_name(SiteId id) const noexcept {
  return id < sites_.size() ? std::string_view(sites_[id]) : std::string_view("?");
}

void Checker::check_core(int core, const char* what) const {
  if (core < 0 || core >= nranks_)
    throw ChkError(std::string(what) + ": core out of range");
}

std::uint64_t& Checker::clock_of(int core) {
  return vc_[static_cast<std::size_t>(core)][static_cast<std::size_t>(core)];
}

Checker::FlagState& Checker::flag(int src, int dst) {
  FlagState& f = flags_[static_cast<std::size_t>(src) * static_cast<std::size_t>(nranks_) +
                        static_cast<std::size_t>(dst)];
  if (f.vc.empty()) f.vc.assign(static_cast<std::size_t>(nranks_), 0);
  return f;
}

void Checker::push_flag_event(FlagState& f, const FlagEvent& ev) {
  if (f.ring.size() >= kFlagRing) f.ring.erase(f.ring.begin());
  f.ring.push_back(ev);
}

void Checker::report(RaceReport::Kind kind, const Segment& prior, const Access& cur) {
  ++stats_.races;
  // Dedup: one report per (kind, cores, sites, mpb) combination — a broken
  // loop would otherwise flood the log with the same race every iteration.
  const std::uint64_t key =
      (static_cast<std::uint64_t>(kind) << 60) ^
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(prior.writer)) << 44) ^
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cur.core)) << 28) ^
      (static_cast<std::uint64_t>(prior.site) << 14) ^
      static_cast<std::uint64_t>(cur.site) ^
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cur.mpb)) << 52);
  const auto it = std::lower_bound(report_keys_.begin(), report_keys_.end(), key);
  if (it != report_keys_.end() && *it == key) return;
  if (reports_.size() >= cfg_.max_reports) return;
  report_keys_.insert(it, key);

  RaceReport r;
  r.kind = kind;
  r.prior = Access{prior.writer, AccessKind::Write, cur.mpb, prior.lo, prior.hi,
                   prior.ts, prior.site, prior.clock};
  r.current = cur;
  if (prior.flow_src >= 0 && prior.flow_dst >= 0) {
    const FlagState& f = flags_[static_cast<std::size_t>(prior.flow_src) *
                                    static_cast<std::size_t>(nranks_) +
                                static_cast<std::size_t>(prior.flow_dst)];
    r.flag_chain = f.ring;
  }
  reports_.push_back(std::move(r));
}

void Checker::mpb_write(int core, int mpb, std::uint32_t lo, std::uint32_t len,
                        Ts ts, SiteId at, int flow_src, int flow_dst) {
  check_core(core, "mpb_write");
  check_core(mpb, "mpb_write(mpb)");
  if (len == 0) return;
  ++stats_.mpb_writes;
  std::vector<std::uint64_t>& vc = vc_[static_cast<std::size_t>(core)];
  const std::uint64_t clk = ++clock_of(core);
  const std::uint32_t hi = lo + len;

  std::vector<Segment>& shadow = mpb_[static_cast<std::size_t>(mpb)];
  Access cur{core, AccessKind::Write, mpb, lo, hi, ts, at, clk};
  // Check unordered write-write against every overlapping segment, then
  // carve the overlapped ranges out and insert the new segment.
  std::vector<Segment> next;
  next.reserve(shadow.size() + 2);
  for (const Segment& s : shadow) {
    if (s.hi <= lo || s.lo >= hi) {
      next.push_back(s);
      continue;
    }
    // Overlap. Same-core accesses are program-ordered; cross-core writes
    // must be ordered through a flag/barrier edge.
    if (s.writer != core && vc[static_cast<std::size_t>(s.writer)] < s.clock)
      report(RaceReport::Kind::WriteWriteOverlap, s, cur);
    if (s.lo < lo) {
      Segment left = s;
      left.hi = lo;
      next.push_back(left);
    }
    if (s.hi > hi) {
      Segment right = s;
      right.lo = hi;
      next.push_back(right);
    }
  }
  next.push_back(Segment{lo, hi, core, clk, ts, at, flow_src, flow_dst});
  std::sort(next.begin(), next.end(),
            [](const Segment& a, const Segment& b) { return a.lo < b.lo; });
  shadow = std::move(next);
}

void Checker::mpb_read(int core, int mpb, std::uint32_t lo, std::uint32_t len,
                       Ts ts, SiteId at, int flow_src, int flow_dst) {
  (void)flow_src;
  (void)flow_dst;
  check_core(core, "mpb_read");
  check_core(mpb, "mpb_read(mpb)");
  if (len == 0) return;
  ++stats_.mpb_reads;
  std::vector<std::uint64_t>& vc = vc_[static_cast<std::size_t>(core)];
  const std::uint64_t clk = ++clock_of(core);
  const std::uint32_t hi = lo + len;

  const Access cur{core, AccessKind::Read, mpb, lo, hi, ts, at, clk};
  for (const Segment& s : mpb_[static_cast<std::size_t>(mpb)]) {
    if (s.hi <= lo || s.lo >= hi) continue;
    if (s.writer != core && vc[static_cast<std::size_t>(s.writer)] < s.clock)
      report(RaceReport::Kind::ReadBeforePublish, s, cur);
  }
}

void Checker::flag_set(int core, int src, int dst, Ts ts, SiteId at) {
  check_core(core, "flag_set");
  check_core(src, "flag_set(src)");
  check_core(dst, "flag_set(dst)");
  ++stats_.flag_sets;
  const std::uint64_t clk = ++clock_of(core);
  (void)clk;
  FlagState& f = flag(src, dst);
  join(f.vc, vc_[static_cast<std::size_t>(core)]);
  push_flag_event(f, FlagEvent{FlagEvent::Kind::Set, src, dst, core, ts, at, 0});
}

void Checker::flag_test(int core, int src, int dst, bool observed_set, Ts ts,
                        SiteId at) {
  check_core(core, "flag_test");
  check_core(src, "flag_test(src)");
  check_core(dst, "flag_test(dst)");
  ++stats_.flag_tests;
  FlagState& f = flag(src, dst);
  if (observed_set) {
    ++clock_of(core);
    join(vc_[static_cast<std::size_t>(core)], f.vc);
    push_flag_event(f, FlagEvent{FlagEvent::Kind::Test, src, dst, core, ts, at, 0});
  } else {
    // A failed test observes nothing and creates no edge; remember only the
    // most recent empty test so chains stay informative without flooding.
    if (!f.ring.empty() && f.ring.back().kind == FlagEvent::Kind::TestEmpty &&
        f.ring.back().core == core) {
      f.ring.back().ts = ts;
      f.ring.back().site = at;
    } else {
      push_flag_event(f,
                      FlagEvent{FlagEvent::Kind::TestEmpty, src, dst, core, ts, at, 0});
    }
  }
}

void Checker::note(int core, int src, int dst, Ts ts, SiteId at, std::uint64_t id) {
  check_core(core, "note");
  check_core(src, "note(src)");
  check_core(dst, "note(dst)");
  ++stats_.notes;
  push_flag_event(flag(src, dst),
                  FlagEvent{FlagEvent::Kind::Note, src, dst, core, ts, at, id});
}

void Checker::barrier(const std::vector<int>& ranks, Ts ts) {
  (void)ts;
  ++stats_.barriers;
  std::vector<std::uint64_t> joined(static_cast<std::size_t>(nranks_), 0);
  for (int r : ranks) {
    check_core(r, "barrier");
    join(joined, vc_[static_cast<std::size_t>(r)]);
  }
  for (int r : ranks) {
    vc_[static_cast<std::size_t>(r)] = joined;
    ++clock_of(r);
  }
}

std::string Checker::section_json() const {
  std::string out;
  out.reserve(256);
  out += "{\"mpb_writes\": ";
  append_u64(out, stats_.mpb_writes);
  out += ", \"mpb_reads\": ";
  append_u64(out, stats_.mpb_reads);
  out += ", \"flag_sets\": ";
  append_u64(out, stats_.flag_sets);
  out += ", \"flag_tests\": ";
  append_u64(out, stats_.flag_tests);
  out += ", \"barriers\": ";
  append_u64(out, stats_.barriers);
  out += ", \"notes\": ";
  append_u64(out, stats_.notes);
  out += ", \"races\": ";
  append_u64(out, stats_.races);
  out += "}";
  return out;
}

std::string Checker::report_json() const {
  std::string out;
  out.reserve(1024 + reports_.size() * 512);
  out += "{\n  \"schema\": \"rck-chk-report-v1\",\n  \"stats\": ";
  out += section_json();
  out += ",\n  \"races\": [";

  const auto access_json = [&](const Access& a) {
    out += "{\"core\": ";
    append_i64(out, a.core);
    out += ", \"kind\": ";
    append_escaped(out, a.kind == AccessKind::Read ? "read" : "write");
    out += ", \"mpb\": ";
    append_i64(out, a.mpb);
    out += ", \"lo\": ";
    append_u64(out, a.lo);
    out += ", \"hi\": ";
    append_u64(out, a.hi);
    out += ", \"ts_ps\": ";
    append_u64(out, a.ts);
    out += ", \"site\": ";
    append_escaped(out, site_name(a.site));
    out += ", \"clock\": ";
    append_u64(out, a.clock);
    out += "}";
  };

  for (std::size_t i = 0; i < reports_.size(); ++i) {
    const RaceReport& r = reports_[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"code\": \"rck.chk.race\", \"kind\": ";
    append_escaped(out, kind_name(r.kind));
    out += ", \"prior\": ";
    access_json(r.prior);
    out += ", \"current\": ";
    access_json(r.current);
    out += ", \"flag_chain\": [";
    for (std::size_t k = 0; k < r.flag_chain.size(); ++k) {
      const FlagEvent& ev = r.flag_chain[k];
      if (k) out += ", ";
      out += "{\"kind\": ";
      append_escaped(out, flag_kind_name(ev.kind));
      out += ", \"flow\": [";
      append_i64(out, ev.src);
      out += ", ";
      append_i64(out, ev.dst);
      out += "], \"core\": ";
      append_i64(out, ev.core);
      out += ", \"ts_ps\": ";
      append_u64(out, ev.ts);
      out += ", \"site\": ";
      append_escaped(out, site_name(ev.site));
      if (ev.id != 0) {
        out += ", \"id\": ";
        append_u64(out, ev.id);
      }
      out += "}";
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

void write_report(const Checker& checker, const std::string& path) {
  const std::filesystem::path p(path);
  std::error_code ec;
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec)
      throw ChkIoError("write_report: cannot create directories for '" + path +
                       "': " + ec.message());
  }
  std::ofstream f(p, std::ios::binary | std::ios::trunc);
  if (!f) throw ChkIoError("write_report: cannot open '" + path + "'");
  const std::string doc = checker.report_json();
  f.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  f.flush();
  if (!f) throw ChkIoError("write_report: short write to '" + path + "'");
}

}  // namespace rck::chk
