#include "rck/chk/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <set>

namespace rck::chk::lint {

namespace {

bool is_ident(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.substr(0, prefix.size()) == prefix;
}

/// Identifiers banned outright inside the simulation libraries. Matched as
/// whole identifiers on stripped text, so comments don't fire.
constexpr std::string_view kDeterminismBans[] = {
    "rand",          "srand",         "drand48",
    "random_device", "mt19937",       "mt19937_64",
    "minstd_rand",   "default_random_engine",
    "system_clock",  "steady_clock",  "high_resolution_clock",
    "gettimeofday",  "clock_gettime", "timespec_get",
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
};

/// PR 3 SIMD kernel hot-path files: allocation-free by contract
/// (tests/core/test_alloc_free.cpp asserts it dynamically; the lint rule
/// keeps the ban visible at review time). The round-2 batch kernel and the
/// batch-pulling slave loop run the same per-pair hot path K lanes wide, so
/// they inherit the contract; their grow-only capacity warms carry explicit
/// waivers.
constexpr std::string_view kHotPathFiles[] = {
    "src/core/simd.hpp",
    "src/core/simd_kernels.cpp",
    "src/core/simd_kernels_avx2.cpp",
    "src/core/simd_kernels_impl.hpp",
    "src/core/kabsch.cpp",
    "src/core/batch.cpp",
    "src/rckskel/batch_slave.cpp",
};

constexpr std::string_view kHotPathBans[] = {
    "malloc", "calloc",       "realloc",      "push_back", "emplace_back",
    "resize", "reserve",      "emplace",      "insert",    "shrink_to_fit",
};

/// Every stable error code minted so far — the dotted codes carried by the
/// rck::Error taxonomy (see DESIGN.md, "Error taxonomy"). A code-shaped
/// string literal (`rck.<family>.<leaf>`) outside this registry is either a
/// typo or an unregistered family; new codes extend this table in the same
/// PR that mints them. The `rck.skel.checkpoint` family covers the PR 6
/// snapshot codec (checksum mismatch, truncation, version skew).
constexpr std::string_view kKnownErrorCodes[] = {
    "rck.align.invalid",    "rck.bio.data",      "rck.bio.pdb",
    "rck.bio.wire",         "rck.chk.io",        "rck.chk.misuse",
    "rck.chk.race",         "rck.cli.args",      "rck.config.invalid",
    "rck.core.invalid",     "rck.harness.io",    "rck.harness.table",
    "rck.mc.io",            "rck.mc.misuse",     "rck.mc.replay",
    "rck.mc.witness",       "rck.noc.invalid",   "rck.obs.io",
    "rck.obs.misuse",       "rck.rcce.invalid",  "rck.scc.deadlock",
    "rck.scc.fault_stall",  "rck.scc.invalid",   "rck.scc.sim",
    "rck.service.invalid",  "rck.service.overload", "rck.skel.batch",
    "rck.skel.checkpoint",  "rck.skel.farm_failed", "rck.skel.invalid",
    "rck.skel.protocol",
};

bool is_code_char(char c) noexcept {
  return (c >= 'a' && c <= 'z') || c == '_' || c == '.';
}

bool in_determinism_scope(std::string_view path) {
  return starts_with(path, "src/scc/") || starts_with(path, "src/noc/") ||
         starts_with(path, "src/rcce/") || starts_with(path, "src/rckskel/") ||
         starts_with(path, "src/chk/") || starts_with(path, "src/mc/");
}

bool is_hot_path(std::string_view path) {
  for (std::string_view f : kHotPathFiles)
    if (path == f) return true;
  return false;
}

bool in_lintable_tree(std::string_view path) {
  return starts_with(path, "src/") || starts_with(path, "tools/");
}

struct Waivers {
  // line (1-based) -> rules allowed on that line and the next.
  std::map<int, std::set<std::string, std::less<>>> by_line;

  bool allows(int line, std::string_view rule) const {
    for (int l : {line, line - 1}) {
      const auto it = by_line.find(l);
      if (it == by_line.end()) continue;
      if (it->second.count("all") || it->second.count(rule)) return true;
    }
    return false;
  }
};

/// Parse `// rck-lint: allow(rule, rule)` markers from the *raw* content
/// (they live in comments, which strip() blanks).
Waivers collect_waivers(std::string_view content) {
  Waivers w;
  int line = 1;
  for (std::size_t i = 0; i < content.size(); ++i) {
    if (content[i] == '\n') {
      ++line;
      continue;
    }
    constexpr std::string_view kMark = "rck-lint: allow(";
    if (content.compare(i, kMark.size(), kMark) != 0) continue;
    std::size_t j = i + kMark.size();
    std::string name;
    for (; j < content.size() && content[j] != ')' && content[j] != '\n'; ++j) {
      const char c = content[j];
      if (c == ',' ) {
        if (!name.empty()) w.by_line[line].insert(name);
        name.clear();
      } else if (c != ' ') {
        name.push_back(c);
      }
    }
    if (!name.empty()) w.by_line[line].insert(name);
    i = j;
  }
  return w;
}

/// Per-line view of stripped content.
std::vector<std::string_view> split_lines(std::string_view s) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == '\n') {
      lines.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return lines;
}

/// Find whole-identifier occurrences of `ident` in `line`; returns columns.
std::vector<std::size_t> find_ident(std::string_view line, std::string_view ident) {
  std::vector<std::size_t> cols;
  std::size_t pos = 0;
  while ((pos = line.find(ident, pos)) != std::string_view::npos) {
    const bool lb = pos == 0 || !is_ident(line[pos - 1]);
    const std::size_t end = pos + ident.size();
    const bool rb = end >= line.size() || !is_ident(line[end]);
    if (lb && rb) cols.push_back(pos);
    pos = end;
  }
  return cols;
}

void check_determinism(std::string_view path,
                       const std::vector<std::string_view>& lines,
                       const Waivers& waivers, std::vector<Finding>& out) {
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const int ln = static_cast<int>(li) + 1;
    const std::string_view line = lines[li];
    for (std::string_view ban : kDeterminismBans) {
      if (find_ident(line, ban).empty()) continue;
      if (waivers.allows(ln, "determinism")) continue;
      out.push_back({std::string(path), ln, "determinism",
                     "banned in simulation libraries: " + std::string(ban) +
                         " (simulated runs must be a pure function of the "
                         "inputs; see DESIGN.md)"});
    }
    // The libc wall-clock calls: `std::time(...)`, `std::clock()`, and the
    // classic bare `time(nullptr)` / `time(NULL)` / `time(0)`. A member or
    // method merely *named* time (e.g. CoreTimingModel::time) is fine.
    for (std::string_view ban : {std::string_view("time"), std::string_view("clock")}) {
      for (std::size_t col : find_ident(line, ban)) {
        std::size_t after = col + ban.size();
        while (after < line.size() && line[after] == ' ') ++after;
        if (after >= line.size() || line[after] != '(') continue;
        const bool std_qualified =
            col >= 5 && line.substr(col - 5, 5) == "std::" &&
            (col == 5 || !is_ident(line[col - 6]));
        const std::string_view args = line.substr(after);
        const bool bare_wallclock =
            ban == "time" && (col == 0 || !is_ident(line[col - 1])) &&
            (col < 2 || line.substr(col - 2, 2) != "::") &&
            (starts_with(args, "(nullptr") || starts_with(args, "(NULL") ||
             starts_with(args, "(0)"));
        if (!std_qualified && !bare_wallclock) continue;
        if (waivers.allows(ln, "determinism")) continue;
        out.push_back({std::string(path), ln, "determinism",
                       "wall-clock call " + std::string(ban) +
                           "() banned in simulation libraries"});
      }
    }
  }
}

void check_throw_taxonomy(std::string_view path, std::string_view stripped,
                          const Waivers& waivers, std::vector<Finding>& out) {
  int line = 1;
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    if (stripped[i] == '\n') {
      ++line;
      continue;
    }
    if (!is_ident(stripped[i])) continue;
    std::size_t end = i;
    while (end < stripped.size() && is_ident(stripped[end])) ++end;
    const std::string_view word = stripped.substr(i, end - i);
    if (word != "throw") {
      i = end - 1;
      continue;
    }
    // Skip whitespace (tracking newlines) to the thrown expression.
    std::size_t j = end;
    int jline = line;
    while (j < stripped.size() &&
           (stripped[j] == ' ' || stripped[j] == '\n' || stripped[j] == '\t')) {
      if (stripped[j] == '\n') ++jline;
      ++j;
    }
    i = end - 1;
    if (j >= stripped.size() || stripped[j] == ';') continue;  // rethrow
    // Qualified identifier chain: A::B::Name — judge the last component.
    std::string last;
    while (j < stripped.size()) {
      std::size_t k = j;
      while (k < stripped.size() && is_ident(stripped[k])) ++k;
      if (k == j) break;
      last.assign(stripped, j, k - j);
      if (k + 1 < stripped.size() && stripped[k] == ':' && stripped[k + 1] == ':')
        j = k + 2;
      else
        break;
    }
    const bool ok = last.size() > 5 &&
                    last.compare(last.size() - 5, 5, "Error") == 0;
    if (ok || waivers.allows(line, "throw-taxonomy")) continue;
    out.push_back({std::string(path), line, "throw-taxonomy",
                   "throw site must construct an rck::Error subclass "
                   "(*Error with a dotted code), got: " +
                       (last.empty() ? std::string("<expression>") : last)});
    (void)jline;
  }
}

void check_hot_path(std::string_view path,
                    const std::vector<std::string_view>& lines,
                    const Waivers& waivers, std::vector<Finding>& out) {
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const int ln = static_cast<int>(li) + 1;
    const std::string_view line = lines[li];
    for (std::string_view ban : kHotPathBans) {
      if (find_ident(line, ban).empty()) continue;
      if (waivers.allows(ln, "hot-path-alloc")) continue;
      out.push_back({std::string(path), ln, "hot-path-alloc",
                     "allocation/growth call banned in SIMD kernel hot path: " +
                         std::string(ban)});
    }
    // `new` as a keyword (placement or not).
    for (std::size_t col : find_ident(line, "new")) {
      (void)col;
      if (waivers.allows(ln, "hot-path-alloc")) continue;
      out.push_back({std::string(path), ln, "hot-path-alloc",
                     "operator new banned in SIMD kernel hot path"});
    }
  }
}

void check_error_codes(std::string_view path, std::string_view raw,
                       std::string_view stripped, const Waivers& waivers,
                       std::vector<Finding>& out) {
  // String bodies are blanked in the stripped view but the delimiting quotes
  // survive, and strip() is length-preserving — so quote pairs in `stripped`
  // locate the real literals (quotes inside comments are blanked) and `raw`
  // supplies their text. Codes are validated wherever they appear inside a
  // literal, which also covers JSON emitters that embed them mid-string.
  int line = 1;
  std::size_t i = 0;
  while (i < stripped.size()) {
    const char c = stripped[i];
    if (c == '\n') ++line;
    if (c != '"') {
      ++i;
      continue;
    }
    const std::size_t close = stripped.find('"', i + 1);
    if (close == std::string_view::npos) break;
    const std::string_view body = raw.substr(i + 1, close - i - 1);
    std::size_t pos = 0;
    while ((pos = body.find("rck.", pos)) != std::string_view::npos) {
      if (pos > 0 && is_ident(body[pos - 1])) {
        pos += 4;
        continue;
      }
      std::size_t end = pos;
      while (end < body.size() && is_code_char(body[end])) ++end;
      std::string_view code = body.substr(pos, end - pos);
      while (!code.empty() && code.back() == '.') code.remove_suffix(1);
      pos = end;
      // Two dots minimum: `rck.skel` alone names a family prefix in prose,
      // not a code.
      if (std::count(code.begin(), code.end(), '.') < 2) continue;
      const bool known =
          std::find(std::begin(kKnownErrorCodes), std::end(kKnownErrorCodes),
                    code) != std::end(kKnownErrorCodes);
      if (known || waivers.allows(line, "error-codes")) continue;
      out.push_back({std::string(path), line, "error-codes",
                     "unregistered error code \"" + std::string(code) +
                         "\" (stable dotted codes live in the linter's "
                         "registry; extend it in the PR that mints the code)"});
    }
    for (std::size_t k = i + 1; k <= close; ++k)
      if (stripped[k] == '\n') ++line;
    i = close + 1;
  }
}

void check_includes(std::string_view path,
                    const std::vector<std::string_view>& raw_lines,
                    const Waivers& waivers, std::vector<Finding>& out) {
  // src/service sits *above* the umbrella (it consumes rck::Query and
  // RunConfig), so it owns the include the same way tools do.
  const bool is_umbrella_owner = starts_with(path, "src/rck/") ||
                                 starts_with(path, "src/service/") ||
                                 starts_with(path, "tools/");
  for (std::size_t li = 0; li < raw_lines.size(); ++li) {
    const int ln = static_cast<int>(li) + 1;
    std::string_view line = raw_lines[li];
    const std::size_t h = line.find("#include");
    if (h == std::string_view::npos) continue;
    // Only quoted includes carry project-layout obligations.
    const std::size_t q0 = line.find('"', h);
    if (q0 == std::string_view::npos) continue;
    const std::size_t q1 = line.find('"', q0 + 1);
    if (q1 == std::string_view::npos) continue;
    const std::string_view inc = line.substr(q0 + 1, q1 - q0 - 1);
    if (waivers.allows(ln, "include-hygiene")) continue;
    if (inc.find("..") != std::string_view::npos) {
      out.push_back({std::string(path), ln, "include-hygiene",
                     "parent-relative include path: \"" + std::string(inc) + "\""});
      continue;
    }
    if (!is_umbrella_owner && inc == "rck/rck.hpp") {
      out.push_back({std::string(path), ln, "include-hygiene",
                     "src libraries must not include the rck/rck.hpp umbrella "
                     "(it depends on them)"});
      continue;
    }
    if (!starts_with(inc, "rck/") && inc.find('/') != std::string_view::npos) {
      out.push_back({std::string(path), ln, "include-hygiene",
                     "quoted include must be rck/... (public header) or a "
                     "same-directory private header: \"" +
                         std::string(inc) + "\""});
    }
  }
}

/// The library layering DAG: every *direct* rck/... include edge a src
/// library is allowed to take. Edges not listed here are layering
/// violations. Two edges are implicit and never listed: a library may
/// include its own headers, and everyone may include src/common (the shared
/// rck::Error taxonomy in rck/error.hpp). The intent (see DESIGN.md,
/// "Layering"): bio/core are pure compute and must never see the simulator
/// (scc/noc) or the skeletons; the simulation layers must never reach up
/// into the rck umbrella or src/service; only the umbrella and service sit
/// on top of everything.
struct LayerEdge {
  std::string_view from;
  std::string_view to;
};

constexpr LayerEdge kLayerEdges[] = {
    // Compute stack: kernels over protein data, nothing else.
    {"core", "bio"},
    // Simulator stack: NoC model over observability; SCC runtime over the
    // NoC, the race checker, the model-checking hooks, and the compute data
    // types it ships across the (simulated) wires.
    {"noc", "obs"},
    {"scc", "bio"},
    {"scc", "chk"},
    {"scc", "mc"},
    {"scc", "noc"},
    {"scc", "obs"},
    // Programming layers over the simulator.
    {"rcce", "bio"},
    {"rcce", "scc"},
    {"rckskel", "bio"},
    {"rckskel", "noc"},
    {"rckskel", "rcce"},
    // The application: TM-align farmed over the skeletons.
    {"rckalign", "bio"},
    {"rckalign", "core"},
    {"rckalign", "noc"},
    {"rckalign", "rcce"},
    {"rckalign", "rckskel"},
    {"rckalign", "scc"},
    // Bench/CLI support utilities sit above the application.
    {"harness", "bio"},
    {"harness", "obs"},
    {"harness", "rckalign"},
    // src/service consumes the public rck:: surface (Query, RunConfig) the
    // same way tools do, so it owns the umbrella edge.
    {"service", "bio"},
    {"service", "core"},
    {"service", "noc"},
    {"service", "obs"},
    {"service", "rck"},
    // The umbrella re-exports (almost) everything below it.
    {"rck", "bio"},
    {"rck", "chk"},
    {"rck", "core"},
    {"rck", "mc"},
    {"rck", "noc"},
    {"rck", "obs"},
    {"rck", "rckalign"},
    {"rck", "rckskel"},
    {"rck", "scc"},
};

/// Registered file-level exceptions: (file, include) pairs outside the DAG
/// that are deliberate. Each entry carries its rationale here; adding one
/// means defending it in the PR that adds it.
struct LayerException {
  std::string_view file;
  std::string_view include;
};

constexpr LayerException kLayerExceptions[] = {
    // scc's timing model reuses the running-stats accumulator from
    // core — a leaf numeric helper, not the alignment kernels. The
    // simulator takes no other core dependency.
    {"src/scc/include/rck/scc/timing.hpp", "rck/core/stats.hpp"},
};

/// Library that owns `path`, e.g. "src/scc/runtime.cpp" -> "scc". Empty for
/// anything outside src/.
std::string_view src_lib(std::string_view path) {
  if (!starts_with(path, "src/")) return {};
  const std::string_view rest = path.substr(4);
  const std::size_t slash = rest.find('/');
  return slash == std::string_view::npos ? std::string_view{}
                                         : rest.substr(0, slash);
}

/// Library a public include path resolves to. Top-level headers follow the
/// umbrella layout: rck/error.hpp is src/common, everything else at the top
/// level (rck.hpp, query.hpp) is the rck umbrella itself.
std::string_view include_lib(std::string_view inc) {
  if (!starts_with(inc, "rck/")) return {};
  const std::string_view rest = inc.substr(4);
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos)
    return rest == "error.hpp" ? std::string_view("common")
                               : std::string_view("rck");
  return rest.substr(0, slash);
}

bool layer_edge_allowed(std::string_view from, std::string_view to) {
  if (to.empty() || to == from || to == "common") return true;
  for (const LayerEdge& e : kLayerEdges)
    if (e.from == from && e.to == to) return true;
  return false;
}

bool layer_exception(std::string_view file, std::string_view inc) {
  for (const LayerException& e : kLayerExceptions)
    if (e.file == file && e.include == inc) return true;
  return false;
}

void check_layering(std::string_view path,
                    const std::vector<std::string_view>& raw_lines,
                    const Waivers& waivers, std::vector<Finding>& out) {
  const std::string_view from = src_lib(path);
  if (from.empty()) return;
  for (std::size_t li = 0; li < raw_lines.size(); ++li) {
    const int ln = static_cast<int>(li) + 1;
    const std::string_view line = raw_lines[li];
    const std::size_t h = line.find("#include");
    if (h == std::string_view::npos) continue;
    const std::size_t q0 = line.find('"', h);
    if (q0 == std::string_view::npos) continue;
    const std::size_t q1 = line.find('"', q0 + 1);
    if (q1 == std::string_view::npos) continue;
    const std::string_view inc = line.substr(q0 + 1, q1 - q0 - 1);
    const std::string_view to = include_lib(inc);
    if (layer_edge_allowed(from, to)) continue;
    if (layer_exception(path, inc)) continue;
    if (waivers.allows(ln, "layering")) continue;
    out.push_back({std::string(path), ln, "layering",
                   "src/" + std::string(from) + " must not include \"" +
                       std::string(inc) + "\": edge " + std::string(from) +
                       " -> " + std::string(to) +
                       " is not in the layering DAG (allowed-edges table in "
                       "src/chk/lint.cpp; register an exception or restructure)"});
  }
}

}  // namespace

std::string strip(std::string_view content) {
  std::string out;
  out.reserve(content.size());
  enum class St { Code, Line, Block, Str, Chr, Raw };
  St st = St::Code;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char n = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (st) {
      case St::Code:
        if (c == '/' && n == '/') {
          st = St::Line;
          out += "  ";
          ++i;
        } else if (c == '/' && n == '*') {
          st = St::Block;
          out += "  ";
          ++i;
        } else if (c == '"' && i >= 1 && content[i - 1] == 'R') {
          // Raw string literal: R"delim( ... )delim"
          st = St::Raw;
          raw_delim = ")";
          for (std::size_t k = i + 1; k < content.size() && content[k] != '(';
               ++k)
            raw_delim.push_back(content[k]);
          raw_delim.push_back('"');
          out.push_back('"');
        } else if (c == '"') {
          st = St::Str;
          out.push_back('"');
        } else if (c == '\'' && !(i >= 1 && is_ident(content[i - 1]))) {
          // Skip digit separators (1'000'000): a quote after an identifier
          // character is not a char literal.
          st = St::Chr;
          out.push_back('\'');
        } else {
          out.push_back(c);
        }
        break;
      case St::Line:
        if (c == '\n') {
          st = St::Code;
          out.push_back('\n');
        } else {
          out.push_back(' ');
        }
        break;
      case St::Block:
        if (c == '*' && n == '/') {
          st = St::Code;
          out += "  ";
          ++i;
        } else {
          out.push_back(c == '\n' ? '\n' : ' ');
        }
        break;
      case St::Str:
        if (c == '\\' && n != '\0') {
          out += "  ";
          ++i;
        } else if (c == '"') {
          st = St::Code;
          out.push_back('"');
        } else {
          out.push_back(c == '\n' ? '\n' : ' ');
        }
        break;
      case St::Chr:
        if (c == '\\' && n != '\0') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          st = St::Code;
          out.push_back('\'');
        } else {
          out.push_back(' ');
        }
        break;
      case St::Raw:
        if (content.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 1; k < raw_delim.size(); ++k) out.push_back(' ');
          out.push_back('"');
          i += raw_delim.size() - 1;
          st = St::Code;
        } else {
          out.push_back(c == '\n' ? '\n' : ' ');
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> rules_for(std::string_view repo_rel_path) {
  std::vector<std::string> rules;
  if (!in_lintable_tree(repo_rel_path)) return rules;
  const bool is_source =
      repo_rel_path.size() > 4 &&
      (repo_rel_path.ends_with(".hpp") || repo_rel_path.ends_with(".cpp") ||
       repo_rel_path.ends_with(".h") || repo_rel_path.ends_with(".cc"));
  if (!is_source) return rules;
  if (in_determinism_scope(repo_rel_path)) rules.emplace_back("determinism");
  rules.emplace_back("throw-taxonomy");
  rules.emplace_back("error-codes");
  if (is_hot_path(repo_rel_path)) rules.emplace_back("hot-path-alloc");
  rules.emplace_back("include-hygiene");
  if (starts_with(repo_rel_path, "src/")) rules.emplace_back("layering");
  return rules;
}

std::vector<Finding> lint_file(std::string_view repo_rel_path,
                               std::string_view content) {
  std::vector<Finding> out;
  const std::vector<std::string> rules = rules_for(repo_rel_path);
  if (rules.empty()) return out;

  const Waivers waivers = collect_waivers(content);
  const std::string stripped = strip(content);
  const std::vector<std::string_view> code_lines = split_lines(stripped);
  const std::vector<std::string_view> raw_lines = split_lines(content);

  const auto has = [&](std::string_view r) {
    return std::find(rules.begin(), rules.end(), r) != rules.end();
  };
  if (has("determinism"))
    check_determinism(repo_rel_path, code_lines, waivers, out);
  if (has("throw-taxonomy"))
    check_throw_taxonomy(repo_rel_path, stripped, waivers, out);
  if (has("error-codes"))
    check_error_codes(repo_rel_path, content, stripped, waivers, out);
  if (has("hot-path-alloc"))
    check_hot_path(repo_rel_path, code_lines, waivers, out);
  if (has("include-hygiene"))
    check_includes(repo_rel_path, raw_lines, waivers, out);
  if (has("layering"))
    check_layering(repo_rel_path, raw_lines, waivers, out);

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return out;
}

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string to_json(const std::vector<Finding>& findings) {
  std::string out = "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"rule\": \"" + json_escape(f.rule) + "\", \"path\": \"" +
           json_escape(f.file) + "\", \"line\": " + std::to_string(f.line) +
           ", \"message\": \"" + json_escape(f.message) + "\"}";
  }
  out += findings.empty() ? "]\n" : "\n]\n";
  return out;
}

}  // namespace rck::chk::lint
