// rck_mc: bounded model-checking driver for the farm/failover/batch
// protocols (see DESIGN.md "Systematic exploration (rck::mc)").
//
// Runs rck::mc_explore over small synthetic configurations — a handful of
// structures, 2-4 slaves — where bounded exploration of same-instant
// schedule ties is cheap, and checks the protocol invariant suite on every
// explored schedule. The seeded protocol mutants (ProtocolMutant) turn the
// tool into its own acceptance test: each mutant must be caught with a
// replayable witness while the unmutated protocols explore clean.
//
// Examples:
//   rck_mc --config plain-farm                  # explore, exit 3 on violation
//   rck_mc --config ft --mutant double-grant    # must find lease_safety
//   rck_mc --replay witness.json --config ft --mutant double-grant
//   rck_mc --all                                # full acceptance matrix
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "rck/bio/synthetic.hpp"
#include "rck/harness/arg_parser.hpp"
#include "rck/rck.hpp"

using namespace rck;

namespace {

/// Deterministic micro-dataset: a few families of structurally related
/// chains with spread-out lengths, so per-pair costs differ enough that
/// slaves free up at different times (which is what exposes lease bugs).
std::vector<bio::Protein> make_dataset(int structures) {
  bio::Rng rng(0x5CC0FFEEull);
  static constexpr int kLengths[] = {34, 52, 71, 43, 87, 60, 38, 78};
  std::vector<bio::Protein> ds;
  ds.reserve(static_cast<std::size_t>(structures));
  for (int i = 0; i < structures; ++i) {
    const std::string name = "mc/s" + std::to_string(i);
    if (i % 3 == 2) {
      ds.push_back(bio::perturb(ds.back(), name, rng));
    } else {
      ds.push_back(bio::make_protein(name, kLengths[i % 8], rng));
    }
  }
  return ds;
}

struct ConfigSpec {
  std::string name;
  bool ft = false;         ///< fault-tolerant farm (leases, retries)
  bool master_ft = false;  ///< checkpointed master + standby failover
  std::size_t batch = 1;
  rckskel::ProtocolMutant mutant = rckskel::ProtocolMutant::None;
};

RunConfig make_config(const ConfigSpec& spec, int slaves,
                      const rckalign::PairCache* cache, std::uint64_t bound) {
  RunConfig cfg;
  cfg.with_slaves(slaves)
      .with_cache(cache)
      .with_batch(spec.batch)
      .with_mc()
      .with_mc_bound(bound)
      .with_mc_label(spec.name)
      .with_protocol_mutant(spec.mutant);
  if (spec.ft) cfg.with_fault_tolerance();
  if (spec.mutant == rckskel::ProtocolMutant::DropLeaseRenewal) {
    // The bug regrants every lease several times per execution, burning
    // attempts; a generous retry budget keeps the farm alive long enough
    // for a second slave to start the overlapping execution that the
    // lease_safety invariant catches.
    cfg.ft.max_attempts = 64;
  }
  if (spec.master_ft) {
    cfg.with_master_ft();
    // Tight cadence: several checkpoints reach the standby before the
    // mid-run master crash, which is what the stale-checkpoint invariant
    // needs to bite on.
    cfg.mft.checkpoint_every = 2;
  }
  return cfg;
}

/// master-ft runs crash the master mid-farm. The crash instant must be
/// deterministic yet config-dependent, so measure the config's own fault-
/// free makespan once (mc off) and crash at ~30% of it.
void add_master_crash(RunConfig& cfg,
                      const std::vector<bio::Protein>& dataset) {
  RunConfig probe = cfg;
  probe.mc = McConfig{};
  probe.ft.mutant = rckskel::ProtocolMutant::None;
  const RunResult r = rck::run(dataset, probe);
  cfg.runtime.faults.crashes.push_back(
      scc::FaultPlan::Crash{0, r.makespan * 3 / 10});
}

int print_outcome(const ConfigSpec& spec, const McOutcome& out, bool replayed) {
  std::printf("[%s] %s %llu schedule(s), max %zu decision points, "
              "canonical digest 0x%llx\n",
              spec.name.c_str(),
              replayed ? "replayed"
                       : (out.exhausted ? "exhausted tree after exploring"
                                        : "explored"),
              static_cast<unsigned long long>(out.schedules),
              out.max_decisions,
              static_cast<unsigned long long>(out.canonical_digest));
  if (out.violation) {
    std::printf("[%s] VIOLATION of %s at schedule %llu: %s\n",
                spec.name.c_str(), out.violation->invariant.c_str(),
                static_cast<unsigned long long>(out.witness.schedule),
                out.violation->detail.c_str());
    return 3;
  }
  std::printf("[%s] clean: invariants hold, matrix bit-identical on every "
              "explored schedule\n",
              spec.name.c_str());
  return 0;
}

/// One acceptance-matrix entry: explore `spec`, demand `expect` (empty =
/// clean), and for violations round-trip the witness through a strict
/// replay that must reproduce the same invariant.
bool run_case(const ConfigSpec& spec, const std::vector<bio::Protein>& dataset,
              const rckalign::PairCache& cache, int slaves,
              std::uint64_t bound, const std::string& expect,
              const std::string& witness_dir) {
  RunConfig cfg = make_config(spec, slaves, &cache, bound);
  const std::string witness_path =
      witness_dir + "/rck_mc_" + spec.name + ".json";
  if (!expect.empty()) cfg.with_mc_witness(witness_path);
  if (spec.master_ft) add_master_crash(cfg, dataset);
  const McOutcome out = mc_explore(dataset, cfg);
  print_outcome(spec, out, /*replayed=*/false);
  if (expect.empty()) {
    if (out.violation) {
      std::printf("[%s] FAIL: expected a clean exploration\n",
                  spec.name.c_str());
      return false;
    }
    return true;
  }
  if (!out.violation || out.violation->invariant != expect) {
    std::printf("[%s] FAIL: expected a %s violation, got %s\n",
                spec.name.c_str(), expect.c_str(),
                out.violation ? out.violation->invariant.c_str() : "none");
    return false;
  }
  // Witness round-trip: the saved schedule must replay deterministically
  // to the same violated invariant.
  RunConfig replay_cfg = cfg;
  replay_cfg.with_mc_witness("").with_mc_replay(witness_path);
  const McOutcome replayed = mc_replay(dataset, replay_cfg);
  if (!replayed.violation || replayed.violation->invariant != expect) {
    std::printf("[%s] FAIL: witness replay produced %s, expected %s\n",
                spec.name.c_str(),
                replayed.violation ? replayed.violation->invariant.c_str()
                                   : "no violation",
                expect.c_str());
    return false;
  }
  std::printf("[%s] witness %s replays to the same %s violation\n",
              spec.name.c_str(), witness_path.c_str(), expect.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_name = "plain-farm";
  std::string mutant_name = "none";
  std::string replay_path;
  std::string witness_path;
  std::string witness_dir = ".";
  int slaves = 3;
  int structures = 6;
  int bound = 256;
  bool all = false;

  static constexpr std::string_view kConfigs[] = {"plain-farm", "ft",
                                                  "master-ft", "batch"};
  static constexpr std::string_view kMutants[] = {
      "none", "drop-lease", "double-grant", "stale-checkpoint"};
  harness::ArgParser cli(
      "rck_mc",
      "Bounded schedule exploration + protocol invariant checking for the "
      "farm/failover/batch protocols on tiny synthetic datasets.");
  cli.choice("config", &config_name, kConfigs, "protocol configuration")
      .choice("mutant", &mutant_name, kMutants,
              "seed a known-broken protocol variant (must be caught)")
      .option("slaves", &slaves, "slave cores (2-4 keeps exploration cheap)")
      .option("structures", &structures, "synthetic dataset size")
      .option("bound", &bound, "max schedules explored (0 = exhaustive)")
      .option("witness", &witness_path,
              "write the first violating schedule's witness here")
      .option("replay", &replay_path,
              "replay a saved witness instead of exploring")
      .option("witness-dir", &witness_dir,
              "directory for the witnesses --all writes")
      .flag("all", &all,
            "run the acceptance matrix: clean exploration on plain-farm, "
            "master-ft and batch; every mutant caught with a replayable "
            "witness");
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const harness::ArgError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  const std::vector<bio::Protein> dataset = make_dataset(structures);
  const rckalign::PairCache cache = rckalign::PairCache::build(dataset);
  const std::uint64_t bound_u =
      bound < 0 ? 0ull : static_cast<std::uint64_t>(bound);

  try {
    if (all) {
      const struct {
        ConfigSpec spec;
        const char* expect;  // violated invariant, or "" for clean
      } matrix[] = {
          {{"plain-farm"}, ""},
          {{"master-ft", true, true}, ""},
          {{"batch", false, false, 4}, ""},
          {{"ft-drop-lease", true, false, 1,
            rckskel::ProtocolMutant::DropLeaseRenewal},
           "no_reexec"},
          {{"ft-double-grant", true, false, 1,
            rckskel::ProtocolMutant::DoubleGrant},
           "lease_safety"},
          {{"master-ft-stale-checkpoint", true, true, 1,
            rckskel::ProtocolMutant::StaleCheckpointTakeover},
           "checkpoint_monotonic"},
      };
      bool ok = true;
      for (const auto& c : matrix)
        ok = run_case(c.spec, dataset, cache, slaves, bound_u, c.expect,
                      witness_dir) &&
             ok;
      std::printf("acceptance matrix: %s\n", ok ? "PASS" : "FAIL");
      return ok ? 0 : 1;
    }

    ConfigSpec spec;
    spec.name = config_name;
    spec.ft = config_name == "ft" || config_name == "master-ft";
    spec.master_ft = config_name == "master-ft";
    spec.batch = config_name == "batch" ? 4 : 1;
    if (mutant_name == "drop-lease")
      spec.mutant = rckskel::ProtocolMutant::DropLeaseRenewal;
    else if (mutant_name == "double-grant")
      spec.mutant = rckskel::ProtocolMutant::DoubleGrant;
    else if (mutant_name == "stale-checkpoint")
      spec.mutant = rckskel::ProtocolMutant::StaleCheckpointTakeover;
    if (spec.mutant != rckskel::ProtocolMutant::None && !spec.ft)
      spec.ft = true;  // every mutant lives in the fault-tolerant engine

    RunConfig cfg = make_config(spec, slaves, &cache, bound_u);
    cfg.with_mc_witness(witness_path).with_mc_replay(replay_path);
    if (spec.master_ft) add_master_crash(cfg, dataset);
    const bool replaying = !replay_path.empty();
    const McOutcome out =
        replaying ? mc_replay(dataset, cfg) : mc_explore(dataset, cfg);
    const int rc = print_outcome(spec, out, replaying);
    if (rc != 0 && !witness_path.empty())
      std::printf("[%s] witness written to %s (re-run with --replay)\n",
                  spec.name.c_str(), witness_path.c_str());
    return rc;
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
