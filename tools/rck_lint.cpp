// rck_lint: the repo invariant linter (static half of rck::chk).
//
// Walks src/ and tools/ under the given repo root, applies the rules in
// rck/chk/lint.hpp to every C++ source file, and prints findings as
//   path:line: [rule] message
// Exit status: 0 clean, 1 findings, 2 usage/IO error.
//
// Usage:
//   rck_lint [repo-root]          # default: current directory
//   rck_lint [repo-root] --json   # also emit a JSON findings array on stdout
//   rck_lint --list-rules <file>  # show which rules apply to a path
//
// --json prints the machine-readable findings (an array of
// {rule, path, line, message} objects, see lint::to_json) to stdout while
// the human-readable lines still go to stderr — CI archives the JSON and
// feeds the stderr lines to the GitHub problem matcher
// (.github/problem-matchers/rck-lint.json).
//
// Run locally from the build dir as `./tools/rck_lint ..`; CI runs it in the
// `analysis` matrix leg. Suppress a line with
//   // rck-lint: allow(<rule>)
// on the same or previous line (see DESIGN.md, "Analysis & invariants").
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rck/chk/lint.hpp"

namespace fs = std::filesystem;

namespace {

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool is_cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool list_rules = false;
  bool json = false;
  std::vector<std::string> list_targets;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: rck_lint [repo-root] [--json] | rck_lint --list-rules "
          "<file>...\n");
      return 0;
    }
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--json") {
      json = true;
    } else if (list_rules) {
      list_targets.push_back(arg);
    } else {
      root = arg;
    }
  }

  if (list_rules) {
    for (const std::string& t : list_targets) {
      std::printf("%s:", t.c_str());
      for (const std::string& r : rck::chk::lint::rules_for(t))
        std::printf(" %s", r.c_str());
      std::printf("\n");
    }
    return 0;
  }

  const fs::path root_path(root);
  if (!fs::is_directory(root_path / "src")) {
    std::fprintf(stderr, "rck_lint: no src/ under %s (pass the repo root)\n",
                 root.c_str());
    return 2;
  }

  std::vector<fs::path> files;
  for (const char* sub : {"src", "tools"}) {
    const fs::path dir = root_path / sub;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir))
      if (entry.is_regular_file() && is_cpp_source(entry.path()))
        files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  std::vector<rck::chk::lint::Finding> all;
  for (const fs::path& f : files) {
    const std::string rel =
        fs::relative(f, root_path).generic_string();
    const std::vector<rck::chk::lint::Finding> findings =
        rck::chk::lint::lint_file(rel, read_file(f));
    for (const rck::chk::lint::Finding& fd : findings)
      std::fprintf(stderr, "%s:%d: [%s] %s\n", fd.file.c_str(), fd.line,
                   fd.rule.c_str(), fd.message.c_str());
    all.insert(all.end(), findings.begin(), findings.end());
  }

  if (json) std::fputs(rck::chk::lint::to_json(all).c_str(), stdout);

  if (!all.empty()) {
    std::fprintf(stderr, "rck_lint: %zu finding%s in %zu files scanned\n",
                 all.size(), all.size() == 1 ? "" : "s", files.size());
    return 1;
  }
  if (!json)
    std::printf("rck_lint: clean (%zu files scanned)\n", files.size());
  return 0;
}
