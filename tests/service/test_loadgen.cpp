// service::generate_trace — deterministic Poisson/heavy-tail load shape.
#include "rck/service/loadgen.hpp"

#include <gtest/gtest.h>

#include "rck/bio/synthetic.hpp"
#include "rck/service/service.hpp"

namespace {

using namespace rck;

std::vector<bio::Protein> small_db() {
  bio::Rng rng(0xDB);
  std::vector<bio::Protein> db;
  for (int i = 0; i < 3; ++i)
    db.push_back(bio::make_protein("db" + std::to_string(i), 24 + 4 * i, rng));
  return db;
}

TEST(LoadGen, SameSeedSameTrace) {
  const auto db = small_db();
  service::TraceOptions opts;
  opts.queries = 12;
  const std::vector<Query> a = service::generate_trace(db, opts);
  const std::vector<Query> b = service::generate_trace(db, opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].kind, b[k].kind);
    EXPECT_EQ(a[k].arrival, b[k].arrival);
    ASSERT_EQ(a[k].probes.size(), b[k].probes.size());
    for (std::size_t p = 0; p < a[k].probes.size(); ++p) {
      EXPECT_EQ(a[k].probes[p].name(), b[k].probes[p].name());
      EXPECT_EQ(a[k].probes[p].sequence(), b[k].probes[p].sequence());
    }
  }
}

TEST(LoadGen, DifferentSeedsDiverge) {
  const auto db = small_db();
  service::TraceOptions a_opts, b_opts;
  a_opts.queries = b_opts.queries = 8;
  b_opts.seed = a_opts.seed + 1;
  const auto a = service::generate_trace(db, a_opts);
  const auto b = service::generate_trace(db, b_opts);
  bool any_diff = false;
  for (std::size_t k = 0; k < a.size(); ++k)
    any_diff = any_diff || a[k].arrival != b[k].arrival;
  EXPECT_TRUE(any_diff);
}

TEST(LoadGen, ArrivalsAreNondecreasingAndRateScales) {
  const auto db = small_db();
  service::TraceOptions slow, fast;
  slow.queries = fast.queries = 24;
  slow.rate_qps = 1.0;
  fast.rate_qps = 16.0;
  const auto s = service::generate_trace(db, slow);
  const auto f = service::generate_trace(db, fast);
  for (std::size_t k = 1; k < s.size(); ++k)
    EXPECT_GE(s[k].arrival, s[k - 1].arrival);
  // 16x the rate compresses the span (same seed, same gap draws scaled).
  EXPECT_LT(f.back().arrival, s.back().arrival);
}

TEST(LoadGen, KindWeightsSelectKinds) {
  const auto db = small_db();
  service::TraceOptions opts;
  opts.queries = 16;
  opts.pair_weight = 0.0;
  opts.one_vs_all_weight = 1.0;
  opts.k_vs_all_weight = 0.0;
  for (const Query& q : service::generate_trace(db, opts)) {
    EXPECT_EQ(q.kind, QueryKind::OneVsAll);
    EXPECT_EQ(q.probes.size(), 1u);
    EXPECT_EQ(q.top_k, opts.top_k);
  }

  opts.one_vs_all_weight = 0.0;
  opts.k_vs_all_weight = 1.0;
  opts.k_max = 3;
  for (const Query& q : service::generate_trace(db, opts)) {
    EXPECT_EQ(q.kind, QueryKind::KVsAll);
    EXPECT_GE(q.probes.size(), 1u);
    EXPECT_LE(q.probes.size(), 3u);
  }
}

TEST(LoadGen, ValidatesInputs) {
  const auto db = small_db();
  EXPECT_THROW(service::generate_trace({}, {}), service::ServiceError);

  service::TraceOptions bad_rate;
  bad_rate.rate_qps = 0.0;
  EXPECT_THROW(service::generate_trace(db, bad_rate), service::ServiceError);

  service::TraceOptions zero_weights;
  zero_weights.pair_weight = zero_weights.one_vs_all_weight =
      zero_weights.k_vs_all_weight = 0.0;
  EXPECT_THROW(service::generate_trace(db, zero_weights),
               service::ServiceError);

  service::TraceOptions bad_k;
  bad_k.k_max = 0;
  EXPECT_THROW(service::generate_trace(db, bad_k), service::ServiceError);
}

}  // namespace
