// rck::service::Service — resident database + incremental matrix +
// admission-controlled query rounds.
//
// The two load-bearing properties here are the incremental-add contract
// (adding one structure to an N-entry database issues exactly N comparisons
// and lands a matrix bit-identical to a from-scratch build) and the
// serial-vs-host-parallel byte identity of the service's observable output
// (obs JSON and every result document).
#include "rck/service/service.hpp"

#include <gtest/gtest.h>

#include "rck/bio/synthetic.hpp"
#include "rck/core/tmalign.hpp"
#include "rck/service/loadgen.hpp"

namespace {

using namespace rck;

std::vector<bio::Protein> make_db(int n, std::uint64_t seed = 0x5E21) {
  bio::Rng rng(seed);
  std::vector<bio::Protein> db;
  for (int i = 0; i < n; ++i)
    db.push_back(bio::make_protein("db" + std::to_string(i), 24 + 3 * i, rng));
  return db;
}

RunConfig config(int slaves) {
  RunConfig cfg;
  cfg.with_slaves(slaves);
  return cfg;
}

TEST(Service, PreprocessesEveryEntryAtLoad) {
  const auto db = make_db(3);
  service::Service svc(db, config(3));
  ASSERT_EQ(svc.size(), 3u);
  for (std::size_t i = 0; i < svc.size(); ++i) {
    const service::Entry& e = svc.entry(i);
    EXPECT_EQ(e.protein.name(), db[i].name());
    EXPECT_EQ(e.wire.size(), db[i].wire_size());
    EXPECT_EQ(e.coords.size(), db[i].size());
    EXPECT_EQ(e.ss.size(), db[i].size());
  }
}

TEST(Service, MatrixMatchesDirectKernel) {
  const auto db = make_db(4);
  service::Service svc(db, config(3));
  EXPECT_EQ(svc.stats().matrix_jobs, 6u);  // C(4,2)
  for (std::size_t i = 0; i < db.size(); ++i)
    for (std::size_t j = i + 1; j < db.size(); ++j) {
      const core::TmAlignResult direct = core::tmalign(db[i], db[j]);
      const service::MatrixCell& cell = svc.matrix_at(i, j);
      EXPECT_DOUBLE_EQ(cell.tm_norm_a, direct.tm_norm_a);
      EXPECT_DOUBLE_EQ(cell.rmsd, direct.rmsd);
      // Symmetric lookup returns the same stored cell.
      EXPECT_EQ(&svc.matrix_at(j, i), &cell);
    }
  EXPECT_THROW(svc.matrix_at(0, 0), service::ServiceError);
  EXPECT_THROW(svc.matrix_at(0, 9), service::ServiceError);
}

TEST(Service, IncrementalAddCostsExactlyNAndMatchesFromScratch) {
  auto db = make_db(5);
  bio::Rng rng(0xADD);
  const bio::Protein extra = bio::make_protein("db_extra", 31, rng);

  // Incremental: build over N, then add the (N+1)-th.
  service::Service incremental(db, config(4));
  const std::uint64_t before = incremental.stats().matrix_jobs;
  EXPECT_EQ(before, 10u);  // C(5,2)
  const std::size_t idx = incremental.add_structure(extra);
  EXPECT_EQ(idx, 5u);
  EXPECT_EQ(incremental.size(), 6u);
  // Exactly N new comparisons, never a rebuild.
  EXPECT_EQ(incremental.stats().matrix_jobs - before, 5u);

  // From scratch over all N+1.
  db.push_back(extra);
  service::Service fresh(db, config(4));
  EXPECT_EQ(fresh.stats().matrix_jobs, 15u);  // C(6,2)

  // The matrices are bit-identical, cell for cell.
  EXPECT_EQ(incremental.matrix(), fresh.matrix());
}

TEST(Service, ServesQueriesLikeRunQuery) {
  const auto db = make_db(4);
  bio::Rng rng(0x0B5E);
  const bio::Protein probe = bio::perturb(db[1], "probe", rng);

  RunConfig cfg = config(3);
  service::Service svc(db, cfg);
  const std::uint64_t id = svc.submit(Query::one_vs_all(probe, 3));
  const std::vector<QueryResult> results = svc.drain();
  ASSERT_EQ(results.size(), 1u);
  const QueryResult& served = results[0];
  EXPECT_EQ(served.id, id);
  EXPECT_FALSE(served.shed);

  const QueryResult standalone =
      run_query(db, Query::one_vs_all(probe, 3), cfg);
  ASSERT_EQ(served.hits.size(), standalone.hits.size());
  for (std::size_t k = 0; k < served.hits.size(); ++k)
    EXPECT_EQ(served.hits[k], standalone.hits[k]);
  EXPECT_EQ(svc.stats().served, 1u);
  EXPECT_EQ(svc.stats().query_jobs, db.size());
}

TEST(Service, SubmitRejectsMalformedQueries) {
  service::Service svc(make_db(3), config(2));
  Query bad = Query::one_vs_all(bio::Protein{});
  try {
    svc.submit(bad);
    FAIL() << "expected ServiceError";
  } catch (const service::ServiceError& e) {
    EXPECT_EQ(e.code(), "rck.service.invalid");
  }
}

TEST(Service, CoalescesWaitingQueriesIntoOneRound) {
  const auto db = make_db(3);
  bio::Rng rng(0xC0A1);
  RunConfig cfg = config(3);
  cfg.with_max_queries_per_round(4);
  service::Service svc(db, cfg);
  // All four arrive at t=0, the round cap admits them together.
  for (int k = 0; k < 4; ++k)
    svc.submit(Query::one_vs_all(bio::perturb(db[0], "p" + std::to_string(k), rng)));
  const auto results = svc.drain();
  EXPECT_EQ(results.size(), 4u);
  EXPECT_EQ(svc.stats().rounds, 1u);
  // One coalesced round: every query completes at the same simulated time.
  for (const QueryResult& r : results)
    EXPECT_EQ(r.completion, results[0].completion);
}

TEST(Service, ShedsLoudlyBeyondQueueCapacityAndCanEscalate) {
  const auto db = make_db(3);
  bio::Rng rng(0x5EDD);
  RunConfig cfg = config(2);
  cfg.with_queue_capacity(2).with_max_queries_per_round(1);
  service::Service svc(db, cfg);
  // Five simultaneous arrivals against capacity 2: round takes 1, queue
  // holds 2, the remainder is shed.
  for (int k = 0; k < 5; ++k)
    svc.submit(Query::one_vs_all(bio::perturb(db[0], "p" + std::to_string(k), rng)));
  const auto results = svc.drain();
  ASSERT_EQ(results.size(), 5u);
  std::size_t shed = 0;
  for (const QueryResult& r : results) {
    if (r.shed) {
      ++shed;
      EXPECT_TRUE(r.hits.empty());
    }
  }
  EXPECT_EQ(shed, svc.stats().shed);
  EXPECT_GE(shed, 1u);
  EXPECT_EQ(svc.stats().served + svc.stats().shed, 5u);

  // Same overload with fail_on_shed escalates to OverloadError.
  RunConfig strict = cfg;
  strict.with_fail_on_shed();
  service::Service strict_svc(db, strict);
  bio::Rng rng2(0x5EDD);
  for (int k = 0; k < 5; ++k)
    strict_svc.submit(
        Query::one_vs_all(bio::perturb(db[0], "p" + std::to_string(k), rng2)));
  try {
    strict_svc.drain();
    FAIL() << "expected OverloadError";
  } catch (const service::OverloadError& e) {
    EXPECT_EQ(e.code(), "rck.service.overload");
  }
}

TEST(Service, ObsAndResultsAreByteIdenticalSerialVsHostParallel) {
  const auto db = make_db(4);
  service::TraceOptions topts;
  topts.queries = 6;
  topts.rate_qps = 8.0;
  const std::vector<Query> trace = service::generate_trace(db, topts);

  const auto run_with = [&](int host_threads) {
    RunConfig cfg = config(3);
    cfg.with_host_threads(host_threads);
    service::Service svc(db, cfg);
    for (const Query& q : trace) svc.submit(q);
    std::string docs;
    for (const QueryResult& r : svc.drain()) docs += r.to_json();
    return std::pair<std::string, std::string>(svc.obs_json(), docs);
  };

  const auto serial = run_with(1);
  const auto parallel = run_with(4);
  EXPECT_EQ(serial.first, parallel.first);    // service metrics JSON
  EXPECT_EQ(serial.second, parallel.second);  // every result document
}

TEST(Service, StatsAndObsCountersAgree) {
  const auto db = make_db(3);
  bio::Rng rng(0x57A7);
  service::Service svc(db, config(2));
  svc.submit(Query::pair(bio::perturb(db[0], "x", rng),
                         bio::perturb(db[1], "y", rng)));
  svc.submit(Query::one_vs_all(bio::perturb(db[2], "z", rng)));
  (void)svc.drain();

  const service::Stats& st = svc.stats();
  EXPECT_EQ(st.submitted, 2u);
  EXPECT_EQ(st.served, 2u);
  EXPECT_EQ(st.query_jobs, 1u + db.size());
  EXPECT_EQ(st.clock, st.busy);  // both queries arrive at t=0: no idle gaps

  const std::string json = svc.obs_json();
  EXPECT_NE(json.find("service.queries"), std::string::npos);
  EXPECT_NE(json.find("service.query_latency_ps"), std::string::npos);
  EXPECT_NE(json.find("service.queue_depth"), std::string::npos);
}

TEST(Service, RejectsInvalidConfigAndEmptyStructures) {
  EXPECT_THROW(service::Service(make_db(2), config(0)), ConfigError);
  std::vector<bio::Protein> db = make_db(2);
  db.push_back(bio::Protein{});
  EXPECT_THROW(service::Service(db, config(2)), service::ServiceError);
}

}  // namespace
