// rck::RunConfig validation + the consolidated rck::run() entry point, and
// the rck::Error taxonomy contract (stable codes, what() prefixes).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "rck/bio/pdb_io.hpp"
#include "rck/bio/serialize.hpp"
#include "rck/bio/synthetic.hpp"
#include "rck/rck.hpp"

namespace {

using namespace rck;

bool has_issue(const std::vector<ConfigIssue>& issues, std::string_view field) {
  return std::any_of(issues.begin(), issues.end(), [&](const ConfigIssue& i) {
    return i.field == field;
  });
}

TEST(RunConfig, DefaultIsValid) {
  EXPECT_TRUE(RunConfig{}.validate().empty());
}

TEST(RunConfig, ChainableSettersCompose) {
  RunConfig cfg;
  cfg.with_slaves(5).with_lpt().with_host_threads(4).with_trace("t.json")
      .with_metrics("m.json").with_collect();
  EXPECT_EQ(cfg.slave_count, 5);
  EXPECT_TRUE(cfg.lpt);
  EXPECT_EQ(cfg.runtime.host.threads, 4);
  EXPECT_EQ(cfg.obs.trace_path, "t.json");
  EXPECT_EQ(cfg.obs.metrics_path, "m.json");
  EXPECT_TRUE(cfg.obs.enable);
  EXPECT_TRUE(cfg.obs.active());
  EXPECT_TRUE(cfg.validate().empty());
}

TEST(RunConfig, RejectsBadSlaveCount) {
  RunConfig cfg;
  cfg.with_slaves(0);
  EXPECT_TRUE(has_issue(cfg.validate(), "slave_count"));
  cfg.with_slaves(cfg.runtime.chip.core_count());  // master no longer fits
  EXPECT_TRUE(has_issue(cfg.validate(), "slave_count"));
}

TEST(RunConfig, RejectsBadHostThreadsAndDvfs) {
  RunConfig cfg;
  cfg.with_host_threads(0);
  cfg.runtime.core_freq_scale.assign(2, 1.0);
  cfg.runtime.core_freq_scale[1] = -0.5;
  const auto issues = cfg.validate();
  EXPECT_TRUE(has_issue(issues, "runtime.host.threads"));
  EXPECT_TRUE(has_issue(issues, "runtime.core_freq_scale[1]"));
}

TEST(RunConfig, RejectsMasterCrashAndOutOfChipFaults) {
  RunConfig cfg;
  scc::FaultPlan plan;
  plan.crashes.push_back({0, 1'000'000});  // rank 0 = master
  cfg.with_faults(plan);
  EXPECT_TRUE(has_issue(cfg.validate(), "runtime.faults.crashes[0].rank"));

  plan.crashes.clear();
  plan.crashes.push_back({cfg.runtime.chip.core_count(), 1});
  cfg.with_faults(plan);
  EXPECT_TRUE(has_issue(cfg.validate(), "runtime.faults.crashes[0].rank"));
}

TEST(RunConfig, FaultPlanValidatesFtKnobsEvenWithoutExplicitFt) {
  RunConfig cfg;
  scc::FaultPlan plan;
  plan.crashes.push_back({3, 1'000'000});
  cfg.with_faults(plan);
  cfg.ft.max_attempts = 0;
  EXPECT_TRUE(has_issue(cfg.validate(), "ft.max_attempts"));
}

TEST(RunConfig, RejectsBadBatch) {
  RunConfig cfg;
  cfg.with_batch(0);
  EXPECT_TRUE(has_issue(cfg.validate(), "batch"));

  // Batched grants need the plain farm: the FT farms (and any fault plan,
  // which upgrades to them) lease and retry individual jobs.
  cfg.with_batch(4);
  EXPECT_TRUE(cfg.validate().empty());
  cfg.with_fault_tolerance();
  EXPECT_TRUE(has_issue(cfg.validate(), "batch"));

  RunConfig faulty;
  faulty.with_batch(4);
  scc::FaultPlan plan;
  plan.crashes.push_back({3, 1'000'000});
  faulty.with_faults(plan);
  EXPECT_TRUE(has_issue(faulty.validate(), "batch"));
}

TEST(RunConfig, ToOptionsCarriesBatch) {
  RunConfig cfg;
  cfg.with_batch(8);
  EXPECT_EQ(cfg.to_options().batch, 8u);
}

TEST(RunConfig, RejectsEmptyMethodList) {
  RunConfig cfg;
  cfg.methods.clear();
  EXPECT_TRUE(has_issue(cfg.validate(), "methods"));
}

TEST(RunConfig, MethodSettersCompose) {
  RunConfig cfg;
  cfg.with_method(rckalign::Method::GaplessRmsd);
  ASSERT_EQ(cfg.methods.size(), 1u);
  EXPECT_EQ(cfg.methods[0], rckalign::Method::GaplessRmsd);

  cfg.with_methods({rckalign::Method::TmAlign, rckalign::Method::GaplessRmsd});
  ASSERT_EQ(cfg.methods.size(), 2u);
  EXPECT_EQ(cfg.methods[0], rckalign::Method::TmAlign);
  EXPECT_TRUE(cfg.validate().empty());
}

TEST(RunConfig, RejectsBadServiceLimits) {
  RunConfig cfg;
  cfg.with_queue_capacity(0);
  EXPECT_TRUE(has_issue(cfg.validate(), "service.queue_capacity"));

  RunConfig cfg2;
  cfg2.with_max_queries_per_round(0);
  EXPECT_TRUE(has_issue(cfg2.validate(), "service.max_queries_per_round"));

  RunConfig ok;
  ok.with_queue_capacity(128).with_max_queries_per_round(16).with_fail_on_shed();
  EXPECT_EQ(ok.service.queue_capacity, 128u);
  EXPECT_EQ(ok.service.max_queries_per_round, 16u);
  EXPECT_TRUE(ok.service.fail_on_shed);
  EXPECT_TRUE(ok.validate().empty());
}

TEST(RunConfig, ToPairsOptionsCarriesTheKnobs) {
  RunConfig cfg;
  cfg.with_slaves(5).with_lpt().with_batch(4).with_host_threads(3);
  const rckalign::PairsOptions opts = cfg.to_pairs_options();
  EXPECT_EQ(opts.slave_count, 5);
  EXPECT_TRUE(opts.lpt);
  EXPECT_EQ(opts.batch, 4u);
  EXPECT_EQ(opts.runtime.host.threads, 3);
}

TEST(RunConfig, RejectsTraceAndMetricsSharingAFile) {
  RunConfig cfg;
  cfg.with_trace("same.json").with_metrics("same.json");
  EXPECT_TRUE(has_issue(cfg.validate(), "obs.metrics_path"));
}

TEST(RunConfig, ValidatedThrowsTypedErrorListingEveryIssue) {
  RunConfig cfg;
  cfg.with_slaves(0).with_host_threads(0);
  try {
    cfg.validated();
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.code(), "rck.config.invalid");
    EXPECT_EQ(std::strncmp(e.what(), "rck.config.invalid: ", 20), 0);
    EXPECT_GE(e.issues().size(), 2u);
    EXPECT_TRUE(has_issue(e.issues(), "slave_count"));
    EXPECT_TRUE(has_issue(e.issues(), "runtime.host.threads"));
  }
}

TEST(RunConfig, ToOptionsForcesFaultToleranceUnderAFaultPlan) {
  RunConfig cfg;
  EXPECT_FALSE(cfg.to_options().fault_tolerant);
  scc::FaultPlan plan;
  plan.crashes.push_back({3, 1'000'000});
  cfg.with_faults(plan);
  EXPECT_TRUE(cfg.to_options().fault_tolerant);
}

TEST(RunConfig, ToOptionsRoutesObsIntoRuntime) {
  RunConfig cfg;
  cfg.with_collect();
  const rckalign::RckAlignOptions opts = cfg.to_options();
  EXPECT_TRUE(opts.runtime.obs.active());
}

TEST(Run, InvalidConfigThrowsBeforeSimulating) {
  const std::vector<bio::Protein> dataset;  // never touched
  RunConfig cfg;
  cfg.with_slaves(-1);
  EXPECT_THROW(rck::run(dataset, cfg), ConfigError);
}

TEST(Run, EndToEndWithCollectExposesRecorder) {
  bio::Rng rng(7);
  std::vector<bio::Protein> dataset;
  for (int i = 0; i < 4; ++i)
    dataset.push_back(bio::make_protein("p" + std::to_string(i), 24 + 3 * i, rng));

  RunConfig cfg;
  cfg.with_slaves(3).with_collect();
  const RunResult run = rck::run(dataset, cfg);
  EXPECT_EQ(run.results.size(), 6u);  // C(4,2)
  ASSERT_NE(run.obs, nullptr);

  const obs::Snapshot snap = run.obs->snapshot();
  // 6 pair comparisons executed across the slave shards.
  const auto pairs = std::find_if(
      snap.counters.begin(), snap.counters.end(),
      [](const auto& row) { return row.name == "app.pairs"; });
  ASSERT_NE(pairs, snap.counters.end());
  EXPECT_EQ(pairs->value, 6u);
  EXPECT_EQ(pairs->per_shard[0], 0u);  // master executes no pairs

  const auto jobs = std::find_if(
      snap.counters.begin(), snap.counters.end(),
      [](const auto& row) { return row.name == "farm.jobs"; });
  ASSERT_NE(jobs, snap.counters.end());
  EXPECT_EQ(jobs->value, 6u);

  // Without obs, the same run reports an identical makespan: observability
  // never perturbs the simulation.
  RunConfig plain;
  plain.with_slaves(3);
  const RunResult base = rck::run(dataset, plain);
  EXPECT_EQ(base.makespan, run.makespan);
  EXPECT_EQ(base.results, run.results);
  EXPECT_EQ(base.obs, nullptr);
}

// -- error taxonomy -----------------------------------------------------

TEST(ErrorTaxonomy, BioErrorsCarryStableCodes) {
  try {
    throw bio::WireError("truncated frame");
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), "rck.bio.wire");
    EXPECT_STREQ(e.what(), "rck.bio.wire: truncated frame");
  }
  try {
    throw bio::PdbError("no CA atoms");
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), "rck.bio.pdb");
    EXPECT_STREQ(e.what(), "rck.bio.pdb: no CA atoms");
  }
}

TEST(ErrorTaxonomy, SimErrorsCarryStableCodes) {
  try {
    throw scc::DeadlockError("all cores blocked");
  } catch (const scc::SimError& e) {
    EXPECT_EQ(e.code(), "rck.scc.deadlock");
  }
  try {
    throw scc::FaultStallError("no progress past horizon");
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), "rck.scc.fault_stall");
  }
  // Every taxonomy member is catchable as rck::Error.
  EXPECT_THROW(throw scc::SimError("boom"), Error);
}

}  // namespace
