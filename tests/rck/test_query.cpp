// rck::Query / run_query — the consolidated query surface: shape
// validation, agreement with the legacy one-vs-all shim and the direct
// kernel, ranking/top-k semantics, stable JSON.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "rck/bio/synthetic.hpp"
#include "rck/core/tmalign.hpp"
#include "rck/rck.hpp"
#include "rck/rckalign/one_vs_all.hpp"

namespace {

using namespace rck;

class QueryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bio::Rng rng(0x9E12);
    database_ = new std::vector<bio::Protein>();
    for (int i = 0; i < 5; ++i)
      database_->push_back(
          bio::make_protein("db" + std::to_string(i), 26 + 5 * i, rng));
    probe_ = new bio::Protein(bio::perturb((*database_)[2], "probe", rng));
  }
  static void TearDownTestSuite() {
    delete probe_;
    delete database_;
    probe_ = nullptr;
    database_ = nullptr;
  }
  static RunConfig config(int slaves) {
    RunConfig cfg;
    cfg.with_slaves(slaves);
    return cfg;
  }
  static std::vector<bio::Protein>* database_;
  static bio::Protein* probe_;
};

std::vector<bio::Protein>* QueryTest::database_ = nullptr;
bio::Protein* QueryTest::probe_ = nullptr;

TEST_F(QueryTest, ValidateQueryChecksShapes) {
  Query pair = Query::pair(*probe_, (*database_)[0]);
  EXPECT_TRUE(validate_query(pair, 0).empty());
  pair.probes.pop_back();
  EXPECT_FALSE(validate_query(pair, 0).empty());

  const Query ova = Query::one_vs_all(*probe_);
  EXPECT_TRUE(validate_query(ova, database_->size()).empty());
  EXPECT_FALSE(validate_query(ova, 0).empty());  // needs a database

  Query kva = Query::k_vs_all({*probe_, (*database_)[0]});
  EXPECT_TRUE(validate_query(kva, database_->size()).empty());
  kva.probes.clear();
  EXPECT_FALSE(validate_query(kva, database_->size()).empty());

  Query empty_probe = Query::one_vs_all(bio::Protein{});
  const auto issues = validate_query(empty_probe, database_->size());
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues[0].field, "query.probes[0]");
}

TEST_F(QueryTest, RunQueryRejectsBadShapesWithConfigError) {
  Query q = Query::one_vs_all(*probe_);
  q.probes.clear();
  EXPECT_THROW(run_query(*database_, q, config(3)), ConfigError);
  EXPECT_THROW(run_query(*database_, Query::one_vs_all(*probe_), config(0)),
               ConfigError);
}

TEST_F(QueryTest, OneVsAllMatchesLegacyShim) {
  const QueryResult res =
      run_query(*database_, Query::one_vs_all(*probe_), config(3));
  rckalign::OneVsAllOptions legacy;
  legacy.slave_count = 3;
  const rckalign::OneVsAllRun shim =
      rckalign::run_one_vs_all(*probe_, *database_, legacy);

  EXPECT_EQ(res.makespan, shim.makespan);
  ASSERT_EQ(res.hits.size(), shim.ranked[0].size());
  for (std::size_t k = 0; k < res.hits.size(); ++k) {
    EXPECT_EQ(res.hits[k].entry, shim.ranked[0][k].entry);
    EXPECT_DOUBLE_EQ(res.hits[k].tm_query, shim.ranked[0][k].tm_query);
    EXPECT_DOUBLE_EQ(res.hits[k].rmsd, shim.ranked[0][k].rmsd);
  }
}

TEST_F(QueryTest, PairQueryMatchesDirectKernel) {
  const QueryResult res = run_query(
      {}, Query::pair(*probe_, (*database_)[2]), config(2));
  ASSERT_EQ(res.hits.size(), 1u);
  const QueryHit& h = res.hits[0];
  EXPECT_EQ(h.probe, 0u);
  EXPECT_EQ(h.entry, 1u);  // the second probe, since a pair has no database
  const core::TmAlignResult direct = core::tmalign(*probe_, (*database_)[2]);
  EXPECT_DOUBLE_EQ(h.tm_query, direct.tm_norm_a);
  EXPECT_DOUBLE_EQ(h.tm_entry, direct.tm_norm_b);
  EXPECT_DOUBLE_EQ(h.rmsd, direct.rmsd);
}

TEST_F(QueryTest, KVsAllCoversEveryProbeEntryPair) {
  const std::vector<bio::Protein> probes{*probe_, (*database_)[0]};
  const QueryResult res =
      run_query(*database_, Query::k_vs_all(probes), config(4));
  EXPECT_EQ(res.hits.size(), probes.size() * database_->size());
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (const QueryHit& h : res.hits) seen.insert({h.probe, h.entry});
  EXPECT_EQ(seen.size(), res.hits.size());
  // Probe-major grouping, each probe's group ranked by descending TM.
  for (std::size_t k = 1; k < res.hits.size(); ++k) {
    const QueryHit& prev = res.hits[k - 1];
    const QueryHit& cur = res.hits[k];
    EXPECT_LE(prev.probe, cur.probe);
    if (prev.probe == cur.probe) {
      EXPECT_GE(prev.tm_query, cur.tm_query);
    }
  }
}

TEST_F(QueryTest, TopKTruncatesPerMethodProbeGroup) {
  const QueryResult all =
      run_query(*database_, Query::one_vs_all(*probe_), config(3));
  const QueryResult top2 =
      run_query(*database_, Query::one_vs_all(*probe_, 2), config(3));
  ASSERT_EQ(top2.hits.size(), 2u);
  EXPECT_EQ(top2.hits[0], all.hits[0]);
  EXPECT_EQ(top2.hits[1], all.hits[1]);
}

TEST_F(QueryTest, MultiMethodHitsAreMethodMajorInConfigOrder) {
  RunConfig cfg = config(3);
  cfg.with_methods({rckalign::Method::GaplessRmsd, rckalign::Method::TmAlign});
  const QueryResult res =
      run_query(*database_, Query::one_vs_all(*probe_), cfg);
  ASSERT_EQ(res.hits.size(), 2 * database_->size());
  for (std::size_t k = 0; k < database_->size(); ++k)
    EXPECT_EQ(res.hits[k].method, rckalign::Method::GaplessRmsd);
  for (std::size_t k = database_->size(); k < res.hits.size(); ++k)
    EXPECT_EQ(res.hits[k].method, rckalign::Method::TmAlign);
}

TEST_F(QueryTest, ToJsonIsByteStableAndCarriesTheSchema) {
  const Query q = Query::one_vs_all(*probe_, 3);
  const QueryResult a = run_query(*database_, q, config(3));
  const QueryResult b = run_query(*database_, q, config(3));
  EXPECT_EQ(a, b);
  const std::string ja = a.to_json();
  EXPECT_EQ(ja, b.to_json());
  EXPECT_NE(ja.find("\"schema\": \"rck-query-result-v1\""), std::string::npos);
  EXPECT_NE(ja.find("\"kind\": \"one_vs_all\""), std::string::npos);
  EXPECT_NE(ja.find("\"tm_query\": "), std::string::npos);
}

TEST_F(QueryTest, ArrivalRidesThroughToCompletion) {
  Query q = Query::one_vs_all(*probe_);
  q.at(12345);
  const QueryResult res = run_query(*database_, q, config(3));
  EXPECT_EQ(res.arrival, 12345u);
  EXPECT_EQ(res.completion, 12345u + static_cast<std::uint64_t>(res.makespan));
}

TEST_F(QueryTest, RunRejectsMultiMethodConfigs) {
  RunConfig cfg = config(3);
  cfg.with_methods({rckalign::Method::TmAlign, rckalign::Method::GaplessRmsd});
  EXPECT_TRUE(cfg.validate().empty());  // valid for queries...
  EXPECT_THROW(rck::run(*database_, cfg), ConfigError);  // ...not for run()
}

}  // namespace
