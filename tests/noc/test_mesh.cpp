#include "rck/noc/error.hpp"
#include "rck/noc/mesh.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rck::noc {
namespace {

TEST(Mesh, SccGeometry) {
  const Mesh m(6, 4);
  EXPECT_EQ(m.node_count(), 24);
  EXPECT_EQ(m.cols(), 6);
  EXPECT_EQ(m.rows(), 4);
  // 2 * ((6-1)*4 + 6*(4-1)) = 2 * (20 + 18) = 76 directed links
  EXPECT_EQ(m.link_count(), 76);
}

TEST(Mesh, CoordRoundTrip) {
  const Mesh m(6, 4);
  for (int n = 0; n < m.node_count(); ++n) EXPECT_EQ(m.node(m.coord(n)), n);
  EXPECT_EQ(m.coord(0), (MeshCoord{0, 0}));
  EXPECT_EQ(m.coord(5), (MeshCoord{5, 0}));
  EXPECT_EQ(m.coord(6), (MeshCoord{0, 1}));
  EXPECT_EQ(m.coord(23), (MeshCoord{5, 3}));
}

TEST(Mesh, HopsIsManhattan) {
  const Mesh m(6, 4);
  EXPECT_EQ(m.hops(0, 0), 0);
  EXPECT_EQ(m.hops(0, 5), 5);
  EXPECT_EQ(m.hops(0, 23), 5 + 3);
  EXPECT_EQ(m.hops(7, 14), m.hops(14, 7));
}

TEST(Mesh, XyRouteGoesXThenY) {
  const Mesh m(6, 4);
  const auto route = m.xy_route(m.node({1, 1}), m.node({4, 3}));
  ASSERT_EQ(route.size(), 5u);  // 3 east + 2 north
  // First three links move along x at y=1.
  EXPECT_EQ(route[0].from, m.node({1, 1}));
  EXPECT_EQ(route[0].to, m.node({2, 1}));
  EXPECT_EQ(route[2].to, m.node({4, 1}));
  // Then y.
  EXPECT_EQ(route[3].to, m.node({4, 2}));
  EXPECT_EQ(route[4].to, m.node({4, 3}));
}

TEST(Mesh, RouteLengthEqualsHops) {
  const Mesh m(6, 4);
  for (int a = 0; a < m.node_count(); a += 3)
    for (int b = 0; b < m.node_count(); b += 2)
      EXPECT_EQ(static_cast<int>(m.xy_route(a, b).size()), m.hops(a, b));
}

TEST(Mesh, RouteLinksAreAdjacent) {
  const Mesh m(6, 4);
  const auto route = m.xy_route(0, 23);
  for (const Link& l : route) EXPECT_EQ(m.hops(l.from, l.to), 1);
  // Contiguity: each link starts where the previous ended.
  for (std::size_t k = 1; k < route.size(); ++k)
    EXPECT_EQ(route[k].from, route[k - 1].to);
}

TEST(Mesh, SelfRouteIsEmpty) {
  const Mesh m(6, 4);
  EXPECT_TRUE(m.xy_route(9, 9).empty());
}

TEST(Mesh, XyRoutingIsDeterministicAndAsymmetric) {
  // XY forward and YX-equivalent reverse use different intermediate links.
  const Mesh m(6, 4);
  const auto fwd = m.xy_route(m.node({0, 0}), m.node({2, 2}));
  const auto rev = m.xy_route(m.node({2, 2}), m.node({0, 0}));
  EXPECT_EQ(fwd.size(), rev.size());
  // fwd goes through (2,0); rev goes through (0,2).
  EXPECT_EQ(fwd[1].to, m.node({2, 0}));
  EXPECT_EQ(rev[1].to, m.node({0, 2}));
}

TEST(Mesh, LinkIndexUniqueAndBounded) {
  const Mesh m(6, 4);
  std::set<int> seen;
  for (int n = 0; n < m.node_count(); ++n) {
    const MeshCoord c = m.coord(n);
    const MeshCoord neighbours[] = {
        {c.x + 1, c.y}, {c.x - 1, c.y}, {c.x, c.y + 1}, {c.x, c.y - 1}};
    for (const MeshCoord& nb : neighbours) {
      if (nb.x < 0 || nb.x >= m.cols() || nb.y < 0 || nb.y >= m.rows()) continue;
      const int idx = m.link_index({n, m.node(nb)});
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, m.link_index_bound());
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate index " << idx;
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), m.link_count());
}

TEST(Mesh, LinkIndexRejectsNonAdjacent) {
  const Mesh m(6, 4);
  EXPECT_THROW(m.link_index({0, 2}), rck::noc::NocError);
  EXPECT_THROW(m.link_index({0, 0}), rck::noc::NocError);
}

TEST(Mesh, BoundsChecking) {
  const Mesh m(6, 4);
  EXPECT_THROW(m.coord(-1), rck::noc::NocError);
  EXPECT_THROW(m.coord(24), rck::noc::NocError);
  EXPECT_THROW(m.node({6, 0}), rck::noc::NocError);
  EXPECT_THROW(m.hops(0, 99), rck::noc::NocError);
  EXPECT_THROW(Mesh(0, 4), rck::noc::NocError);
}

TEST(Mesh, NonSccShapes) {
  const Mesh line(8, 1);
  EXPECT_EQ(line.link_count(), 14);
  EXPECT_EQ(line.hops(0, 7), 7);
  const Mesh single(1, 1);
  EXPECT_EQ(single.link_count(), 0);
  EXPECT_TRUE(single.xy_route(0, 0).empty());
}

}  // namespace
}  // namespace rck::noc
