#include "rck/noc/error.hpp"
#include "rck/noc/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rck::noc {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int k = 0; k < 5; ++k) q.schedule_at(7, [&order, k] { order.push_back(k); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleAfterUsesNow) {
  EventQueue q;
  SimTime seen = 0;
  q.schedule_at(100, [&] {
    q.schedule_after(50, [&] { seen = q.now(); });
  });
  q.run();
  EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, RejectsSchedulingIntoPast) {
  EventQueue q;
  q.schedule_at(100, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(50, [] {}), rck::noc::NocError);
}

TEST(EventQueue, RunUntilBound) {
  EventQueue q;
  int fired = 0;
  for (SimTime t : {10u, 20u, 30u, 40u}) q.schedule_at(t, [&] { ++fired; });
  EXPECT_EQ(q.run(25), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.pending(), 2u);
  q.run();
  EXPECT_EQ(fired, 4);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) q.schedule_after(1, chain);
  };
  q.schedule_at(0, chain);
  q.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(q.now(), 9u);
  EXPECT_EQ(q.fired(), 10u);
}

TEST(EventQueue, EmptyQueueBehaviour) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(q.run_one(), rck::noc::NocError);
  EXPECT_EQ(q.run(), 0u);
}

TEST(EventQueue, NextTimePeeksEarliest) {
  EventQueue q;
  q.schedule_at(42, [] {});
  q.schedule_at(17, [] {});
  EXPECT_EQ(q.next_time(), 17u);
}

TEST(EventQueue, LargeVolumeStaysOrdered) {
  EventQueue q;
  SimTime last = 0;
  bool ordered = true;
  // deterministic pseudo-random times
  std::uint64_t x = 12345;
  for (int k = 0; k < 10000; ++k) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    q.schedule_at(x % 1000000, [&] {
      if (q.now() < last) ordered = false;
      last = q.now();
    });
  }
  q.run();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(q.fired(), 10000u);
}

TEST(EventQueueTargets, EarliestForTracksPerEntityMinimum) {
  EventQueue q;
  q.schedule_at(30, [] {}, /*target=*/0);
  q.schedule_at(10, [] {}, /*target=*/1);
  q.schedule_at(50, [] {}, /*target=*/1);
  EXPECT_EQ(q.earliest_for(0), 30u);
  EXPECT_EQ(q.earliest_for(1), 10u);
  EXPECT_EQ(q.earliest_for(2), kTimeInfinity);  // nothing can touch entity 2
  EXPECT_EQ(q.lookahead(), 10u);
  EXPECT_EQ(q.next_target(), 1);
}

TEST(EventQueueTargets, UntargetedEventsAffectEveryEntity) {
  EventQueue q;
  q.schedule_at(40, [] {}, /*target=*/3);
  q.schedule_at(25, [] {});  // kUntargeted: may touch anything
  EXPECT_EQ(q.earliest_for(3), 25u);
  EXPECT_EQ(q.earliest_for(7), 25u);
  EXPECT_EQ(q.next_target(), EventQueue::kUntargeted);
}

TEST(EventQueueTargets, FiringErasesTheTargetBookkeeping) {
  EventQueue q;
  q.schedule_at(10, [] {}, 0);
  q.schedule_at(20, [] {}, 0);
  q.schedule_at(15, [] {});
  q.run_one();  // fires the t=10 event targeting 0
  EXPECT_EQ(q.earliest_for(0), 15u);  // untargeted at 15 now leads
  q.run_one();  // fires the untargeted t=15 event
  EXPECT_EQ(q.earliest_for(0), 20u);
  EXPECT_EQ(q.earliest_for(1), kTimeInfinity);
  q.run();
  EXPECT_EQ(q.earliest_for(0), kTimeInfinity);
  EXPECT_EQ(q.lookahead(), kTimeInfinity);
}

TEST(EventQueueTargets, EventsSchedulingTargetedEventsStayConsistent) {
  EventQueue q;
  q.schedule_at(5, [&] { q.schedule_after(10, [] {}, 2); }, 1);
  q.run_one();
  EXPECT_EQ(q.earliest_for(2), 15u);
  EXPECT_EQ(q.next_target(), 2);
}

TEST(SimTimeConversion, RoundTrips) {
  EXPECT_DOUBLE_EQ(to_seconds(kPsPerSec), 1.0);
  EXPECT_EQ(from_seconds(2.5), 2500 * kPsPerMs);
  EXPECT_EQ(cycle_ps(800e6), 1250u);
  EXPECT_EQ(cycle_ps(2.4e9), 417u);  // rounded from 416.67
}

}  // namespace
}  // namespace rck::noc
