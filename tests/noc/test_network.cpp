#include "rck/noc/network.hpp"

#include <gtest/gtest.h>

namespace rck::noc {
namespace {

NetworkParams simple_params() {
  NetworkParams p;
  p.hop_latency = 10 * kPsPerNs;
  p.bytes_per_ns = 1.0;          // 1 byte per ns: easy arithmetic
  p.sw_overhead = 100 * kPsPerNs;
  p.mpb_chunk_bytes = 1000;
  p.per_chunk_overhead = 5 * kPsPerNs;
  return p;
}

TEST(Network, UncontendedLatencyFormula) {
  EventQueue q;
  Network net(q, Mesh(6, 4), simple_params());
  // 0 -> 5: 5 hops; 500 bytes = 500 ns transfer + 1 chunk overhead.
  const SimTime lat = net.uncontended_latency(0, 5, 500);
  EXPECT_EQ(lat, (100 + 5 * 10 + 500 + 5) * kPsPerNs);
}

TEST(Network, ZeroByteMessageHasNoTransferTerm) {
  EventQueue q;
  Network net(q, Mesh(6, 4), simple_params());
  EXPECT_EQ(net.uncontended_latency(0, 1, 0), (100 + 10) * kPsPerNs);
}

TEST(Network, DeliveryCallbackAtComputedTime) {
  EventQueue q;
  Network net(q, Mesh(6, 4), simple_params());
  SimTime delivered = 0;
  const SimTime predicted =
      net.send(0, 5, 500, 0, [&](SimTime t) { delivered = t; });
  q.run();
  EXPECT_EQ(delivered, predicted);
  EXPECT_EQ(delivered, net.uncontended_latency(0, 5, 500));
}

TEST(Network, SameTileDelivery) {
  EventQueue q;
  Network net(q, Mesh(6, 4), simple_params());
  SimTime delivered = 0;
  net.send(3, 3, 100, 0, [&](SimTime t) { delivered = t; });
  q.run();
  // sw overhead + transfer only; no hops.
  EXPECT_EQ(delivered, (100 + 100 + 5) * kPsPerNs);
}

TEST(Network, SharedLinkSerializes) {
  EventQueue q;
  Network net(q, Mesh(6, 4), simple_params());
  // Two messages 0 -> 1 injected at the same instant must queue on the
  // single 0->1 link.
  SimTime t1 = 0, t2 = 0;
  net.send(0, 1, 1000, 0, [&](SimTime t) { t1 = t; });
  net.send(0, 1, 1000, 0, [&](SimTime t) { t2 = t; });
  q.run();
  EXPECT_GT(t2, t1);
  // Second waits for the first's link occupancy (hop + transfer).
  EXPECT_GE(t2 - t1, (10 + 1000) * kPsPerNs);
  EXPECT_GT(net.stats().total_queueing, 0u);
}

TEST(Network, DisjointRoutesDoNotInterfere) {
  EventQueue q;
  Network net(q, Mesh(6, 4), simple_params());
  SimTime t1 = 0, t2 = 0;
  net.send(0, 1, 1000, 0, [&](SimTime t) { t1 = t; });
  net.send(12, 13, 1000, 0, [&](SimTime t) { t2 = t; });
  q.run();
  EXPECT_EQ(t1, t2);  // identical path shapes, no shared links
  EXPECT_EQ(net.stats().total_queueing, 0u);
}

TEST(Network, StatsAccumulate) {
  EventQueue q;
  Network net(q, Mesh(6, 4), simple_params());
  net.send(0, 5, 200, 0, [](SimTime) {});
  net.send(5, 0, 300, 0, [](SimTime) {});
  q.run();
  EXPECT_EQ(net.stats().messages, 2u);
  EXPECT_EQ(net.stats().total_bytes, 500u);
  EXPECT_EQ(net.stats().total_hops, 10u);
}

TEST(Network, PerLinkStats) {
  EventQueue q;
  Network net(q, Mesh(6, 4), simple_params());
  net.send(0, 2, 100, 0, [](SimTime) {});
  q.run();
  const LinkStats& first = net.link_stats({0, 1});
  EXPECT_EQ(first.messages, 1u);
  EXPECT_EQ(first.bytes, 100u);
  EXPECT_GT(first.busy, 0u);
  // Reverse direction untouched.
  EXPECT_EQ(net.link_stats({1, 0}).messages, 0u);
}

TEST(Network, ChunkingOverheadGrowsWithSize) {
  EventQueue q;
  Network net(q, Mesh(6, 4), simple_params());
  // 2500 bytes => 3 chunks at 1000 B each.
  const SimTime lat = net.uncontended_latency(0, 1, 2500);
  EXPECT_EQ(lat, (100 + 10 + 2500 + 3 * 5) * kPsPerNs);
}

TEST(Network, EndpointOccupancy) {
  EventQueue q;
  Network net(q, Mesh(6, 4), simple_params());
  EXPECT_EQ(net.endpoint_occupancy(500), (100 + 500 + 5) * kPsPerNs);
}

TEST(Network, LaterDepartureLaterArrival) {
  EventQueue q;
  Network net(q, Mesh(6, 4), simple_params());
  SimTime t1 = 0, t2 = 0;
  net.send(0, 23, 100, 0, [&](SimTime t) { t1 = t; });
  net.send(0, 23, 100, 1000 * kPsPerNs, [&](SimTime t) { t2 = t; });
  q.run();
  EXPECT_GT(t2, t1);
}

}  // namespace
}  // namespace rck::noc
