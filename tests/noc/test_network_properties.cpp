// Property sweeps over the network model: conservation, causality and
// contention invariants under randomized traffic (TEST_P over patterns).
#include <gtest/gtest.h>

#include <random>

#include "rck/noc/network.hpp"

namespace rck::noc {
namespace {

struct TrafficParam {
  std::uint64_t seed;
  int messages;
  std::uint64_t max_bytes;
};

class NetworkProperties : public ::testing::TestWithParam<TrafficParam> {};

TEST_P(NetworkProperties, ConservationAndCausality) {
  const TrafficParam p = GetParam();
  std::mt19937_64 rng(p.seed);
  std::uniform_int_distribution<int> node(0, 23);
  std::uniform_int_distribution<std::uint64_t> size(1, p.max_bytes);
  std::uniform_int_distribution<SimTime> depart(0, 100 * kPsPerUs);

  EventQueue q;
  Network net(q, Mesh(6, 4));

  std::uint64_t total_bytes = 0;
  int delivered = 0;
  SimTime last_makespan = 0;
  for (int k = 0; k < p.messages; ++k) {
    const int src = node(rng);
    const int dst = node(rng);
    const std::uint64_t bytes = size(rng);
    const SimTime t0 = depart(rng);
    total_bytes += bytes;
    const SimTime lower = t0 + net.uncontended_latency(src, dst, bytes);
    const SimTime predicted =
        net.send(src, dst, bytes, t0, [&, lower](SimTime arrival) {
          ++delivered;
          // Causality: contention can only delay, never accelerate.
          EXPECT_GE(arrival, lower);
        });
    EXPECT_GE(predicted, lower);
    last_makespan = std::max(last_makespan, predicted);
  }
  q.run();

  EXPECT_EQ(delivered, p.messages);
  EXPECT_EQ(net.stats().messages, static_cast<std::uint64_t>(p.messages));
  EXPECT_EQ(net.stats().total_bytes, total_bytes);

  // Per-link busy time cannot exceed the span of the simulation.
  const Mesh& mesh = net.mesh();
  for (int n = 0; n < mesh.node_count(); ++n) {
    const MeshCoord c = mesh.coord(n);
    const MeshCoord neighbours[] = {
        {c.x + 1, c.y}, {c.x - 1, c.y}, {c.x, c.y + 1}, {c.x, c.y - 1}};
    for (const MeshCoord& nb : neighbours) {
      if (nb.x < 0 || nb.x >= mesh.cols() || nb.y < 0 || nb.y >= mesh.rows())
        continue;
      EXPECT_LE(net.link_stats({n, mesh.node(nb)}).busy, last_makespan);
    }
  }
}

TEST_P(NetworkProperties, DeterministicReplay) {
  const TrafficParam p = GetParam();
  auto run_once = [&] {
    std::mt19937_64 rng(p.seed);
    std::uniform_int_distribution<int> node(0, 23);
    std::uniform_int_distribution<std::uint64_t> size(1, p.max_bytes);
    EventQueue q;
    Network net(q, Mesh(6, 4));
    SimTime sum = 0;
    for (int k = 0; k < p.messages; ++k) {
      const int src = node(rng);
      const int dst = node(rng);
      sum += net.send(src, dst, size(rng), 0, [](SimTime) {});
    }
    q.run();
    return sum;
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(Traffic, NetworkProperties,
                         ::testing::Values(TrafficParam{1, 10, 64},
                                           TrafficParam{2, 200, 64},
                                           TrafficParam{3, 200, 65536},
                                           TrafficParam{4, 1000, 1024},
                                           TrafficParam{5, 50, 1}));

TEST(NetworkProperties, HotspotQueueingGrowsWithLoad) {
  // Messages into one router: queueing time must be superlinear-ish in
  // message count (each extra message waits behind all previous).
  auto queueing_for = [](int messages) {
    EventQueue q;
    Network net(q, Mesh(6, 4));
    for (int k = 0; k < messages; ++k) net.send(0, 1, 4096, 0, [](SimTime) {});
    q.run();
    return net.stats().total_queueing;
  };
  const SimTime q10 = queueing_for(10);
  const SimTime q20 = queueing_for(20);
  EXPECT_GT(q20, 3 * q10);  // ~4x for doubled count (sum of arithmetic series)
}

}  // namespace
}  // namespace rck::noc
