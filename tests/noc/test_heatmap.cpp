#include "rck/noc/error.hpp"
#include "rck/noc/heatmap.hpp"

#include <gtest/gtest.h>

namespace rck::noc {
namespace {

TEST(UtilizationDigit, Buckets) {
  EXPECT_EQ(utilization_digit(0.0), '0');
  EXPECT_EQ(utilization_digit(0.05), '0');
  EXPECT_EQ(utilization_digit(0.10), '1');
  EXPECT_EQ(utilization_digit(0.55), '5');
  EXPECT_EQ(utilization_digit(0.94), '9');
  EXPECT_EQ(utilization_digit(0.95), '*');
  EXPECT_EQ(utilization_digit(2.0), '*');
  EXPECT_EQ(utilization_digit(-1.0), '0');
}

TEST(Heatmap, RendersAllRouters) {
  EventQueue q;
  Network net(q, Mesh(6, 4));
  const std::string map = render_link_heatmap(net, kPsPerSec);
  for (int n = 0; n < 24; ++n) {
    char label[8];
    std::snprintf(label, sizeof label, "[%02d]", n);
    EXPECT_NE(map.find(label), std::string::npos) << n;
  }
}

TEST(Heatmap, IdleNetworkAllZero) {
  EventQueue q;
  Network net(q, Mesh(3, 3));
  std::string map = render_link_heatmap(net, kPsPerSec);
  map.resize(map.find("link utilization"));  // drop the legend line
  // Utilization digits appear right after 'v' (vertical links) and right
  // before '>' (horizontal links); router ids in [NN] labels don't count.
  for (std::size_t k = 0; k + 1 < map.size(); ++k) {
    if (map[k] == 'v') {
      EXPECT_EQ(map[k + 1], '0') << "vertical link at " << k;
    }
    if (map[k + 1] == '>') {
      EXPECT_EQ(map[k], '0') << "horizontal link at " << k;
    }
  }
}

TEST(Heatmap, BusyLinkShowsUp) {
  EventQueue q;
  NetworkParams params;
  params.bytes_per_ns = 1.0;
  Network net(q, Mesh(3, 3), params);
  // Saturate link 0->1 for ~the whole window.
  const SimTime window = 10 * kPsPerUs;
  for (int k = 0; k < 12; ++k) net.send(0, 1, 800, 0, [](SimTime) {});
  q.run();
  const std::string map = render_link_heatmap(net, window);
  // The first east-link digit (between [00] and [01]) must be high.
  const std::size_t pos = map.find("[00] ");
  ASSERT_NE(pos, std::string::npos);
  const char digit = map[pos + 5];
  EXPECT_TRUE(digit == '*' || digit >= '8') << digit;
}

TEST(Heatmap, ZeroMakespanRejected) {
  EventQueue q;
  Network net(q, Mesh(3, 3));
  EXPECT_THROW(render_link_heatmap(net, 0), rck::noc::NocError);
}

}  // namespace
}  // namespace rck::noc
