#include <gtest/gtest.h>

#include <set>

#include "rck/noc/error.hpp"
#include "rck/noc/mesh.hpp"
#include "rck/noc/network.hpp"

namespace rck::noc {
namespace {

TEST(Torus, LinkCount) {
  const Mesh t(6, 4, true);
  EXPECT_EQ(t.link_count(), 4 * 24);
  EXPECT_TRUE(t.is_torus());
  EXPECT_FALSE(Mesh(6, 4).is_torus());
}

TEST(Torus, RequiresMinimumSize) {
  EXPECT_THROW(Mesh(2, 4, true), rck::noc::NocError);
  EXPECT_THROW(Mesh(4, 2, true), rck::noc::NocError);
  EXPECT_NO_THROW(Mesh(3, 3, true));
}

TEST(Torus, WraparoundShortensHops) {
  const Mesh mesh(6, 4, false);
  const Mesh torus(6, 4, true);
  // Opposite corners: mesh 5+3=8 hops, torus 1+1=2 (wrap both dims).
  const int a = mesh.node({0, 0});
  const int b = mesh.node({5, 3});
  EXPECT_EQ(mesh.hops(a, b), 8);
  EXPECT_EQ(torus.hops(a, b), 2);
}

TEST(Torus, HopsSymmetric) {
  const Mesh t(6, 4, true);
  for (int a = 0; a < t.node_count(); a += 5)
    for (int b = 0; b < t.node_count(); b += 3)
      EXPECT_EQ(t.hops(a, b), t.hops(b, a));
}

TEST(Torus, HopsNeverExceedMesh) {
  const Mesh mesh(6, 4, false);
  const Mesh torus(6, 4, true);
  for (int a = 0; a < 24; ++a)
    for (int b = 0; b < 24; ++b) EXPECT_LE(torus.hops(a, b), mesh.hops(a, b));
}

TEST(Torus, RouteLengthEqualsHops) {
  const Mesh t(6, 4, true);
  for (int a = 0; a < t.node_count(); ++a)
    for (int b = 0; b < t.node_count(); ++b)
      EXPECT_EQ(static_cast<int>(t.xy_route(a, b).size()), t.hops(a, b))
          << a << "->" << b;
}

TEST(Torus, RouteLinksAreAdjacentUnderWrap) {
  const Mesh t(6, 4, true);
  const auto route = t.xy_route(t.node({0, 0}), t.node({5, 3}));
  ASSERT_EQ(route.size(), 2u);
  // First link wraps west: (0,0) -> (5,0).
  EXPECT_EQ(route[0].from, t.node({0, 0}));
  EXPECT_EQ(route[0].to, t.node({5, 0}));
  // Then wraps south: (5,0) -> (5,3).
  EXPECT_EQ(route[1].to, t.node({5, 3}));
  // Contiguity holds.
  EXPECT_EQ(route[1].from, route[0].to);
}

TEST(Torus, LinkIndexUniqueIncludingWrapLinks) {
  const Mesh t(5, 4, true);
  std::set<int> seen;
  for (int n = 0; n < t.node_count(); ++n) {
    const MeshCoord c = t.coord(n);
    const MeshCoord neighbours[] = {{(c.x + 1) % 5, c.y},
                                    {(c.x + 4) % 5, c.y},
                                    {c.x, (c.y + 1) % 4},
                                    {c.x, (c.y + 3) % 4}};
    for (const MeshCoord& nb : neighbours) {
      const int idx = t.link_index({n, t.node(nb)});
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, t.link_index_bound());
      EXPECT_TRUE(seen.insert(idx).second);
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), t.link_count());
}

TEST(Torus, TieBreakDeterministic) {
  // Even ring: exactly-halfway distances must pick a consistent direction.
  const Mesh t(6, 4, true);
  const auto r1 = t.xy_route(t.node({0, 0}), t.node({3, 0}));
  const auto r2 = t.xy_route(t.node({0, 0}), t.node({3, 0}));
  ASSERT_EQ(r1.size(), 3u);
  for (std::size_t k = 0; k < r1.size(); ++k) EXPECT_EQ(r1[k], r2[k]);
  // Documented tie-break: positive (eastward) direction.
  EXPECT_EQ(r1[0].to, t.node({1, 0}));
}

TEST(Torus, NetworkDeliversOverWrapLinks) {
  EventQueue q;
  Network net(q, Mesh(6, 4, true));
  SimTime corner = 0, same = 0;
  net.send(0, 23, 256, 0, [&](SimTime t) { corner = t; });
  q.run();
  EventQueue q2;
  Network mesh_net(q2, Mesh(6, 4, false));
  mesh_net.send(0, 23, 256, 0, [&](SimTime t) { same = t; });
  q2.run();
  EXPECT_LT(corner, same);  // 2 hops beats 8 hops
}

TEST(Torus, MeshBehaviourUnchangedByDefault) {
  const Mesh m(6, 4);
  EXPECT_EQ(m.hops(0, 5), 5);  // no wrap by default
  EXPECT_EQ(m.link_count(), 76);
}

}  // namespace
}  // namespace rck::noc
