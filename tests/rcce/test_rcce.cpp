#include "rck/rcce/rcce.hpp"

#include <gtest/gtest.h>

namespace rck::rcce {
namespace {

TEST(Rcce, UeIdentityAndNaming) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  rt.run(3, [](scc::CoreCtx& ctx) {
    Comm comm(ctx);
    EXPECT_EQ(comm.ue(), ctx.rank());
    EXPECT_EQ(comm.num_ues(), 3);
    char expect[8];
    std::snprintf(expect, sizeof expect, "rck%02d", comm.ue());
    EXPECT_EQ(comm.ue_name(), expect);
  });
}

TEST(Rcce, WtimeTracksSimulatedSeconds) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  rt.run(1, [](scc::CoreCtx& ctx) {
    Comm comm(ctx);
    EXPECT_DOUBLE_EQ(comm.wtime(), 0.0);
    comm.charge_time(noc::from_seconds(1.5));
    EXPECT_DOUBLE_EQ(comm.wtime(), 1.5);
  });
}

TEST(Rcce, SendRecvRoundTrip) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  rt.run(2, [](scc::CoreCtx& ctx) {
    Comm comm(ctx);
    if (comm.ue() == 0) {
      bio::WireWriter w;
      w.str("structure data");
      comm.send(1, w.take());
      bio::WireReader r(comm.recv(1));
      EXPECT_EQ(r.str(), "ack");
    } else {
      bio::WireReader r(comm.recv(0));
      EXPECT_EQ(r.str(), "structure data");
      bio::WireWriter w;
      w.str("ack");
      comm.send(0, w.take());
    }
  });
}

TEST(Rcce, TestFlagPolling) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  rt.run(2, [](scc::CoreCtx& ctx) {
    Comm comm(ctx);
    if (comm.ue() == 0) {
      comm.charge_time(noc::kPsPerMs);  // send at t = 1 ms
      comm.send(1, bio::Bytes(8));
    } else {
      // Busy-poll like RCCE flag-waiting code does; each test() costs one
      // poll interval of simulated time, so the loop terminates.
      int polls = 0;
      while (!comm.test(0)) ++polls;
      (void)comm.recv(0);
      EXPECT_GT(polls, 0);
      EXPECT_LT(polls, 100000);
    }
  });
}

TEST(Rcce, BarrierAcrossAllUes) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  rt.run(5, [](scc::CoreCtx& ctx) {
    Comm comm(ctx);
    comm.charge_time(static_cast<noc::SimTime>(comm.ue()) * noc::kPsPerUs);
    const double before = comm.wtime();
    comm.barrier();
    EXPECT_GE(comm.wtime(), before);
  });
}

TEST(Rcce, ChargeCyclesDelegatesToTimingModel) {
  scc::RuntimeConfig cfg;
  scc::SpmdRuntime rt(cfg);
  rt.run(1, [](scc::CoreCtx& ctx) {
    Comm comm(ctx);
    comm.charge_cycles(400'000'000);  // half a second at 800 MHz
    EXPECT_DOUBLE_EQ(comm.wtime(), 0.5);
  });
}

TEST(Rcce, DramReadCharges) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  rt.run(1, [](scc::CoreCtx& ctx) {
    Comm comm(ctx);
    comm.charge_dram_read(1 << 20);
    EXPECT_GT(comm.wtime(), 0.0);
  });
}

}  // namespace
}  // namespace rck::rcce
