#include "rck/rcce/collectives.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace rck::rcce {
namespace {

using bio::Bytes;
using bio::WireReader;
using bio::WireWriter;

Bytes text_payload(const std::string& s) {
  WireWriter w;
  w.str(s);
  return w.take();
}

std::string text_of(const Bytes& b) {
  WireReader r(b);
  return r.str();
}

class Collectives : public ::testing::TestWithParam<std::tuple<int, CollectiveAlgo>> {};

TEST_P(Collectives, BcastDeliversToEveryone) {
  const auto [p, algo] = GetParam();
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  rt.run(p, [algo = algo](scc::CoreCtx& ctx) {
    Comm comm(ctx);
    Bytes data = comm.ue() == 0 ? text_payload("the broadcast") : Bytes{};
    const Bytes got = bcast(comm, std::move(data), 0, algo);
    EXPECT_EQ(text_of(got), "the broadcast");
  });
}

TEST_P(Collectives, BcastNonZeroRoot) {
  const auto [p, algo] = GetParam();
  if (p < 2) return;
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  rt.run(p, [algo = algo, p = p](scc::CoreCtx& ctx) {
    Comm comm(ctx);
    const int root = p - 1;
    Bytes data = comm.ue() == root ? text_payload("from the back") : Bytes{};
    EXPECT_EQ(text_of(bcast(comm, std::move(data), root, algo)), "from the back");
  });
}

TEST_P(Collectives, ReduceSumsRankContributions) {
  const auto [p, algo] = GetParam();
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  rt.run(p, [algo = algo, p = p](scc::CoreCtx& ctx) {
    Comm comm(ctx);
    // Each rank contributes {rank, 1}.
    std::vector<double> mine{static_cast<double>(comm.ue()), 1.0};
    const auto result =
        reduce(comm, mine, [](double a, double b) { return a + b; }, 0, algo);
    if (comm.ue() == 0) {
      ASSERT_EQ(result.size(), 2u);
      EXPECT_DOUBLE_EQ(result[0], p * (p - 1) / 2.0);
      EXPECT_DOUBLE_EQ(result[1], p);
    } else {
      EXPECT_TRUE(result.empty());
    }
  });
}

TEST_P(Collectives, AllreduceEveryoneAgrees) {
  const auto [p, algo] = GetParam();
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  rt.run(p, [algo = algo, p = p](scc::CoreCtx& ctx) {
    Comm comm(ctx);
    const auto result = allreduce(
        comm, {static_cast<double>(comm.ue() + 1)},
        [](double a, double b) { return a > b ? a : b; }, algo);
    ASSERT_EQ(result.size(), 1u);
    EXPECT_DOUBLE_EQ(result[0], p);  // max over ranks+1
  });
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndAlgos, Collectives,
    ::testing::Combine(::testing::Values(1, 2, 3, 7, 8, 16, 48),
                       ::testing::Values(CollectiveAlgo::Linear,
                                         CollectiveAlgo::BinomialTree)));

TEST(CollectivesExtra, GatherCollectsByRank) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  rt.run(6, [](scc::CoreCtx& ctx) {
    Comm comm(ctx);
    const auto all = gather(comm, text_payload("ue" + std::to_string(comm.ue())));
    if (comm.ue() == 0) {
      ASSERT_EQ(all.size(), 6u);
      for (int r = 0; r < 6; ++r)
        EXPECT_EQ(text_of(all[static_cast<std::size_t>(r)]), "ue" + std::to_string(r));
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(CollectivesExtra, ScatterDeliversPerRankChunks) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  rt.run(5, [](scc::CoreCtx& ctx) {
    Comm comm(ctx);
    std::vector<Bytes> chunks;
    if (comm.ue() == 0)
      for (int r = 0; r < 5; ++r) chunks.push_back(text_payload("chunk" + std::to_string(r)));
    const Bytes mine = scatter(comm, std::move(chunks));
    EXPECT_EQ(text_of(mine), "chunk" + std::to_string(comm.ue()));
  });
}

TEST(CollectivesExtra, ScatterGatherRoundTrip) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  rt.run(4, [](scc::CoreCtx& ctx) {
    Comm comm(ctx);
    std::vector<Bytes> chunks;
    if (comm.ue() == 0)
      for (int r = 0; r < 4; ++r) chunks.push_back(text_payload(std::to_string(r * r)));
    const Bytes mine = scatter(comm, std::move(chunks));
    const auto back = gather(comm, mine);
    if (comm.ue() == 0) {
      for (int r = 0; r < 4; ++r)
        EXPECT_EQ(text_of(back[static_cast<std::size_t>(r)]), std::to_string(r * r));
    }
  });
}

TEST(CollectivesExtra, ScatterWrongChunkCountThrows) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  EXPECT_THROW(rt.run(3,
                      [](scc::CoreCtx& ctx) {
                        Comm comm(ctx);
                        std::vector<Bytes> chunks(2);  // need 3
                        if (comm.ue() == 0) (void)scatter(comm, std::move(chunks));
                        else (void)scatter(comm, {});
                      }),
               rck::rcce::RcceError);
}

TEST(CollectivesExtra, ConvenienceReductions) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  rt.run(5, [](scc::CoreCtx& ctx) {
    Comm comm(ctx);
    EXPECT_DOUBLE_EQ(allreduce_sum(comm, 2.0), 10.0);
    EXPECT_DOUBLE_EQ(allreduce_max(comm, static_cast<double>(comm.ue())), 4.0);
  });
}

TEST(CollectivesExtra, TreeBroadcastBeatsLinearAtScale) {
  // The point of the tree algorithm: 47 serialized root sends vs ~6 rounds.
  // Use a large payload so per-message time dominates.
  auto run_with = [](CollectiveAlgo algo) {
    scc::SpmdRuntime rt{scc::RuntimeConfig{}};
    const noc::SimTime t = rt.run(48, [algo](scc::CoreCtx& ctx) {
      Comm comm(ctx);
      Bytes data = comm.ue() == 0 ? Bytes(64 * 1024) : Bytes{};
      (void)bcast(comm, std::move(data), 0, algo);
      comm.barrier();
    });
    return t;
  };
  const noc::SimTime linear = run_with(CollectiveAlgo::Linear);
  const noc::SimTime tree = run_with(CollectiveAlgo::BinomialTree);
  EXPECT_LT(static_cast<double>(tree), 0.5 * static_cast<double>(linear));
}

TEST(CollectivesExtra, ReduceLengthMismatchThrows) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  EXPECT_THROW(
      rt.run(2,
             [](scc::CoreCtx& ctx) {
               Comm comm(ctx);
               std::vector<double> mine(comm.ue() == 0 ? 2 : 3, 1.0);
               (void)reduce(comm, mine, [](double a, double b) { return a + b; });
             }),
      rck::rcce::RcceError);
}

TEST(CollectivesExtra, BadRootThrows) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  EXPECT_THROW(rt.run(2,
                      [](scc::CoreCtx& ctx) {
                        Comm comm(ctx);
                        (void)bcast(comm, {}, 5);
                      }),
               rck::rcce::RcceError);
}

}  // namespace
}  // namespace rck::rcce
