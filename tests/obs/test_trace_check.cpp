// Embedded JSON parser + Chrome trace_event schema checker tests.
#include <gtest/gtest.h>

#include <string>

#include "rck/obs/trace_check.hpp"

namespace {

using namespace rck;

obs::JsonValue parse_ok(const std::string& text) {
  obs::JsonValue v;
  std::string error;
  EXPECT_TRUE(obs::json_parse(text, v, error)) << error;
  return v;
}

TEST(JsonParse, Scalars) {
  EXPECT_EQ(parse_ok("null").kind, obs::JsonValue::Kind::Null);
  const obs::JsonValue t = parse_ok("true");
  EXPECT_EQ(t.kind, obs::JsonValue::Kind::Bool);
  EXPECT_TRUE(t.boolean);
  EXPECT_DOUBLE_EQ(parse_ok("-12.5e2").number, -1250.0);
  EXPECT_EQ(parse_ok("\"hi\\nthere\"").string, "hi\nthere");
  EXPECT_EQ(parse_ok("\"\\u0041\"").string, "A");
}

TEST(JsonParse, NestedContainers) {
  const obs::JsonValue v = parse_ok(R"({"a": [1, {"b": "c"}], "d": {}})");
  ASSERT_TRUE(v.is_object());
  const obs::JsonValue* a = v.get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 2u);
  EXPECT_DOUBLE_EQ(a->array[0].number, 1.0);
  const obs::JsonValue* b = a->array[1].get("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->string, "c");
}

TEST(JsonParse, RejectsMalformedInput) {
  obs::JsonValue v;
  std::string error;
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "\"unterminated", "tru", "1.",
        "{\"a\": 1} trailing", "\"bad\\escape\"", "\"\\ud800\""}) {
    EXPECT_FALSE(obs::json_parse(bad, v, error)) << bad;
    EXPECT_FALSE(error.empty());
  }
}

TEST(ValidateChromeTrace, AcceptsMinimalDocument) {
  const std::string doc = R"({"traceEvents": [
    {"name": "proc", "ph": "M", "pid": 0},
    {"name": "work", "ph": "X", "pid": 0, "tid": 1, "ts": 0, "dur": 10},
    {"name": "mark", "ph": "i", "pid": 0, "tid": 1, "ts": 5, "s": "t"},
    {"name": "q", "ph": "C", "pid": 1, "tid": 0, "ts": 5, "args": {"value": 3}},
    {"name": "job", "ph": "b", "pid": 2, "tid": 0, "ts": 1, "id": "0x1"},
    {"name": "job", "ph": "e", "pid": 2, "tid": 0, "ts": 9, "id": "0x1"}
  ]})";
  std::string error;
  std::size_t events = 0;
  EXPECT_TRUE(obs::validate_chrome_trace(doc, error, &events)) << error;
  EXPECT_EQ(events, 6u);
}

TEST(ValidateChromeTrace, RejectsSchemaViolations) {
  std::string error;
  // Not an object at top level.
  EXPECT_FALSE(obs::validate_chrome_trace("[]", error));
  // Missing traceEvents.
  EXPECT_FALSE(obs::validate_chrome_trace("{}", error));
  // Event without ph.
  EXPECT_FALSE(obs::validate_chrome_trace(
      R"({"traceEvents": [{"name": "x", "pid": 0}]})", error));
  // Span without dur.
  EXPECT_FALSE(obs::validate_chrome_trace(
      R"({"traceEvents": [{"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 0}]})",
      error));
  // Counter without args.value.
  EXPECT_FALSE(obs::validate_chrome_trace(
      R"({"traceEvents": [{"name": "x", "ph": "C", "pid": 0, "tid": 0, "ts": 0}]})",
      error));
  // Async without id.
  EXPECT_FALSE(obs::validate_chrome_trace(
      R"({"traceEvents": [{"name": "x", "ph": "b", "pid": 0, "tid": 0, "ts": 0}]})",
      error));
  // Unknown phase.
  EXPECT_FALSE(obs::validate_chrome_trace(
      R"({"traceEvents": [{"name": "x", "ph": "Z", "pid": 0, "tid": 0, "ts": 0}]})",
      error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
