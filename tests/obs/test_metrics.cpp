// rck::obs unit tests: histogram bucket math, registry identity, recorder
// shard merging, and byte-stable serialization.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "rck/obs/metrics.hpp"
#include "rck/obs/obs.hpp"
#include "rck/obs/sink.hpp"
#include "rck/obs/trace_check.hpp"

namespace {

using namespace rck;

TEST(Histogram, BucketEdges) {
  using H = obs::Histogram;
  EXPECT_EQ(H::bucket_of(0), 0u);
  EXPECT_EQ(H::bucket_of(1), 1u);
  EXPECT_EQ(H::bucket_of(2), 2u);
  EXPECT_EQ(H::bucket_of(3), 2u);
  EXPECT_EQ(H::bucket_of(4), 3u);
  EXPECT_EQ(H::bucket_of(255), 8u);
  EXPECT_EQ(H::bucket_of(256), 9u);
  EXPECT_EQ(H::bucket_of(UINT64_MAX), 64u);

  // Every power of two sits at the bottom of its own bucket.
  for (unsigned k = 0; k < 64; ++k) {
    const std::uint64_t v = std::uint64_t{1} << k;
    const auto [lo, hi] = H::bucket_range(H::bucket_of(v));
    EXPECT_EQ(lo, v);
    EXPECT_TRUE(v < hi);
    if (v > 1) EXPECT_EQ(H::bucket_of(v - 1), H::bucket_of(v) - 1);
  }
  EXPECT_EQ(H::bucket_range(0), (std::pair<std::uint64_t, std::uint64_t>{0, 1}));
  EXPECT_EQ(H::bucket_range(64).second, UINT64_MAX);
}

TEST(Histogram, ObserveTracksMoments) {
  obs::Histogram h;
  h.observe(0);
  h.observe(7);
  h.observe(8);
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 15u);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 8u);
  EXPECT_EQ(h.buckets[0], 1u);  // 0
  EXPECT_EQ(h.buckets[3], 1u);  // 7 in [4, 8)
  EXPECT_EQ(h.buckets[4], 1u);  // 8 in [8, 16)
}

TEST(Histogram, SumSaturatesInsteadOfWrapping) {
  obs::Histogram h;
  h.observe(UINT64_MAX);
  h.observe(UINT64_MAX);
  EXPECT_EQ(h.sum, UINT64_MAX);
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.buckets[64], 2u);

  obs::Histogram other;
  other.observe(UINT64_MAX);
  h.merge(other);
  EXPECT_EQ(h.sum, UINT64_MAX);  // merge saturates too
  EXPECT_EQ(h.count, 3u);
}

TEST(Histogram, MergeWithEmptyKeepsMinMax) {
  obs::Histogram a;
  a.observe(5);
  obs::Histogram empty;
  a.merge(empty);
  EXPECT_EQ(a.min, 5u);
  EXPECT_EQ(a.max, 5u);
  EXPECT_EQ(a.count, 1u);

  obs::Histogram b;
  b.merge(a);
  EXPECT_EQ(b.min, 5u);
  EXPECT_EQ(b.max, 5u);
}

TEST(Registry, ReRegisteringReturnsSameId) {
  obs::Registry reg;
  const obs::CounterId a = reg.counter("x.count", obs::Unit::Jobs);
  const obs::CounterId b = reg.counter("x.count", obs::Unit::Jobs);
  EXPECT_EQ(a.v, b.v);
  EXPECT_EQ(reg.counters().size(), 1u);
  // Same name, different kind => separate namespaces, no clash.
  const obs::GaugeId g = reg.gauge("x.count");
  EXPECT_TRUE(g.ok());
}

TEST(Registry, UnitMismatchThrows) {
  obs::Registry reg;
  reg.counter("x.bytes", obs::Unit::Bytes);
  EXPECT_THROW(reg.counter("x.bytes", obs::Unit::Ps), rck::obs::ObsError);
}

TEST(Recorder, NullHandleIsSafe) {
  const obs::Handle h;
  EXPECT_FALSE(h);
  h.add(obs::CounterId{0});
  h.set_gauge(obs::GaugeId{0}, 1.0, 5);
  h.observe(obs::HistId{0}, 3);
  h.span(obs::Lane::Core, 1, 0, 10);
  h.instant(obs::Lane::Farm, 1, 0);
  h.sample(obs::Lane::Core, 1, 0, 42);
  h.async_begin(obs::Lane::Farm, 1, 0, 7);
  h.async_end(obs::Lane::Farm, 1, 0, 7);
  // Reaching here without a crash is the assertion.
}

TEST(Recorder, InterningAfterSealThrows) {
  obs::Recorder rec(obs::Config::collect(), 2);
  rec.seal();
  EXPECT_THROW(rec.name("too-late"), rck::obs::ObsError);
  // Re-interning an existing name is still fine after seal.
  EXPECT_EQ(rec.name("compute"), rec.std_ids().n_compute);
}

TEST(Recorder, CountersSumAcrossShards) {
  obs::Recorder rec(obs::Config::collect(), 3);
  rec.seal();
  const obs::Std& ids = rec.std_ids();
  rec.add(0, ids.app_pairs, 2);
  rec.add(2, ids.app_pairs, 5);
  rec.add(rec.system_shard(), ids.app_pairs, 1);

  const obs::Snapshot snap = rec.snapshot();
  for (const auto& row : snap.counters) {
    if (row.name != "app.pairs") continue;
    EXPECT_EQ(row.value, 8u);
    ASSERT_EQ(row.per_shard.size(), 4u);  // 3 cores + system
    EXPECT_EQ(row.per_shard[0], 2u);
    EXPECT_EQ(row.per_shard[1], 0u);
    EXPECT_EQ(row.per_shard[2], 5u);
    EXPECT_EQ(row.per_shard[3], 1u);
    return;
  }
  FAIL() << "app.pairs row missing";
}

TEST(Recorder, GaugeLastWriteWinsByTsThenShard) {
  obs::Recorder rec(obs::Config::collect(), 2);
  rec.seal();
  const obs::GaugeId g = rec.std_ids().farm_live_slaves;
  rec.set_gauge(0, g, 10.0, /*ts=*/100);
  rec.set_gauge(1, g, 20.0, /*ts=*/50);  // earlier ts loses despite higher shard
  obs::Snapshot snap = rec.snapshot();
  EXPECT_EQ(snap.gauges[1].name, "farm.live_slaves");
  EXPECT_DOUBLE_EQ(snap.gauges[1].value, 10.0);

  rec.set_gauge(1, g, 30.0, /*ts=*/100);  // same ts, higher shard wins
  snap = rec.snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges[1].value, 30.0);
}

TEST(Recorder, MergedTraceOrderIsTsThenShardThenSeq) {
  obs::Recorder rec(obs::Config::collect(), 2);
  rec.seal();
  const obs::NameId n = rec.std_ids().n_compute;
  // Shard 1 records before shard 0 in host order; ts order must win.
  rec.span(1, obs::Lane::Core, n, 200, 300, 1);
  rec.span(0, obs::Lane::Core, n, 100, 150, 2);
  rec.instant(0, obs::Lane::Core, n, 200, 3);  // ties ts=200 with shard 1 span
  rec.instant(0, obs::Lane::Core, n, 200, 4);  // per-shard seq tiebreak

  const auto merged = rec.merged_trace();
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].rec.id, 2u);  // ts=100
  EXPECT_EQ(merged[1].rec.id, 3u);  // ts=200 shard 0, first
  EXPECT_EQ(merged[2].rec.id, 4u);  // ts=200 shard 0, second
  EXPECT_EQ(merged[3].rec.id, 1u);  // ts=200 shard 1
}

/// Two recorders fed the same data through different host-side interleavings
/// must serialize to identical bytes — the unit-level version of the
/// serial-vs-parallel byte-identity guarantee.
TEST(Recorder, SerializationIsByteStable) {
  auto fill = [](obs::Recorder& rec, bool reversed) {
    rec.seal();
    const obs::Std& ids = rec.std_ids();
    const int shards[2] = {reversed ? 1 : 0, reversed ? 0 : 1};
    for (const int s : shards) {
      rec.add(s, ids.noc_messages, static_cast<std::uint64_t>(s) + 1);
      rec.observe(s, ids.noc_msg_bytes, 100u * static_cast<std::uint64_t>(s + 1));
      rec.span(s, obs::Lane::Core, ids.n_compute, 10u * static_cast<obs::Ts>(s),
               10u * static_cast<obs::Ts>(s) + 5, static_cast<std::uint64_t>(s));
    }
    rec.set_gauge(0, ids.app_pairs_per_sec, 3.25, 40);
  };
  obs::Recorder a(obs::Config::collect(), 2), b(obs::Config::collect(), 2);
  fill(a, false);
  fill(b, true);

  EXPECT_EQ(a.snapshot().to_json(), b.snapshot().to_json());
  EXPECT_EQ(obs::chrome_trace_json(a), obs::chrome_trace_json(b));
}

TEST(Recorder, ChromeTraceJsonValidates) {
  obs::Recorder rec(obs::Config::collect(), 2);
  rec.seal();
  const obs::Std& ids = rec.std_ids();
  rec.span(0, obs::Lane::Core, ids.n_compute, 0, 1000, 0);
  rec.instant(1, obs::Lane::Core, ids.n_crash, 500, 1);
  rec.sample(1, obs::Lane::Core, ids.n_mpb, 700, 64, 1);
  rec.async_begin(0, obs::Lane::Farm, ids.n_job, 100, 7);
  rec.async_end(0, obs::Lane::Farm, ids.n_job, 900, 7);
  rec.span(rec.system_shard(), obs::Lane::LinkX, ids.n_link, 10, 20, 3);

  const std::string json = obs::chrome_trace_json(rec);
  std::string error;
  std::size_t events = 0;
  EXPECT_TRUE(obs::validate_chrome_trace(json, error, &events)) << error;
  EXPECT_GT(events, 6u);  // the 6 records + metadata
}

TEST(Snapshot, JsonCarriesSchemaAndSparseBuckets) {
  obs::Recorder rec(obs::Config::collect(), 1);
  rec.seal();
  rec.observe(0, rec.std_ids().noc_msg_bytes, 1024);
  const std::string json = rec.snapshot().to_json();
  EXPECT_NE(json.find("\"schema\": \"rck-obs-metrics-v1\""), std::string::npos);
  // 1024 has bit width 11; the sparse encoding lists [bucket, count] pairs.
  EXPECT_NE(json.find("[11, 1]"), std::string::npos);
}

}  // namespace
