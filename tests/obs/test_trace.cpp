// End-to-end observability determinism on the paper's CK34 workload.
//
// The headline guarantees under test:
//   * enabling observability does not perturb the simulation (makespan and
//     results identical to an uninstrumented run);
//   * serial and host-parallel executions produce byte-identical trace and
//     metrics JSON;
//   * the emitted Chrome trace validates against the schema checker, and
//     its farm job spans account for each slave core's busy time.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rck/bio/dataset.hpp"
#include "rck/obs/sink.hpp"
#include "rck/obs/trace_check.hpp"
#include "rck/rck.hpp"

namespace {

using namespace rck;

constexpr int kSlaves = 12;

class TraceE2E : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new std::vector<bio::Protein>(bio::build_dataset(bio::ck34_spec()));
    cache_ = new rckalign::PairCache(rckalign::PairCache::build(*dataset_));
  }
  static void TearDownTestSuite() {
    delete cache_;
    cache_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  static RunResult run_with(int host_threads, bool collect) {
    RunConfig cfg;
    cfg.with_slaves(kSlaves).with_cache(cache_).with_host_threads(host_threads);
    if (collect) cfg.with_collect();
    return rck::run(*dataset_, cfg);
  }

  static std::vector<bio::Protein>* dataset_;
  static rckalign::PairCache* cache_;
};

std::vector<bio::Protein>* TraceE2E::dataset_ = nullptr;
rckalign::PairCache* TraceE2E::cache_ = nullptr;

TEST_F(TraceE2E, ObservabilityDoesNotPerturbTheSimulation) {
  const RunResult plain = run_with(1, false);
  const RunResult traced = run_with(1, true);
  EXPECT_EQ(plain.makespan, traced.makespan);
  EXPECT_EQ(plain.results, traced.results);
  EXPECT_EQ(plain.core_reports, traced.core_reports);
  EXPECT_EQ(plain.events, traced.events);
  EXPECT_EQ(plain.obs, nullptr);
  EXPECT_NE(traced.obs, nullptr);
}

TEST_F(TraceE2E, SerialAndHostParallelTracesAreByteIdentical) {
  const RunResult serial = run_with(1, true);
  const RunResult parallel = run_with(4, true);
  ASSERT_NE(serial.obs, nullptr);
  ASSERT_NE(parallel.obs, nullptr);

  EXPECT_EQ(serial.makespan, parallel.makespan);
  EXPECT_EQ(serial.results, parallel.results);

  const std::string trace_a = obs::chrome_trace_json(*serial.obs);
  const std::string trace_b = obs::chrome_trace_json(*parallel.obs);
  EXPECT_EQ(trace_a, trace_b);

  const std::string metrics_a = serial.obs->snapshot().to_json();
  const std::string metrics_b = parallel.obs->snapshot().to_json();
  EXPECT_EQ(metrics_a, metrics_b);

  std::string error;
  std::size_t events = 0;
  ASSERT_TRUE(obs::validate_chrome_trace(trace_a, error, &events)) << error;
  // One lane entry per core op at minimum; CK34 with 561 jobs is busy.
  EXPECT_GT(events, 2u * 561u);
}

TEST_F(TraceE2E, FarmJobSpansAccountForSlaveBusyTime) {
  const RunResult run = run_with(1, true);
  ASSERT_NE(run.obs, nullptr);
  const obs::Std& ids = run.obs->std_ids();

  // Sum the slave-side job spans (decode -> result sent) per shard.
  std::vector<std::uint64_t> span_sum(run.core_reports.size(), 0);
  for (const auto& m : run.obs->merged_trace()) {
    if (m.rec.ph != obs::Ph::Span || m.rec.lane != obs::Lane::Core) continue;
    if (m.rec.name != ids.n_job) continue;
    ASSERT_LT(static_cast<std::size_t>(m.shard), span_sum.size());
    span_sum[static_cast<std::size_t>(m.shard)] += m.rec.dur;
  }

  for (int rank = 1; rank <= kSlaves; ++rank) {
    const std::uint64_t busy = run.core_reports[static_cast<std::size_t>(rank)].busy;
    const std::uint64_t spans = span_sum[static_cast<std::size_t>(rank)];
    ASSERT_GT(busy, 0u);
    ASSERT_GT(spans, 0u) << "slave " << rank << " recorded no job spans";
    // Per-pair compute dwarfs the protocol endpoints (READY handshake, job
    // frame receive), so the job spans must essentially be the busy time.
    const double ratio =
        static_cast<double>(spans) / static_cast<double>(busy);
    EXPECT_GT(ratio, 0.99) << "slave " << rank;
    EXPECT_LT(ratio, 1.01) << "slave " << rank;
  }

  // Master-side accounting: one async begin/end pair per job, balanced.
  std::uint64_t begins = 0, ends = 0;
  for (const auto& m : run.obs->merged_trace()) {
    if (m.rec.lane != obs::Lane::Farm) continue;
    if (m.rec.ph == obs::Ph::AsyncBegin) ++begins;
    if (m.rec.ph == obs::Ph::AsyncEnd) ++ends;
  }
  EXPECT_EQ(begins, 561u);
  EXPECT_EQ(ends, 561u);
}

TEST_F(TraceE2E, MetricsMatchSimulationTotals) {
  const RunResult run = run_with(1, true);
  ASSERT_NE(run.obs, nullptr);
  const obs::Snapshot snap = run.obs->snapshot();

  auto counter = [&](std::string_view name) -> std::uint64_t {
    for (const auto& row : snap.counters)
      if (row.name == name) return row.value;
    ADD_FAILURE() << "counter " << name << " missing";
    return 0;
  };

  EXPECT_EQ(counter("app.pairs"), 561u);
  EXPECT_EQ(counter("farm.jobs"), 561u);
  EXPECT_EQ(counter("farm.results"), 561u);
  EXPECT_EQ(counter("noc.messages"), run.network.messages);
  EXPECT_EQ(counter("noc.bytes"), run.network.total_bytes);
  EXPECT_EQ(counter("scc.crashes"), 0u);

  // Histogram plumbing: one job-latency observation per collected job.
  for (const auto& row : snap.histograms) {
    if (row.name == "farm.job_latency_ps") {
      EXPECT_EQ(row.merged.count, 561u);
      EXPECT_GT(row.merged.min, 0u);
    }
    if (row.name == "farm.slave_job_ps") EXPECT_EQ(row.merged.count, 561u);
  }
}

}  // namespace
