// End-to-end bounded exploration through the rck:: umbrella: clean configs
// stay bit-identical across every explored schedule, seeded protocol
// mutants are caught, and the written witness replays to the same
// violation (serialize -> replay -> identical verdict).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "rck/bio/synthetic.hpp"
#include "rck/rck.hpp"

namespace rck {
namespace {

std::vector<bio::Protein> tiny_dataset(int structures = 5) {
  bio::Rng rng(0xE5C0u);
  static constexpr int kLengths[] = {30, 44, 61, 37, 52};
  std::vector<bio::Protein> ds;
  for (int i = 0; i < structures; ++i) {
    ds.push_back(
        bio::make_protein("mc/t" + std::to_string(i), kLengths[i % 5], rng));
  }
  return ds;
}

TEST(McExplore, CleanFarmExploresBitIdentical) {
  const auto ds = tiny_dataset();
  const rckalign::PairCache cache = rckalign::PairCache::build(ds);
  RunConfig cfg;
  cfg.with_slaves(3)
      .with_cache(&cache)
      .with_mc()
      .with_mc_bound(48)
      .with_mc_label("test/plain");
  const McOutcome out = mc_explore(ds, cfg);
  EXPECT_FALSE(out.violation.has_value());
  EXPECT_GE(out.schedules, 2u);  // ties exist even on a tiny config
  EXPECT_LE(out.schedules, 48u);
  EXPECT_NE(out.canonical_digest, 0u);

  // Exploration is itself deterministic: same config, same digest, same
  // schedule count.
  const McOutcome again = mc_explore(ds, cfg);
  EXPECT_EQ(again.canonical_digest, out.canonical_digest);
  EXPECT_EQ(again.schedules, out.schedules);
}

TEST(McExplore, BatchConfigMatchesPlainDigest) {
  // Batched grants change the message pattern but not the scored matrix:
  // the canonical digests of the two configs must agree (the same rows are
  // hashed, worker assignment excluded).
  const auto ds = tiny_dataset();
  const rckalign::PairCache cache = rckalign::PairCache::build(ds);
  RunConfig plain;
  plain.with_slaves(3).with_cache(&cache).with_mc().with_mc_bound(8);
  RunConfig batch;
  batch.with_slaves(3).with_cache(&cache).with_batch(3).with_mc().with_mc_bound(
      8);
  EXPECT_EQ(mc_explore(ds, plain).canonical_digest,
            mc_explore(ds, batch).canonical_digest);
}

TEST(McExplore, MutantCaughtAndWitnessReplaysIdentically) {
  const auto ds = tiny_dataset();
  const rckalign::PairCache cache = rckalign::PairCache::build(ds);
  const std::string witness_path =
      (std::filesystem::temp_directory_path() / "rck_mc_test_witness.json")
          .string();

  RunConfig cfg;
  cfg.with_slaves(3)
      .with_cache(&cache)
      .with_fault_tolerance()
      .with_mc()
      .with_mc_bound(128)
      .with_mc_label("test/ft-double-grant")
      .with_mc_witness(witness_path)
      .with_protocol_mutant(rckskel::ProtocolMutant::DoubleGrant);
  const McOutcome out = mc_explore(ds, cfg);
  ASSERT_TRUE(out.violation.has_value());
  EXPECT_EQ(out.violation->invariant, "lease_safety");
  EXPECT_EQ(out.witness.invariant, "lease_safety");

  // serialize -> replay -> identical violation.
  const mc::Witness saved = mc::load_witness(witness_path);
  EXPECT_EQ(saved, out.witness);
  RunConfig replay_cfg = cfg;
  replay_cfg.with_mc_witness("").with_mc_replay(witness_path);
  const McOutcome replayed = mc_replay(ds, replay_cfg);
  ASSERT_TRUE(replayed.violation.has_value());
  EXPECT_EQ(replayed.violation->invariant, out.violation->invariant);
  EXPECT_EQ(replayed.violation->detail, out.violation->detail);
  std::remove(witness_path.c_str());
}

TEST(McExplore, ValidationRejectsConflictingPaths) {
  RunConfig cfg;
  cfg.with_mc().with_mc_replay("w.json").with_mc_witness("w.json");
  EXPECT_FALSE(cfg.validate().empty());
}

}  // namespace
}  // namespace rck
