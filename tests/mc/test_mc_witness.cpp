// rck-mc-witness-v1 codec: writer/parser inversion (property-tested over
// generated witnesses), the golden document shape, and the error taxonomy
// for malformed input and file I/O.
#include "rck/mc/witness.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

namespace rck::mc {
namespace {

using Rng = std::mt19937_64;

/// Strings exercising every escape class the writer emits: quotes,
/// backslashes, the named escapes, raw control bytes (\u-escaped) and
/// plain printable ASCII.
std::string arbitrary_string(Rng& rng, std::size_t max_len) {
  static constexpr char kAlphabet[] =
      "\"\\\n\r\t\x01\x1f abc{}[]:,/xyzRCK0123456789";
  std::uniform_int_distribution<std::size_t> len(0, max_len);
  std::uniform_int_distribution<std::size_t> pick(0, sizeof(kAlphabet) - 2);
  std::string s;
  const std::size_t n = len(rng);
  for (std::size_t i = 0; i < n; ++i) s.push_back(kAlphabet[pick(rng)]);
  return s;
}

Witness arbitrary_witness(Rng& rng) {
  Witness w;
  w.config = arbitrary_string(rng, 24);
  w.schedule = std::uniform_int_distribution<std::uint64_t>()(rng);
  w.invariant = arbitrary_string(rng, 24);
  w.detail = arbitrary_string(rng, 64);
  std::uniform_int_distribution<std::size_t> count(0, 12);
  std::uniform_int_distribution<std::uint32_t> arity(2, 6);
  std::uniform_int_distribution<int> kind(0, 1);
  const std::size_t steps = count(rng);
  for (std::size_t i = 0; i < steps; ++i) {
    Step s;
    s.kind = kind(rng) ? DecisionKind::EventTie : DecisionKind::CoreTie;
    s.n = arity(rng);
    s.chosen = std::uniform_int_distribution<std::uint32_t>(0, s.n - 1)(rng);
    w.steps.push_back(s);
  }
  return w;
}

TEST(McWitness, JsonRoundTripIsIdentity) {
  Rng rng(0xA11CE5ull);
  for (int i = 0; i < 500; ++i) {
    const Witness w = arbitrary_witness(rng);
    const std::string doc = to_json(w);
    const Witness back = parse_witness(doc);
    ASSERT_EQ(back, w) << "round-trip diverged on:\n" << doc;
    // Idempotence: serializing the parse reproduces the document.
    ASSERT_EQ(to_json(back), doc);
  }
}

TEST(McWitness, GoldenDocumentShape) {
  Witness w;
  w.config = "master-ft";
  w.schedule = 12;
  w.invariant = "lease_safety";
  w.detail = "job granted to ue 2";
  w.steps = {{DecisionKind::CoreTie, 3, 1}, {DecisionKind::EventTie, 2, 0}};
  const std::string doc = to_json(w);
  EXPECT_NE(doc.find("\"format\": \"rck-mc-witness-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"schedule\": 12"), std::string::npos);
  EXPECT_NE(doc.find("{\"kind\": \"core\", \"n\": 3, \"chosen\": 1}"),
            std::string::npos);
  EXPECT_NE(doc.find("{\"kind\": \"event\", \"n\": 2, \"chosen\": 0}"),
            std::string::npos);
  EXPECT_EQ(parse_witness(doc), w);
}

TEST(McWitness, ParserRejectsMalformedDocuments) {
  EXPECT_THROW(parse_witness(""), WitnessError);
  EXPECT_THROW(parse_witness("{}"), WitnessError);  // no format tag
  EXPECT_THROW(parse_witness("{\"format\": \"rck-mc-witness-v2\"}"),
               WitnessError);
  EXPECT_THROW(parse_witness("{\"format\": \"rck-mc-witness-v1\""),
               WitnessError);  // truncated
  EXPECT_THROW(
      parse_witness("{\"format\": \"rck-mc-witness-v1\", \"bogus\": 1}"),
      WitnessError);
  EXPECT_THROW(
      parse_witness("{\"format\": \"rck-mc-witness-v1\", \"decisions\": "
                    "[{\"kind\": \"quantum\", \"n\": 2, \"chosen\": 0}]}"),
      WitnessError);
  // Trailing garbage after a well-formed document.
  Witness w;
  EXPECT_THROW(parse_witness(to_json(w) + "x"), WitnessError);
}

TEST(McWitness, FileRoundTripAndIoErrors) {
  Rng rng(7);
  const Witness w = arbitrary_witness(rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "rck_mc_witness_test.json")
          .string();
  save_witness(w, path);
  EXPECT_EQ(load_witness(path), w);
  std::remove(path.c_str());
  EXPECT_THROW(load_witness(path), WitnessIoError);
  EXPECT_THROW(save_witness(w, "/nonexistent-dir/w.json"), WitnessIoError);
}

}  // namespace
}  // namespace rck::mc
