// rck::mc unit surface: the Session decision recorder/scripter, the
// Explorer's depth-first enumeration with independence pruning, and the
// protocol invariant checker over hand-built event logs.
#include "rck/mc/mc.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rck::mc {
namespace {

ProtoEvent ev(ProtoKind kind, int core, std::uint64_t a, std::uint64_t b = 0,
              std::uint64_t ts = 0) {
  return ProtoEvent{kind, core, a, b, ts};
}

TEST(McSession, DefaultsToCanonicalChoiceZero) {
  Session s;
  EXPECT_EQ(s.choose_core_tie({1, 2, 3}), 0u);
  EXPECT_EQ(s.choose_event_tie(2, /*independent=*/false), 0u);
  s.finish();
  ASSERT_EQ(s.decisions().size(), 2u);
  EXPECT_EQ(s.decisions()[0].step.kind, DecisionKind::CoreTie);
  EXPECT_EQ(s.decisions()[0].step.n, 3u);
  EXPECT_EQ(s.decisions()[1].step.kind, DecisionKind::EventTie);
}

TEST(McSession, PrefixDrivesChoicesThenFallsBackToZero) {
  Session s(std::vector<std::uint32_t>{2, 1});
  EXPECT_EQ(s.choose_core_tie({1, 2, 3}), 2u);
  EXPECT_EQ(s.choose_event_tie(2, false), 1u);
  EXPECT_EQ(s.choose_core_tie({4, 5}), 0u);  // past the prefix
  s.finish();
}

TEST(McSession, RejectsDegenerateAndOutOfRangeDecisions) {
  Session s;
  EXPECT_THROW(s.choose_event_tie(1, false), McError);
  Session over(std::vector<std::uint32_t>{5});
  EXPECT_THROW(over.choose_core_tie({1, 2}), McError);
  Session done;
  done.finish();
  EXPECT_THROW(done.choose_core_tie({1, 2}), McError);
}

TEST(McSession, DecisionLimitGuardsRunaways) {
  Session s;
  s.decision_limit = 3;
  for (int i = 0; i < 3; ++i) s.choose_event_tie(2, false);
  EXPECT_THROW(s.choose_event_tie(2, false), McError);
}

TEST(McSession, CoreTieIndependenceFollowsSegmentLocality) {
  // Both tied cores run purely local quanta -> the node commutes.
  Session local;
  local.choose_core_tie({1, 2});
  local.segment(1, /*local=*/true);
  local.segment(2, /*local=*/true);
  local.finish();
  EXPECT_TRUE(local.decisions()[0].independent);

  // One tied core sends a message in its next quantum -> dependent.
  Session shared;
  shared.choose_core_tie({1, 2});
  shared.segment(1, true);
  shared.segment(2, /*local=*/false);
  shared.finish();
  EXPECT_FALSE(shared.decisions()[0].independent);

  // A core that never runs again (crash/finish) is vacuously local.
  Session vacuous;
  vacuous.choose_core_tie({1, 2});
  vacuous.segment(1, true);
  vacuous.finish();
  EXPECT_TRUE(vacuous.decisions()[0].independent);
}

TEST(McSession, SegmentWatchesAreFifoPerRank) {
  // Two back-to-back ties watch rank 1; the first quantum after the ties
  // classifies the first node only.
  Session s;
  s.choose_core_tie({1, 2});
  s.choose_core_tie({1, 3});
  s.segment(1, /*local=*/false);  // hits node 0
  s.segment(1, /*local=*/true);   // hits node 1
  s.segment(2, true);
  s.segment(3, true);
  s.finish();
  EXPECT_FALSE(s.decisions()[0].independent);
  EXPECT_TRUE(s.decisions()[1].independent);
}

TEST(McSession, EventTieIndependenceIsTheCallerVerdict) {
  Session s;
  s.choose_event_tie(2, true);
  s.choose_event_tie(2, false);
  s.finish();
  EXPECT_TRUE(s.decisions()[0].independent);
  EXPECT_FALSE(s.decisions()[1].independent);
}

TEST(McSession, StrictReplayFollowsScriptExactly) {
  const std::vector<Step> script{{DecisionKind::CoreTie, 3, 2},
                                 {DecisionKind::EventTie, 2, 1}};
  Session s(script);
  EXPECT_TRUE(s.strict());
  EXPECT_EQ(s.choose_core_tie({1, 2, 3}), 2u);
  EXPECT_EQ(s.choose_event_tie(2, false), 1u);
  s.finish();
  EXPECT_NO_THROW(s.verify_replay_complete());
}

TEST(McSession, StrictReplayDivergenceThrows) {
  // Wrong kind at the scripted node.
  Session kind(std::vector<Step>{{DecisionKind::EventTie, 2, 0}});
  EXPECT_THROW(kind.choose_core_tie({1, 2}), ReplayError);

  // Wrong arity.
  Session arity(std::vector<Step>{{DecisionKind::CoreTie, 3, 0}});
  EXPECT_THROW(arity.choose_core_tie({1, 2}), ReplayError);

  // The run demands more decisions than the witness scripts.
  Session exhausted(std::vector<Step>{});
  EXPECT_THROW(exhausted.choose_event_tie(2, false), ReplayError);

  // The run consumed fewer decisions than scripted.
  Session partial(std::vector<Step>{{DecisionKind::CoreTie, 2, 0},
                                    {DecisionKind::CoreTie, 2, 1}});
  partial.choose_core_tie({1, 2});
  partial.finish();
  EXPECT_THROW(partial.verify_replay_complete(), ReplayError);

  // verify_replay_complete is a replay-only operation.
  Session explore;
  EXPECT_THROW(explore.verify_replay_complete(), McError);
}

// Simulated run for Explorer tests: every schedule has the same decision
// shape (arity, independence per node); choices follow the prefix then 0.
std::vector<Decision> run_shape(
    const std::vector<std::uint32_t>& prefix,
    const std::vector<std::pair<std::uint32_t, bool>>& shape) {
  std::vector<Decision> ds;
  for (std::size_t i = 0; i < shape.size(); ++i) {
    const std::uint32_t chosen = i < prefix.size() ? prefix[i] : 0;
    ds.push_back(
        Decision{Step{DecisionKind::CoreTie, shape[i].first, chosen},
                 shape[i].second});
  }
  return ds;
}

TEST(McExplorer, EnumeratesTheFullTreeDepthFirst) {
  const std::vector<std::pair<std::uint32_t, bool>> shape{{2, false},
                                                          {2, false}};
  Explorer ex;
  std::vector<std::vector<std::uint32_t>> seen;
  do {
    seen.push_back(ex.prefix());
  } while (ex.advance(run_shape(ex.prefix(), shape)));
  EXPECT_TRUE(ex.exhausted());
  EXPECT_EQ(ex.explored(), 4u);
  // Schedule 0 is the empty prefix (all canonical); the rest walk the tree
  // deepest-first.
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen[0].empty());
  EXPECT_EQ(seen[1], (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(seen[2], (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(seen[3], (std::vector<std::uint32_t>{1, 1}));
}

TEST(McExplorer, IndependentNodesAreNeverExpanded) {
  // A 3-way independent node contributes exactly one schedule; only the
  // dependent binary node below it branches.
  const std::vector<std::pair<std::uint32_t, bool>> shape{{3, true},
                                                          {2, false}};
  Explorer ex;
  while (ex.advance(run_shape(ex.prefix(), shape))) {
  }
  EXPECT_TRUE(ex.exhausted());
  EXPECT_EQ(ex.explored(), 2u);
}

TEST(McExplorer, BoundStopsEarlyWithoutClaimingExhaustion) {
  const std::vector<std::pair<std::uint32_t, bool>> shape{{2, false},
                                                          {2, false}};
  Explorer ex(2);
  while (ex.advance(run_shape(ex.prefix(), shape))) {
  }
  EXPECT_FALSE(ex.exhausted());
  EXPECT_EQ(ex.explored(), 2u);
}

TEST(McProtocol, CleanFarmRoundTripHasNoViolation) {
  const std::vector<ProtoEvent> log{
      ev(ProtoKind::Grant, 0, /*job*/ 7, /*ue*/ 1),
      ev(ProtoKind::Exec, 1, 7),
      ev(ProtoKind::ResultSent, 1, 7),
      ev(ProtoKind::ResultAccept, 0, 7, 1),
      ev(ProtoKind::Grant, 0, 8, 1),
      ev(ProtoKind::Exec, 1, 8),
      ev(ProtoKind::ResultSent, 1, 8),
      ev(ProtoKind::ResultAccept, 0, 8, 1),
  };
  EXPECT_FALSE(check_protocol_log(log).has_value());
}

TEST(McProtocol, GrantWhileLeaseOpenIsLeaseSafety) {
  const std::vector<ProtoEvent> log{
      ev(ProtoKind::Grant, 0, 7, 1),
      ev(ProtoKind::Grant, 0, 7, 2),
  };
  const auto v = check_protocol_log(log);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "lease_safety");
  EXPECT_EQ(v->event_index, 1u);
  EXPECT_NE(v->detail.find("grant(a=7, b=2)"), std::string::npos);
}

TEST(McProtocol, OverlappingExecutorsAreLeaseSafety) {
  // The lease legitimately expired and the job migrated — but the original
  // executor is still mid-flight when the second one starts.
  const std::vector<ProtoEvent> log{
      ev(ProtoKind::Grant, 0, 7, 1),
      ev(ProtoKind::Exec, 1, 7),
      ev(ProtoKind::LeaseExpire, 0, 7, 1),
      ev(ProtoKind::Grant, 0, 7, 2),
      ev(ProtoKind::Exec, 2, 7),
  };
  const auto v = check_protocol_log(log);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "lease_safety");
  EXPECT_EQ(v->event_index, 4u);
}

TEST(McProtocol, GrantAfterCompletionIsNoReexec) {
  const std::vector<ProtoEvent> log{
      ev(ProtoKind::Grant, 0, 7, 1),
      ev(ProtoKind::Exec, 1, 7),
      ev(ProtoKind::ResultSent, 1, 7),
      ev(ProtoKind::ResultAccept, 0, 7, 1),
      ev(ProtoKind::Grant, 0, 7, 2),
  };
  const auto v = check_protocol_log(log);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "no_reexec");
  EXPECT_EQ(v->event_index, 4u);
}

TEST(McProtocol, SecondAcceptIsNoReexecAndDupDiscardIsClean) {
  const std::vector<ProtoEvent> dup_ok{
      ev(ProtoKind::Grant, 0, 7, 1),
      ev(ProtoKind::ResultAccept, 0, 7, 1),
      ev(ProtoKind::ResultDup, 0, 7, 2),
  };
  EXPECT_FALSE(check_protocol_log(dup_ok).has_value());

  const std::vector<ProtoEvent> twice{
      ev(ProtoKind::Grant, 0, 7, 1),
      ev(ProtoKind::ResultAccept, 0, 7, 1),
      ev(ProtoKind::ResultAccept, 0, 7, 2),
  };
  const auto v = check_protocol_log(twice);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "no_reexec");
}

TEST(McProtocol, CheckpointSequencesMustAdvance) {
  const std::vector<ProtoEvent> log{
      ev(ProtoKind::Checkpoint, 0, 1),
      ev(ProtoKind::Checkpoint, 0, 2),
      ev(ProtoKind::Checkpoint, 0, 2),
  };
  const auto v = check_protocol_log(log);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "checkpoint_monotonic");
  EXPECT_EQ(v->event_index, 2u);
}

TEST(McProtocol, StaleTakeoverIsCheckpointMonotonic) {
  const std::vector<ProtoEvent> log{
      ev(ProtoKind::CheckpointRecv, 13, 2),
      ev(ProtoKind::CheckpointRecv, 13, 4),
      ev(ProtoKind::Takeover, 13, 2),
  };
  const auto v = check_protocol_log(log);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "checkpoint_monotonic");
  EXPECT_NE(v->detail.find("sequence 4"), std::string::npos);
}

TEST(McProtocol, TakeoverResetsStateForLegitimateReexecution) {
  // Job 8 completed after checkpoint 1 was taken; after failover the
  // promoted master re-runs it from the restored frontier. That is the
  // protocol working, not a violation — and the checkpoint sequence also
  // restarts under the new master.
  const std::vector<ProtoEvent> log{
      ev(ProtoKind::Grant, 0, 7, 1),
      ev(ProtoKind::ResultAccept, 0, 7, 1),
      ev(ProtoKind::Checkpoint, 0, 1),
      ev(ProtoKind::CheckpointRecv, 13, 1),
      ev(ProtoKind::Grant, 0, 8, 1),
      ev(ProtoKind::ResultAccept, 0, 8, 1),
      ev(ProtoKind::Takeover, 13, 1),
      ev(ProtoKind::Restore, 13, 7),
      ev(ProtoKind::Grant, 13, 8, 2),
      ev(ProtoKind::Exec, 2, 8),
      ev(ProtoKind::ResultSent, 2, 8),
      ev(ProtoKind::ResultAccept, 13, 8, 2),
      ev(ProtoKind::Checkpoint, 13, 1),
  };
  EXPECT_FALSE(check_protocol_log(log).has_value());
}

TEST(McProtocol, RestoredJobsMustNotBeRegranted) {
  const std::vector<ProtoEvent> log{
      ev(ProtoKind::CheckpointRecv, 13, 1),
      ev(ProtoKind::Takeover, 13, 1),
      ev(ProtoKind::Restore, 13, 7),
      ev(ProtoKind::Grant, 13, 7, 2),
  };
  const auto v = check_protocol_log(log);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "no_reexec");
  EXPECT_EQ(v->event_index, 3u);
}

}  // namespace
}  // namespace rck::mc
