#include "rck/rckalign/error.hpp"
#include "rck/rckalign/app.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "rck/bio/dataset.hpp"

namespace rck::rckalign {
namespace {

class RckAlignTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new std::vector<bio::Protein>(bio::build_dataset(bio::tiny_spec()));
    cache_ = new PairCache(PairCache::build(*dataset_));
  }
  static void TearDownTestSuite() {
    delete cache_;
    delete dataset_;
    cache_ = nullptr;
    dataset_ = nullptr;
  }
  static RckAlignOptions options(int slaves) {
    RckAlignOptions o;
    o.slave_count = slaves;
    o.cache = cache_;
    return o;
  }
  static std::vector<bio::Protein>* dataset_;
  static PairCache* cache_;
};

std::vector<bio::Protein>* RckAlignTest::dataset_ = nullptr;
PairCache* RckAlignTest::cache_ = nullptr;

TEST_F(RckAlignTest, AllPairsEnumeration) {
  const auto pairs = all_pairs(4);
  ASSERT_EQ(pairs.size(), 6u);
  EXPECT_EQ(pairs[0], (std::pair<std::uint32_t, std::uint32_t>{0, 1}));
  EXPECT_EQ(pairs.back(), (std::pair<std::uint32_t, std::uint32_t>{2, 3}));
  EXPECT_TRUE(all_pairs(1).empty());
}

TEST_F(RckAlignTest, CompletesAllPairs) {
  const RckAlignRun run = run_rckalign(*dataset_, options(4));
  EXPECT_EQ(run.results.size(), 28u);
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (const PairRow& r : run.results) {
    EXPECT_LT(r.i, r.j);
    seen.insert({r.i, r.j});
  }
  EXPECT_EQ(seen.size(), 28u);
}

TEST_F(RckAlignTest, ResultsMatchCache) {
  const RckAlignRun run = run_rckalign(*dataset_, options(3));
  for (const PairRow& r : run.results) {
    const PairEntry& e = cache_->at(r.i, r.j);
    EXPECT_DOUBLE_EQ(r.tm_norm_a, e.tm_norm_a);
    EXPECT_DOUBLE_EQ(r.tm_norm_b, e.tm_norm_b);
    EXPECT_DOUBLE_EQ(r.rmsd, e.rmsd);
    EXPECT_EQ(r.aligned_length, e.aligned_length);
  }
}

TEST_F(RckAlignTest, NoCacheProducesSameScores) {
  // Slaves executing TM-align for real must produce identical results and
  // identical simulated time as the cached replay.
  RckAlignOptions cached = options(2);
  RckAlignOptions live = options(2);
  live.cache = nullptr;
  const RckAlignRun a = run_rckalign(*dataset_, cached);
  const RckAlignRun b = run_rckalign(*dataset_, live);
  EXPECT_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.results.size(), b.results.size());
  auto key = [](const PairRow& r) { return std::pair{r.i, r.j}; };
  auto sa = a.results, sb = b.results;
  std::sort(sa.begin(), sa.end(), [&](auto& x, auto& y) { return key(x) < key(y); });
  std::sort(sb.begin(), sb.end(), [&](auto& x, auto& y) { return key(x) < key(y); });
  for (std::size_t k = 0; k < sa.size(); ++k) {
    EXPECT_DOUBLE_EQ(sa[k].tm_norm_a, sb[k].tm_norm_a);
    EXPECT_DOUBLE_EQ(sa[k].rmsd, sb[k].rmsd);
  }
}

TEST_F(RckAlignTest, MoreSlavesFaster) {
  const noc::SimTime t1 = run_rckalign(*dataset_, options(1)).makespan;
  const noc::SimTime t3 = run_rckalign(*dataset_, options(3)).makespan;
  const noc::SimTime t7 = run_rckalign(*dataset_, options(7)).makespan;
  EXPECT_GT(t1, t3);
  EXPECT_GT(t3, t7);
  // Near-linear: 3 slaves at least 2x faster than 1.
  EXPECT_GT(static_cast<double>(t1) / static_cast<double>(t3), 2.0);
}

TEST_F(RckAlignTest, OneSlaveCloseToSerial) {
  // The paper observes rckAlign with 1 slave ~ serial time (2027 vs 2029 s).
  const noc::SimTime parallel1 = run_rckalign(*dataset_, options(1)).makespan;
  const noc::SimTime serial = run_serial(*dataset_, *cache_,
                                         scc::CoreTimingModel::p54c_800(),
                                         scc::default_scc());
  const double ratio = static_cast<double>(parallel1) / static_cast<double>(serial);
  EXPECT_GT(ratio, 0.98);
  EXPECT_LT(ratio, 1.05);  // only messaging overhead on top
}

TEST_F(RckAlignTest, Deterministic) {
  const RckAlignRun a = run_rckalign(*dataset_, options(5));
  const RckAlignRun b = run_rckalign(*dataset_, options(5));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events, b.events);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t k = 0; k < a.results.size(); ++k) {
    EXPECT_EQ(a.results[k].i, b.results[k].i);
    EXPECT_EQ(a.results[k].worker, b.results[k].worker);
  }
}

TEST_F(RckAlignTest, LptNotSlowerOnHeterogeneousJobs) {
  RckAlignOptions fifo = options(4);
  RckAlignOptions lpt = options(4);
  lpt.lpt = true;
  const noc::SimTime t_fifo = run_rckalign(*dataset_, fifo).makespan;
  const noc::SimTime t_lpt = run_rckalign(*dataset_, lpt).makespan;
  // LPT is never *much* worse; typically equal or better.
  EXPECT_LT(static_cast<double>(t_lpt), 1.10 * static_cast<double>(t_fifo));
}

TEST_F(RckAlignTest, CoreReportsConsistent) {
  const RckAlignRun run = run_rckalign(*dataset_, options(4));
  ASSERT_EQ(run.core_reports.size(), 5u);  // master + 4 slaves
  // Master sends one job message per pair plus terminates.
  EXPECT_GE(run.core_reports[0].messages_sent, 28u + 4u);
  // Slave busy time is dominated by compute; all slaves worked.
  for (std::size_t s = 1; s <= 4; ++s)
    EXPECT_GT(run.core_reports[s].compute_cycles, 0u);
  // Makespan equals master finish (master returns last, after collecting).
  EXPECT_EQ(run.makespan, std::max_element(run.core_reports.begin(),
                                           run.core_reports.end(),
                                           [](auto& a, auto& b) {
                                             return a.finish < b.finish;
                                           })
                              ->finish);
}

TEST_F(RckAlignTest, WorkSpreadAcrossSlaves) {
  const RckAlignRun run = run_rckalign(*dataset_, options(4));
  std::set<int> workers;
  for (const PairRow& r : run.results) workers.insert(r.worker);
  EXPECT_EQ(workers.size(), 4u);
}

TEST_F(RckAlignTest, OptionValidation) {
  EXPECT_THROW(run_rckalign(*dataset_, options(0)), rck::rckalign::AlignError);
  EXPECT_THROW(run_rckalign(*dataset_, options(48)), rck::rckalign::AlignError);
  const std::vector<bio::Protein> one(dataset_->begin(), dataset_->begin() + 1);
  EXPECT_THROW(run_rckalign(one, options(2)), rck::rckalign::AlignError);

  // Cache for a different dataset must be rejected.
  const auto other = bio::build_dataset(bio::ck34_spec());
  RckAlignOptions o = options(2);
  EXPECT_THROW(run_rckalign(other, o), rck::rckalign::AlignError);
}

TEST_F(RckAlignTest, NetworkCarriedTheStructures) {
  const RckAlignRun run = run_rckalign(*dataset_, options(4));
  // Every job ships two serialized proteins; total bytes must exceed the
  // summed payload sizes.
  std::uint64_t min_bytes = 0;
  for (const auto& [i, j] : all_pairs(dataset_->size()))
    min_bytes += (*dataset_)[i].wire_size() + (*dataset_)[j].wire_size();
  EXPECT_GT(run.network.total_bytes, min_bytes);
  EXPECT_GT(run.network.messages, 2u * 28u);  // jobs + results + handshakes
}

}  // namespace
}  // namespace rck::rckalign
