#include "rck/rckalign/error.hpp"
#include "rck/rckalign/blocked.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "rck/bio/dataset.hpp"

namespace rck::rckalign {
namespace {

class BlockedTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new std::vector<bio::Protein>(bio::build_dataset(bio::tiny_spec()));
    cache_ = new PairCache(PairCache::build(*dataset_));
  }
  static void TearDownTestSuite() {
    delete cache_;
    delete dataset_;
    cache_ = nullptr;
    dataset_ = nullptr;
  }
  static std::uint64_t dataset_bytes() {
    std::uint64_t b = 0;
    for (const bio::Protein& p : *dataset_) b += p.wire_size();
    return b;
  }
  static BlockedOptions options(int slaves, std::uint64_t budget) {
    BlockedOptions o;
    o.slave_count = slaves;
    o.cache = cache_;
    o.master_memory_bytes = budget;
    return o;
  }
  static std::vector<bio::Protein>* dataset_;
  static PairCache* cache_;
};

std::vector<bio::Protein>* BlockedTest::dataset_ = nullptr;
PairCache* BlockedTest::cache_ = nullptr;

TEST_F(BlockedTest, PlanDegeneratesWithoutBudget) {
  const auto blocks = plan_blocks(*dataset_, 0);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].first, 0u);
  EXPECT_EQ(blocks[0].second, dataset_->size());
}

TEST_F(BlockedTest, PlanCoversAllChainsDisjointly) {
  const auto blocks = plan_blocks(*dataset_, dataset_bytes() / 2);
  EXPECT_GE(blocks.size(), 2u);
  std::uint32_t next = 0;
  for (const auto& [begin, end] : blocks) {
    EXPECT_EQ(begin, next);
    EXPECT_GT(end, begin);
    next = end;
  }
  EXPECT_EQ(next, dataset_->size());
}

TEST_F(BlockedTest, PlanRespectsHalfBudgetPerBlock) {
  const std::uint64_t budget = dataset_bytes() / 2;
  for (const auto& [begin, end] : plan_blocks(*dataset_, budget)) {
    std::uint64_t block = 0;
    for (std::uint32_t i = begin; i < end; ++i) block += (*dataset_)[i].wire_size();
    EXPECT_LE(block, budget / 2);
  }
}

TEST_F(BlockedTest, TinyBudgetThrows) {
  EXPECT_THROW(plan_blocks(*dataset_, 10), rck::rckalign::AlignError);
}

TEST_F(BlockedTest, AllPairsExactlyOnce) {
  const BlockedRun run = run_rckalign_blocked(*dataset_, options(3, dataset_bytes() / 2));
  EXPECT_EQ(run.results.size(), 28u);
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (const PairRow& r : run.results) {
    EXPECT_LT(r.i, r.j);
    seen.insert({r.i, r.j});
  }
  EXPECT_EQ(seen.size(), 28u);
  EXPECT_GE(run.blocks, 2);
}

TEST_F(BlockedTest, ScoresMatchUnblockedRun) {
  const BlockedRun blocked =
      run_rckalign_blocked(*dataset_, options(4, dataset_bytes() / 3));
  RckAlignOptions plain_opts;
  plain_opts.slave_count = 4;
  plain_opts.cache = cache_;
  const RckAlignRun plain = run_rckalign(*dataset_, plain_opts);

  auto index = [](const std::vector<PairRow>& rows) {
    std::map<std::pair<std::uint32_t, std::uint32_t>, double> m;
    for (const PairRow& r : rows) m[{r.i, r.j}] = r.tm_norm_a;
    return m;
  };
  EXPECT_EQ(index(blocked.results), index(plain.results));
}

TEST_F(BlockedTest, UnlimitedBudgetLoadsDataOnce) {
  const BlockedRun run = run_rckalign_blocked(*dataset_, options(3, 0));
  EXPECT_EQ(run.blocks, 1);
  EXPECT_EQ(run.block_loads, 1u);
  EXPECT_EQ(run.bytes_loaded, dataset_bytes());
}

TEST_F(BlockedTest, TightBudgetReloadsBlocks) {
  const BlockedRun run = run_rckalign_blocked(*dataset_, options(3, dataset_bytes() / 3));
  EXPECT_GT(run.blocks, 2);
  EXPECT_GT(run.block_loads, static_cast<std::uint64_t>(run.blocks));
  EXPECT_GT(run.bytes_loaded, dataset_bytes());
}

TEST_F(BlockedTest, BlockingCostsTimeNotCorrectness) {
  const noc::SimTime plain = run_rckalign_blocked(*dataset_, options(4, 0)).makespan;
  const noc::SimTime tight =
      run_rckalign_blocked(*dataset_, options(4, dataset_bytes() / 3)).makespan;
  // Block-pair rounds add synchronization barriers; tight budget is slower.
  EXPECT_GE(tight, plain);
}

TEST_F(BlockedTest, Deterministic) {
  const BlockedRun a = run_rckalign_blocked(*dataset_, options(3, dataset_bytes() / 2));
  const BlockedRun b = run_rckalign_blocked(*dataset_, options(3, dataset_bytes() / 2));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.block_loads, b.block_loads);
}

}  // namespace
}  // namespace rck::rckalign
