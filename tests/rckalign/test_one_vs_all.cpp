#include "rck/rckalign/error.hpp"
#include "rck/rckalign/one_vs_all.hpp"

#include <gtest/gtest.h>

#include <set>

#include "rck/bio/dataset.hpp"
#include "rck/core/tmalign.hpp"

namespace rck::rckalign {
namespace {

class OneVsAllTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    database_ = new std::vector<bio::Protein>(bio::build_dataset(bio::tiny_spec()));
    bio::Rng rng(0xD1CE);
    // The query is an unseen variant of family b's founder (index 3).
    query_ = new bio::Protein(bio::perturb((*database_)[3], "query", rng));
  }
  static void TearDownTestSuite() {
    delete query_;
    delete database_;
    query_ = nullptr;
    database_ = nullptr;
  }
  static OneVsAllOptions options(int slaves) {
    OneVsAllOptions o;
    o.slave_count = slaves;
    return o;
  }
  static std::vector<bio::Protein>* database_;
  static bio::Protein* query_;
};

std::vector<bio::Protein>* OneVsAllTest::database_ = nullptr;
bio::Protein* OneVsAllTest::query_ = nullptr;

TEST_F(OneVsAllTest, EveryEntryScoredOnce) {
  const OneVsAllRun run = run_one_vs_all(*query_, *database_, options(3));
  ASSERT_EQ(run.ranked.size(), 1u);
  EXPECT_EQ(run.ranked[0].size(), database_->size());
  std::set<std::uint32_t> entries;
  for (const Hit& h : run.ranked[0]) entries.insert(h.entry);
  EXPECT_EQ(entries.size(), database_->size());
}

TEST_F(OneVsAllTest, RankingIsDescendingTm) {
  const OneVsAllRun run = run_one_vs_all(*query_, *database_, options(4));
  const auto& hits = run.ranked[0];
  for (std::size_t k = 1; k < hits.size(); ++k)
    EXPECT_GE(hits[k - 1].tm_query, hits[k].tm_query);
}

TEST_F(OneVsAllTest, FamilyMembersRankedFirst) {
  // tiny family b = indices 3,4,5; the query derives from index 3.
  const OneVsAllRun run = run_one_vs_all(*query_, *database_, options(4));
  const auto& hits = run.ranked[0];
  std::set<std::uint32_t> top3{hits[0].entry, hits[1].entry, hits[2].entry};
  EXPECT_TRUE(top3.count(3));
  EXPECT_TRUE(top3.count(4));
  EXPECT_TRUE(top3.count(5));
  EXPECT_GT(hits[0].tm_query, 0.5);   // same fold on top
  EXPECT_LT(hits.back().tm_query, 0.5);  // unrelated folds at the bottom
}

TEST_F(OneVsAllTest, ScoresMatchDirectAlignment) {
  const OneVsAllRun run = run_one_vs_all(*query_, *database_, options(2));
  for (const Hit& h : run.ranked[0]) {
    const core::TmAlignResult direct = core::tmalign(*query_, (*database_)[h.entry]);
    EXPECT_DOUBLE_EQ(h.tm_query, direct.tm_norm_a) << h.entry;
    EXPECT_DOUBLE_EQ(h.rmsd, direct.rmsd) << h.entry;
  }
}

TEST_F(OneVsAllTest, MultiMethodAlgorithm1) {
  OneVsAllOptions opts = options(4);
  opts.methods = {Method::TmAlign, Method::GaplessRmsd};
  const OneVsAllRun run = run_one_vs_all(*query_, *database_, opts);
  ASSERT_EQ(run.ranked.size(), 2u);
  EXPECT_EQ(run.ranked[0].size(), database_->size());
  EXPECT_EQ(run.ranked[1].size(), database_->size());
  // The RMSD method's ranking is ascending rmsd.
  const auto& hits = run.ranked[1];
  for (std::size_t k = 1; k < hits.size(); ++k)
    EXPECT_LE(hits[k - 1].rmsd, hits[k].rmsd);
  // Both criteria should put a family-b member first.
  EXPECT_GE(run.ranked[1][0].entry, 3u);
  EXPECT_LE(run.ranked[1][0].entry, 5u);
}

TEST_F(OneVsAllTest, MoreSlavesFaster) {
  const noc::SimTime t1 = run_one_vs_all(*query_, *database_, options(1)).makespan;
  const noc::SimTime t4 = run_one_vs_all(*query_, *database_, options(4)).makespan;
  EXPECT_GT(static_cast<double>(t1) / static_cast<double>(t4), 2.0);
}

TEST_F(OneVsAllTest, Deterministic) {
  const OneVsAllRun a = run_one_vs_all(*query_, *database_, options(3));
  const OneVsAllRun b = run_one_vs_all(*query_, *database_, options(3));
  EXPECT_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.ranked[0].size(), b.ranked[0].size());
  for (std::size_t k = 0; k < a.ranked[0].size(); ++k)
    EXPECT_EQ(a.ranked[0][k].entry, b.ranked[0][k].entry);
}

TEST_F(OneVsAllTest, Validation) {
  EXPECT_THROW(run_one_vs_all(*query_, {}, options(2)), rck::rckalign::AlignError);
  OneVsAllOptions no_methods = options(2);
  no_methods.methods.clear();
  EXPECT_THROW(run_one_vs_all(*query_, *database_, no_methods), rck::rckalign::AlignError);
  EXPECT_THROW(run_one_vs_all(*query_, *database_, options(0)), rck::rckalign::AlignError);
  EXPECT_THROW(run_one_vs_all(*query_, *database_, options(99)), rck::rckalign::AlignError);
}

}  // namespace
}  // namespace rck::rckalign
