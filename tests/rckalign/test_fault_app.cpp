// rckAlign under injected faults: the fault-tolerant farm threaded through
// the all-vs-all application completes correctly despite slave crashes.
#include "rck/rckalign/app.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "rck/bio/dataset.hpp"

namespace rck::rckalign {
namespace {

class FaultAppTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new std::vector<bio::Protein>(bio::build_dataset(bio::tiny_spec()));
    cache_ = new PairCache(PairCache::build(*dataset_));
  }
  static void TearDownTestSuite() {
    delete cache_;
    delete dataset_;
    cache_ = nullptr;
    dataset_ = nullptr;
  }
  static RckAlignOptions ft_options(int slaves) {
    RckAlignOptions o;
    o.slave_count = slaves;
    o.cache = cache_;
    o.fault_tolerant = true;
    return o;
  }
  static void expect_complete_and_correct(const RckAlignRun& run) {
    ASSERT_EQ(run.results.size(), 28u);  // C(8,2) pairs of the tiny dataset
    std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
    for (const PairRow& r : run.results) {
      EXPECT_LT(r.i, r.j);
      seen.insert({r.i, r.j});
      const PairEntry& e = cache_->at(r.i, r.j);
      EXPECT_DOUBLE_EQ(r.tm_norm_a, e.tm_norm_a);
      EXPECT_DOUBLE_EQ(r.rmsd, e.rmsd);
    }
    EXPECT_EQ(seen.size(), 28u);
  }
  static std::vector<bio::Protein>* dataset_;
  static PairCache* cache_;
};

std::vector<bio::Protein>* FaultAppTest::dataset_ = nullptr;
PairCache* FaultAppTest::cache_ = nullptr;

TEST_F(FaultAppTest, NoFaultsMatchesPlainFarm) {
  RckAlignOptions plain;
  plain.slave_count = 4;
  plain.cache = cache_;
  const RckAlignRun a = run_rckalign(*dataset_, plain);
  const RckAlignRun b = run_rckalign(*dataset_, ft_options(4));
  expect_complete_and_correct(a);
  expect_complete_and_correct(b);
  EXPECT_EQ(b.farm_report.retries, 0u);
  EXPECT_TRUE(b.farm_report.dead_ues.empty());
  // Lease bookkeeping must not change the schedule: identical makespan
  // within 1% (the CK34 shape test asserts the same at paper scale).
  const double rel = std::abs(noc::to_seconds(b.makespan) - noc::to_seconds(a.makespan)) /
                     noc::to_seconds(a.makespan);
  EXPECT_LE(rel, 0.01);
}

TEST_F(FaultAppTest, CompletesDespiteMidRunCrashes) {
  // Calibrate crash times off the no-fault makespan so they land mid-run
  // regardless of the timing model's absolute scale.
  const noc::SimTime base = run_rckalign(*dataset_, ft_options(4)).makespan;
  RckAlignOptions opts = ft_options(4);
  opts.runtime.faults.crashes.push_back({2, base / 4});
  opts.runtime.faults.crashes.push_back({4, base / 2});
  const RckAlignRun run = run_rckalign(*dataset_, opts);
  expect_complete_and_correct(run);
  EXPECT_EQ(run.farm_report.dead_ues.size(), 2u);
  EXPECT_GE(run.makespan, base);  // losing slaves can only slow things down
}

TEST_F(FaultAppTest, DeterministicReplayWithFaults) {
  const noc::SimTime base = run_rckalign(*dataset_, ft_options(3)).makespan;
  RckAlignOptions opts = ft_options(3);
  opts.runtime.faults.crashes.push_back({1, base / 3});
  opts.runtime.faults.messages.push_back(
      {scc::FaultPlan::MessageFault::Kind::Corrupt, 2, 0, 3});
  const RckAlignRun a = run_rckalign(*dataset_, opts);
  const RckAlignRun b = run_rckalign(*dataset_, opts);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_TRUE(a.farm_report == b.farm_report);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t k = 0; k < a.results.size(); ++k) {
    EXPECT_EQ(a.results[k].i, b.results[k].i);
    EXPECT_EQ(a.results[k].j, b.results[k].j);
    EXPECT_EQ(a.results[k].worker, b.results[k].worker);
  }
}

}  // namespace
}  // namespace rck::rckalign
