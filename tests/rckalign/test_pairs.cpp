// rckalign::run_pairs — the generic pair-set execution layer under every
// query shape: row/spec mapping, wire-table bit-identity, validation,
// determinism.
#include "rck/rckalign/pairs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "rck/bio/serialize.hpp"
#include "rck/bio/synthetic.hpp"
#include "rck/core/tmalign.hpp"
#include "rck/rckalign/error.hpp"

namespace rck::rckalign {
namespace {

class PairsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bio::Rng rng(0xFA57);
    structures_ = new std::vector<bio::Protein>();
    for (int i = 0; i < 4; ++i)
      structures_->push_back(
          bio::make_protein("s" + std::to_string(i), 28 + 4 * i, rng));
  }
  static void TearDownTestSuite() {
    delete structures_;
    structures_ = nullptr;
  }
  static std::vector<const bio::Protein*> table() {
    std::vector<const bio::Protein*> t;
    for (const bio::Protein& p : *structures_) t.push_back(&p);
    return t;
  }
  static PairsOptions options(int slaves) {
    PairsOptions o;
    o.slave_count = slaves;
    return o;
  }
  static std::vector<bio::Protein>* structures_;
};

std::vector<bio::Protein>* PairsTest::structures_ = nullptr;

TEST_F(PairsTest, RowsMatchDirectKernelPerSpec) {
  const std::vector<PairSpec> specs{
      {0, 1, Method::TmAlign}, {2, 3, Method::TmAlign}, {3, 0, Method::TmAlign}};
  const auto t = table();
  const PairsRun run = run_pairs(t, specs, options(3));
  ASSERT_EQ(run.rows.size(), specs.size());
  for (const PairsRow& row : run.rows) {
    const PairSpec& s = specs[row.spec];
    EXPECT_EQ(row.a, s.a);
    EXPECT_EQ(row.b, s.b);
    EXPECT_EQ(row.method, s.method);
    // Chain `a` is the query side: tm_norm_a must be normalized by a.
    const core::TmAlignResult direct =
        core::tmalign((*structures_)[s.a], (*structures_)[s.b]);
    EXPECT_DOUBLE_EQ(row.tm_norm_a, direct.tm_norm_a) << row.spec;
    EXPECT_DOUBLE_EQ(row.tm_norm_b, direct.tm_norm_b) << row.spec;
    EXPECT_DOUBLE_EQ(row.rmsd, direct.rmsd) << row.spec;
    EXPECT_EQ(row.aligned_length,
              static_cast<std::uint32_t>(direct.aligned_length));
  }
}

TEST_F(PairsTest, WireTableIsBitIdenticalToSerializingOnTheSpot) {
  std::vector<bio::Bytes> wires;
  for (const bio::Protein& p : *structures_) wires.push_back(bio::serialize(p));
  std::vector<const bio::Bytes*> wire_ptrs;
  for (const bio::Bytes& w : wires) wire_ptrs.push_back(&w);

  const std::vector<PairSpec> specs{
      {0, 1, Method::TmAlign}, {1, 2, Method::GaplessRmsd}, {0, 3, Method::TmAlign}};
  const auto t = table();
  const PairsRun plain = run_pairs(t, specs, options(3));
  const PairsRun cached = run_pairs(t, specs, options(3), wire_ptrs);
  EXPECT_EQ(plain.makespan, cached.makespan);
  EXPECT_EQ(plain.rows, cached.rows);
  EXPECT_EQ(plain.network, cached.network);
}

TEST_F(PairsTest, DuplicateSpecsMapBackThroughSpecIndex) {
  const std::vector<PairSpec> specs{
      {0, 1, Method::TmAlign}, {0, 1, Method::TmAlign}, {0, 1, Method::TmAlign}};
  const auto t = table();
  const PairsRun run = run_pairs(t, specs, options(2));
  ASSERT_EQ(run.rows.size(), 3u);
  std::set<std::uint64_t> seen;
  for (const PairsRow& row : run.rows) {
    seen.insert(row.spec);
    EXPECT_EQ(row.a, 0u);
    EXPECT_EQ(row.b, 1u);
  }
  EXPECT_EQ(seen.size(), 3u);  // each duplicate keeps its own identity
  EXPECT_EQ(run.rows[0].tm_norm_a, run.rows[1].tm_norm_a);
}

TEST_F(PairsTest, ValidatesInputsWithAlignError) {
  const auto t = table();
  const PairsOptions opts = options(2);

  const std::vector<PairSpec> out_of_range{{0, 9, Method::TmAlign}};
  EXPECT_THROW(run_pairs(t, out_of_range, opts), AlignError);

  auto holed = t;
  holed[1] = nullptr;
  const std::vector<PairSpec> uses_hole{{0, 1, Method::TmAlign}};
  EXPECT_THROW(run_pairs(holed, uses_hole, opts), AlignError);

  const std::vector<PairSpec> ok{{0, 1, Method::TmAlign}};
  const std::vector<const bio::Bytes*> short_wires(2, nullptr);
  EXPECT_THROW(run_pairs(t, ok, opts, short_wires), AlignError);

  PairsOptions bad_batch = opts;
  bad_batch.batch = 0;
  EXPECT_THROW(run_pairs(t, ok, bad_batch), AlignError);

  PairsOptions batched_ft = opts;
  batched_ft.batch = 2;
  batched_ft.fault_tolerant = true;
  EXPECT_THROW(run_pairs(t, ok, batched_ft), AlignError);
}

TEST_F(PairsTest, RunsAreDeterministic) {
  const std::vector<PairSpec> specs{
      {0, 2, Method::TmAlign}, {1, 3, Method::TmAlign}, {2, 1, Method::GaplessRmsd}};
  const auto t = table();
  const PairsRun a = run_pairs(t, specs, options(3));
  const PairsRun b = run_pairs(t, specs, options(3));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.core_reports, b.core_reports);
}

TEST_F(PairsTest, BatchedGrantsAreBitIdenticalToSolo) {
  std::vector<PairSpec> specs;
  for (std::uint32_t i = 0; i < 4; ++i)
    for (std::uint32_t j = 0; j < 4; ++j)
      if (i != j) specs.push_back({i, j, Method::TmAlign});
  const auto t = table();
  const PairsRun solo = run_pairs(t, specs, options(3));
  PairsOptions batched = options(3);
  batched.batch = 4;
  const PairsRun packed = run_pairs(t, specs, batched);
  ASSERT_EQ(solo.rows.size(), packed.rows.size());
  // Collection order differs under batching; compare by spec index.
  auto by_spec = [](const PairsRun& r) {
    std::vector<PairsRow> rows = r.rows;
    std::sort(rows.begin(), rows.end(),
              [](const PairsRow& x, const PairsRow& y) { return x.spec < y.spec; });
    for (PairsRow& row : rows) row.worker = -1;  // scheduling may differ
    return rows;
  };
  EXPECT_EQ(by_spec(solo), by_spec(packed));
}

}  // namespace
}  // namespace rck::rckalign
