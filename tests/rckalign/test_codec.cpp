#include "rck/rckalign/codec.hpp"

#include <gtest/gtest.h>

#include "rck/bio/synthetic.hpp"

namespace rck::rckalign {
namespace {

TEST(PairJobCodec, RoundTrip) {
  bio::Rng rng(1);
  const bio::Protein a = bio::make_protein("a", 40, rng);
  const bio::Protein b = bio::make_protein("b", 55, rng);
  const bio::Bytes raw = encode_pair_job(3, 17, Method::TmAlign, a, b);
  const PairJobData d = decode_pair_job(raw);
  EXPECT_EQ(d.i, 3u);
  EXPECT_EQ(d.j, 17u);
  EXPECT_EQ(d.method, Method::TmAlign);
  EXPECT_EQ(d.a, a);
  EXPECT_EQ(d.b, b);
}

TEST(PairJobCodec, MethodTagPreserved) {
  bio::Rng rng(2);
  const bio::Protein a = bio::make_protein("a", 20, rng);
  const bio::Bytes raw = encode_pair_job(0, 1, Method::GaplessRmsd, a, a);
  EXPECT_EQ(decode_pair_job(raw).method, Method::GaplessRmsd);
}

TEST(PairJobCodec, TrailingBytesRejected) {
  bio::Rng rng(3);
  const bio::Protein a = bio::make_protein("a", 20, rng);
  bio::Bytes raw = encode_pair_job(0, 1, Method::TmAlign, a, a);
  raw.push_back(std::byte{0});
  EXPECT_THROW(decode_pair_job(raw), bio::WireError);
}

TEST(PairJobCodec, TruncationRejected) {
  bio::Rng rng(4);
  const bio::Protein a = bio::make_protein("a", 20, rng);
  bio::Bytes raw = encode_pair_job(0, 1, Method::TmAlign, a, a);
  raw.resize(raw.size() / 2);
  EXPECT_THROW(decode_pair_job(raw), bio::WireError);
}

TEST(OutcomeCodec, RoundTrip) {
  PairOutcome o;
  o.i = 7;
  o.j = 22;
  o.method = Method::TmAlign;
  o.tm_norm_a = 0.8123;
  o.tm_norm_b = 0.7567;
  o.rmsd = 2.31;
  o.seq_identity = 0.42;
  o.aligned_length = 133;
  o.work_cycles = 987654321012ull;
  const PairOutcome d = decode_outcome(encode_outcome(o));
  EXPECT_EQ(d.i, o.i);
  EXPECT_EQ(d.j, o.j);
  EXPECT_EQ(d.method, o.method);
  EXPECT_DOUBLE_EQ(d.tm_norm_a, o.tm_norm_a);
  EXPECT_DOUBLE_EQ(d.tm_norm_b, o.tm_norm_b);
  EXPECT_DOUBLE_EQ(d.rmsd, o.rmsd);
  EXPECT_DOUBLE_EQ(d.seq_identity, o.seq_identity);
  EXPECT_EQ(d.aligned_length, o.aligned_length);
  EXPECT_EQ(d.work_cycles, o.work_cycles);
}

TEST(OutcomeCodec, DefaultConstructedRoundTrip) {
  const PairOutcome d = decode_outcome(encode_outcome(PairOutcome{}));
  EXPECT_EQ(d.i, 0u);
  EXPECT_DOUBLE_EQ(d.tm_norm_a, 0.0);
}

TEST(PairJobCodec, PayloadSizeTracksChainLengths) {
  bio::Rng rng(5);
  const bio::Protein small = bio::make_protein("s", 30, rng);
  const bio::Protein big = bio::make_protein("b", 300, rng);
  EXPECT_GT(encode_pair_job(0, 1, Method::TmAlign, big, big).size(),
            encode_pair_job(0, 1, Method::TmAlign, small, small).size());
}

}  // namespace
}  // namespace rck::rckalign
