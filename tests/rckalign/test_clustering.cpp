#include "rck/rckalign/error.hpp"
#include "rck/rckalign/clustering.hpp"

#include <gtest/gtest.h>

#include "rck/bio/dataset.hpp"

namespace rck::rckalign {
namespace {

class ClusteringTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new std::vector<bio::Protein>(bio::build_dataset(bio::tiny_spec()));
    cache_ = new PairCache(PairCache::build(*dataset_));
  }
  static void TearDownTestSuite() {
    delete cache_;
    delete dataset_;
    cache_ = nullptr;
    dataset_ = nullptr;
  }
  static std::vector<bio::Protein>* dataset_;
  static PairCache* cache_;
};

std::vector<bio::Protein>* ClusteringTest::dataset_ = nullptr;
PairCache* ClusteringTest::cache_ = nullptr;

TEST_F(ClusteringTest, RecoversTinyFamilies) {
  // tiny: families a (0-2), b (3-5), c (6-7).
  const ClusterResult r = cluster_by_tm(*cache_, 0.5);
  EXPECT_EQ(r.cluster_count, 3);
  EXPECT_EQ(r.assignment[0], r.assignment[1]);
  EXPECT_EQ(r.assignment[1], r.assignment[2]);
  EXPECT_EQ(r.assignment[3], r.assignment[4]);
  EXPECT_EQ(r.assignment[4], r.assignment[5]);
  EXPECT_EQ(r.assignment[6], r.assignment[7]);
  EXPECT_NE(r.assignment[0], r.assignment[3]);
  EXPECT_NE(r.assignment[0], r.assignment[6]);
  EXPECT_NE(r.assignment[3], r.assignment[6]);
}

TEST_F(ClusteringTest, ClusterIdsOrderedBySmallestMember) {
  const ClusterResult r = cluster_by_tm(*cache_, 0.5);
  EXPECT_EQ(r.assignment[0], 0);  // chain 0's cluster gets id 0
  EXPECT_EQ(r.assignment[3], 1);
  EXPECT_EQ(r.assignment[6], 2);
}

TEST_F(ClusteringTest, ThresholdExtremes) {
  // TM > 0.999: nothing merges (all chains distinct) except identical ones.
  const ClusterResult strict = cluster_by_tm(*cache_, 0.999);
  EXPECT_EQ(strict.cluster_count, 8);
  // TM > tiny epsilon: everything merges into one cluster.
  const ClusterResult loose = cluster_by_tm(*cache_, 0.01);
  EXPECT_EQ(loose.cluster_count, 1);
}

TEST_F(ClusteringTest, MergesAreMonotoneInHeight) {
  const ClusterResult r = cluster_by_tm(*cache_, 0.01);
  for (std::size_t k = 1; k < r.merges.size(); ++k)
    EXPECT_GE(r.merges[k].height, r.merges[k - 1].height - 1e-12);
  EXPECT_EQ(r.merges.size(), 7u);  // n-1 merges to a single cluster
}

TEST_F(ClusteringTest, ClustersViewConsistent) {
  const ClusterResult r = cluster_by_tm(*cache_, 0.5);
  const auto groups = r.clusters();
  ASSERT_EQ(groups.size(), static_cast<std::size_t>(r.cluster_count));
  std::size_t total = 0;
  for (const auto& g : groups) {
    total += g.size();
    for (int m : g)
      EXPECT_EQ(r.assignment[static_cast<std::size_t>(m)],
                &g - groups.data());
  }
  EXPECT_EQ(total, dataset_->size());
}

TEST_F(ClusteringTest, RowsPathMatchesCachePath) {
  // Build rows from the cache and cluster both ways.
  std::vector<PairRow> rows;
  for (std::uint32_t j = 1; j < 8; ++j)
    for (std::uint32_t i = 0; i < j; ++i) {
      const PairEntry& e = cache_->at(i, j);
      rows.push_back(PairRow{i, j, e.tm_norm_a, e.tm_norm_b, e.rmsd,
                             e.seq_identity, e.aligned_length, 1});
    }
  const ClusterResult a = cluster_by_tm(*cache_, 0.5);
  const ClusterResult b = cluster_rows(8, rows, 0.5);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST_F(ClusteringTest, MissingPairsDefaultToDistant) {
  // Only within-family pairs supplied: families still form, nothing merges
  // across (missing pairs are distance 1).
  std::vector<PairRow> rows;
  auto add = [&](std::uint32_t i, std::uint32_t j) {
    const PairEntry& e = cache_->at(i, j);
    rows.push_back(
        PairRow{i, j, e.tm_norm_a, e.tm_norm_b, e.rmsd, e.seq_identity,
                e.aligned_length, 1});
  };
  add(0, 1); add(0, 2); add(1, 2);
  add(3, 4); add(3, 5); add(4, 5);
  add(6, 7);
  const ClusterResult r = cluster_rows(8, rows, 0.5);
  EXPECT_EQ(r.cluster_count, 3);
}

TEST_F(ClusteringTest, BadRowIndexThrows) {
  std::vector<PairRow> rows{PairRow{0, 99, 0.9, 0.9, 1.0, 0.5, 50, 1}};
  EXPECT_THROW(cluster_rows(8, rows, 0.5), rck::rckalign::AlignError);
}

TEST(Clustering, EmptyAndSingleton) {
  const ClusterResult empty = cluster_rows(0, {}, 0.5);
  EXPECT_EQ(empty.cluster_count, 0);
  const ClusterResult one = cluster_rows(1, {}, 0.5);
  EXPECT_EQ(one.cluster_count, 1);
  EXPECT_EQ(one.assignment, std::vector<int>{0});
}

}  // namespace
}  // namespace rck::rckalign
