#include <gtest/gtest.h>

#include "rck/rckalign/error.hpp"
#include "rck/bio/dataset.hpp"
#include "rck/rckalign/extensions.hpp"

namespace rck::rckalign {
namespace {

class MultiMethodTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new std::vector<bio::Protein>(bio::build_dataset(bio::tiny_spec()));
    cache_ = new PairCache(PairCache::build(*dataset_));
  }
  static void TearDownTestSuite() {
    delete cache_;
    delete dataset_;
    cache_ = nullptr;
    dataset_ = nullptr;
  }
  static std::vector<bio::Protein>* dataset_;
  static PairCache* cache_;
};

std::vector<bio::Protein>* MultiMethodTest::dataset_ = nullptr;
PairCache* MultiMethodTest::cache_ = nullptr;

TEST_F(MultiMethodTest, ThreeMethodsAtOnce) {
  MultiMethodOptions opts;
  opts.groups = {{Method::TmAlign, 3}, {Method::CeAlign, 2}, {Method::GaplessRmsd, 1}};
  opts.cache = cache_;
  const MultiMethodRun run = run_multi_method(*dataset_, opts);
  ASSERT_EQ(run.results.size(), 3u);
  for (const auto& group : run.results) EXPECT_EQ(group.size(), 28u);
  EXPECT_GT(run.makespan, 0u);
}

TEST_F(MultiMethodTest, GroupsKeepTheirCores) {
  MultiMethodOptions opts;
  opts.groups = {{Method::TmAlign, 2}, {Method::CeAlign, 2}};
  opts.cache = cache_;
  const MultiMethodRun run = run_multi_method(*dataset_, opts);
  for (const PairRow& r : run.results[0]) {
    EXPECT_GE(r.worker, 1);
    EXPECT_LE(r.worker, 2);
  }
  for (const PairRow& r : run.results[1]) {
    EXPECT_GE(r.worker, 3);
    EXPECT_LE(r.worker, 4);
  }
}

TEST_F(MultiMethodTest, MethodsAgreeOnFamilies) {
  // TM-align and CE should both separate family a (0-2) from family b (3-5).
  MultiMethodOptions opts;
  opts.groups = {{Method::TmAlign, 2}, {Method::CeAlign, 2}};
  opts.cache = cache_;
  const MultiMethodRun run = run_multi_method(*dataset_, opts);
  auto score = [](const std::vector<PairRow>& rows, std::uint32_t i, std::uint32_t j) {
    for (const PairRow& r : rows)
      if ((r.i == i && r.j == j) || (r.i == j && r.j == i))
        return std::max(r.tm_norm_a, r.tm_norm_b);
    ADD_FAILURE() << "pair missing";
    return 0.0;
  };
  for (const auto& rows : run.results) {
    EXPECT_GT(score(rows, 0, 1), score(rows, 0, 3));
    EXPECT_GT(score(rows, 3, 4), score(rows, 2, 6));
  }
}

TEST_F(MultiMethodTest, MatchesDedicatedMcPsc) {
  // The 2-group special case must agree with run_mcpsc on the science.
  MultiMethodOptions general;
  general.groups = {{Method::TmAlign, 3}, {Method::GaplessRmsd, 2}};
  general.cache = cache_;
  const MultiMethodRun a = run_multi_method(*dataset_, general);

  McPscOptions dedicated;
  dedicated.tmalign_slaves = 3;
  dedicated.rmsd_slaves = 2;
  dedicated.cache = cache_;
  const McPscRun b = run_mcpsc(*dataset_, dedicated);

  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.results[0].size(), b.tmalign_results.size());
  EXPECT_EQ(a.results[1].size(), b.rmsd_results.size());
}

TEST_F(MultiMethodTest, SequenceFilterMethod) {
  MultiMethodOptions opts;
  opts.groups = {{Method::TmAlign, 2}, {Method::SeqNw, 1}};
  opts.cache = cache_;
  const MultiMethodRun run = run_multi_method(*dataset_, opts);
  ASSERT_EQ(run.results.size(), 2u);
  ASSERT_EQ(run.results[1].size(), 28u);
  // The sequence filter agrees with structure on the tiny families:
  // within-family identity >> cross-family identity (perturb mutates ~8%).
  double fam = 0, cross = 0;
  int nf = 0, nc = 0;
  auto family = [](std::uint32_t idx) { return idx < 3 ? 0 : idx < 6 ? 1 : 2; };
  for (const PairRow& r : run.results[1]) {
    if (family(r.i) == family(r.j)) {
      fam += r.seq_identity;
      ++nf;
    } else {
      cross += r.seq_identity;
      ++nc;
    }
  }
  EXPECT_GT(fam / nf, 0.6);
  EXPECT_LT(cross / nc, 0.35);
}

TEST_F(MultiMethodTest, SequenceFilterIsCheapest) {
  // Per the MC-PSC scheduling premise: SeqNw charges far fewer cycles than
  // TM-align for the same pairs.
  MultiMethodOptions opts;
  opts.groups = {{Method::TmAlign, 1}, {Method::SeqNw, 1}};
  opts.cache = cache_;
  const MultiMethodRun run = run_multi_method(*dataset_, opts);
  const std::uint64_t tm_cycles = run.core_reports[1].compute_cycles;
  const std::uint64_t seq_cycles = run.core_reports[2].compute_cycles;
  EXPECT_LT(seq_cycles, tm_cycles / 5);
}

TEST_F(MultiMethodTest, Validation) {
  MultiMethodOptions opts;
  EXPECT_THROW(run_multi_method(*dataset_, opts), rck::rckalign::AlignError);  // no groups
  opts.groups = {{Method::TmAlign, 0}};
  EXPECT_THROW(run_multi_method(*dataset_, opts), rck::rckalign::AlignError);  // empty group
  opts.groups = {{Method::TmAlign, 30}, {Method::CeAlign, 30}};
  EXPECT_THROW(run_multi_method(*dataset_, opts), rck::rckalign::AlignError);  // too big
}

TEST_F(MultiMethodTest, Deterministic) {
  MultiMethodOptions opts;
  opts.groups = {{Method::TmAlign, 2}, {Method::CeAlign, 1}};
  opts.cache = cache_;
  const MultiMethodRun a = run_multi_method(*dataset_, opts);
  const MultiMethodRun b = run_multi_method(*dataset_, opts);
  EXPECT_EQ(a.makespan, b.makespan);
}

}  // namespace
}  // namespace rck::rckalign
