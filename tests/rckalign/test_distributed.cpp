#include "rck/rckalign/error.hpp"
#include "rck/rckalign/distributed.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "rck/bio/dataset.hpp"
#include "rck/rckalign/app.hpp"

namespace rck::rckalign {
namespace {

class DistributedTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new std::vector<bio::Protein>(bio::build_dataset(bio::tiny_spec()));
    cache_ = new PairCache(PairCache::build(*dataset_));
  }
  static void TearDownTestSuite() {
    delete cache_;
    delete dataset_;
    cache_ = nullptr;
    dataset_ = nullptr;
  }
  static std::vector<bio::Protein>* dataset_;
  static PairCache* cache_;
  static scc::CoreTimingModel p54c() { return scc::CoreTimingModel::p54c_800(); }
};

std::vector<bio::Protein>* DistributedTest::dataset_ = nullptr;
PairCache* DistributedTest::cache_ = nullptr;

TEST_F(DistributedTest, BasicRunCountsJobs) {
  const DistributedRun run = run_distributed(*dataset_, *cache_, 4, p54c());
  EXPECT_EQ(run.jobs, 28u);
  EXPECT_GT(run.makespan, 0u);
  EXPECT_GT(run.disk_busy, 0u);
  EXPECT_GT(run.spawn_total, 0u);
}

TEST_F(DistributedTest, SlowerThanRckAlign) {
  // The paper's Experiment I claim at every core count.
  for (int n : {1, 2, 4, 8}) {
    RckAlignOptions opts;
    opts.slave_count = n;
    opts.cache = cache_;
    const noc::SimTime rck = run_rckalign(*dataset_, opts).makespan;
    const noc::SimTime dist = run_distributed(*dataset_, *cache_, n, p54c()).makespan;
    EXPECT_GT(dist, rck) << n << " slaves";
  }
}

TEST_F(DistributedTest, MoreSlavesFaster) {
  const noc::SimTime t1 = run_distributed(*dataset_, *cache_, 1, p54c()).makespan;
  const noc::SimTime t4 = run_distributed(*dataset_, *cache_, 4, p54c()).makespan;
  EXPECT_GT(t1, t4);
}

TEST_F(DistributedTest, NfsBottleneckCapsScaling) {
  // With enough slaves, makespan is bounded below by the serialized disk
  // time — adding slaves stops helping (the paper's stated cause (a)).
  DistributedParams params;
  const DistributedRun many = run_distributed(*dataset_, *cache_, 24, p54c(), params);
  const DistributedRun more = run_distributed(*dataset_, *cache_, 28, p54c(), params);
  EXPECT_GE(many.makespan + noc::from_seconds(1.0), more.makespan);
  // And the floor is at least the total disk service time.
  EXPECT_GE(more.makespan, more.disk_busy / 2);
}

TEST_F(DistributedTest, SpawnOverheadScalesWithJobs) {
  DistributedParams params;
  const DistributedRun run = run_distributed(*dataset_, *cache_, 2, p54c(), params);
  EXPECT_EQ(run.spawn_total, 28u * noc::from_seconds(params.spawn_overhead_s));
}

TEST_F(DistributedTest, ZeroOverheadApproachesComputeBound) {
  DistributedParams free_io;
  free_io.spawn_overhead_s = 0.0;
  free_io.nfs_request_overhead_s = 0.0;
  free_io.pdb_bytes_per_residue = 0.0;  // zero-size files: exactly no IO time
  free_io.master_dispatch_s = 0.0;
  const DistributedRun run = run_distributed(*dataset_, *cache_, 1, p54c(), free_io);
  const std::uint64_t compute = cache_->total_cycles(p54c());
  EXPECT_EQ(run.makespan, p54c().cycles_to_time(compute));
}

TEST_F(DistributedTest, Deterministic) {
  const DistributedRun a = run_distributed(*dataset_, *cache_, 5, p54c());
  const DistributedRun b = run_distributed(*dataset_, *cache_, 5, p54c());
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.disk_busy, b.disk_busy);
}

TEST_F(DistributedTest, Validation) {
  EXPECT_THROW(run_distributed(*dataset_, *cache_, 0, p54c()), rck::rckalign::AlignError);
  const auto other = bio::build_dataset(bio::ck34_spec());
  EXPECT_THROW(run_distributed(other, *cache_, 2, p54c()), rck::rckalign::AlignError);
}

TEST_F(DistributedTest, RejectsNonPositiveBandwidthAndNegativeOverheads) {
  // These used to flow through silently as NaN / negative simulated times.
  DistributedParams p;
  p.nfs_bytes_per_s = 0.0;
  EXPECT_THROW(run_distributed(*dataset_, *cache_, 2, p54c(), p),
               rck::rckalign::AlignError);
  p = DistributedParams{};
  p.nfs_bytes_per_s = -5.0;
  EXPECT_THROW(run_distributed(*dataset_, *cache_, 2, p54c(), p),
               rck::rckalign::AlignError);
  p = DistributedParams{};
  p.spawn_overhead_s = -1.0;
  EXPECT_THROW(run_distributed(*dataset_, *cache_, 2, p54c(), p),
               rck::rckalign::AlignError);
  p = DistributedParams{};
  p.master_dispatch_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(run_distributed(*dataset_, *cache_, 2, p54c(), p),
               rck::rckalign::AlignError);
  p = DistributedParams{};
  p.nfs_request_overhead_s = std::numeric_limits<double>::infinity();
  EXPECT_THROW(run_distributed(*dataset_, *cache_, 2, p54c(), p),
               rck::rckalign::AlignError);
  p = DistributedParams{};
  p.pdb_bytes_per_residue = -0.5;
  EXPECT_THROW(run_distributed(*dataset_, *cache_, 2, p54c(), p),
               rck::rckalign::AlignError);
}

TEST_F(DistributedTest, LargerFilesSlowTheDisk) {
  DistributedParams slow_disk;
  slow_disk.nfs_bytes_per_s = 1e6;
  DistributedParams fast_disk;
  fast_disk.nfs_bytes_per_s = 1e9;
  const noc::SimTime t_slow =
      run_distributed(*dataset_, *cache_, 4, p54c(), slow_disk).makespan;
  const noc::SimTime t_fast =
      run_distributed(*dataset_, *cache_, 4, p54c(), fast_disk).makespan;
  EXPECT_GT(t_slow, t_fast);
}

}  // namespace
}  // namespace rck::rckalign
