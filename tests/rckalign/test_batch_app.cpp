// End-to-end bit-identity of batched farm grants (RckAlignOptions::batch,
// BlockedOptions::batch, OneVsAllOptions::batch).
//
// Batching is a pure scheduling/transport change: slaves pull K jobs per
// grant and pack TM-align pairs across SIMD lanes (core::kern::align_batch),
// but every per-job score, cycle charge and observation must be bit-identical
// to the classic one-job-at-a-time farm. These tests pin that contract at
// the application layer, on top of the kernel-level identity already proven
// by tests/core/test_batch.cpp and the protocol-level tests in
// tests/rckskel/test_batch_farm.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "rck/bio/dataset.hpp"
#include "rck/rckalign/app.hpp"
#include "rck/rckalign/blocked.hpp"
#include "rck/rckalign/error.hpp"
#include "rck/rckalign/one_vs_all.hpp"

namespace rck::rckalign {
namespace {

class BatchAppTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new std::vector<bio::Protein>(bio::build_dataset(bio::tiny_spec()));
    cache_ = new PairCache(PairCache::build(*dataset_));
  }
  static void TearDownTestSuite() {
    delete cache_;
    delete dataset_;
    cache_ = nullptr;
    dataset_ = nullptr;
  }
  /// Live (uncached) options so slaves actually run TM-align — and, for
  /// batch > 1, the lane-packed align_batch path.
  static RckAlignOptions live(int slaves, std::size_t batch) {
    RckAlignOptions o;
    o.slave_count = slaves;
    o.cache = nullptr;
    o.batch = batch;
    return o;
  }
  static std::vector<PairRow> sorted_rows(std::vector<PairRow> rows) {
    std::sort(rows.begin(), rows.end(), [](const PairRow& a, const PairRow& b) {
      return std::pair{a.i, a.j} < std::pair{b.i, b.j};
    });
    return rows;
  }
  /// Bitwise comparison of everything a pair comparison computed. `worker`
  /// is deliberately excluded: grant packing legitimately reassigns jobs.
  static void expect_rows_identical(const std::vector<PairRow>& a,
                                    const std::vector<PairRow>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].i, b[k].i);
      EXPECT_EQ(a[k].j, b[k].j);
      EXPECT_EQ(a[k].tm_norm_a, b[k].tm_norm_a);  // EXPECT_EQ: exact bits
      EXPECT_EQ(a[k].tm_norm_b, b[k].tm_norm_b);
      EXPECT_EQ(a[k].rmsd, b[k].rmsd);
      EXPECT_EQ(a[k].seq_identity, b[k].seq_identity);
      EXPECT_EQ(a[k].aligned_length, b[k].aligned_length);
    }
  }
  static std::vector<bio::Protein>* dataset_;
  static PairCache* cache_;
};

std::vector<bio::Protein>* BatchAppTest::dataset_ = nullptr;
PairCache* BatchAppTest::cache_ = nullptr;

TEST_F(BatchAppTest, BatchedRunMatchesUnbatchedBitwise) {
  const RckAlignRun solo = run_rckalign(*dataset_, live(3, 1));
  for (const std::size_t k : {std::size_t{4}, std::size_t{8}}) {
    const RckAlignRun batched = run_rckalign(*dataset_, live(3, k));
    expect_rows_identical(sorted_rows(solo.results), sorted_rows(batched.results));
  }
}

TEST_F(BatchAppTest, BatchingCutsMasterMessageCount) {
  // The whole point of K-job grants: fewer master round trips. With 28 jobs
  // and K=4 the master sends ~1/4 the job frames (results likewise).
  const RckAlignRun solo = run_rckalign(*dataset_, live(3, 1));
  const RckAlignRun batched = run_rckalign(*dataset_, live(3, 4));
  EXPECT_LT(batched.core_reports[0].messages_sent,
            solo.core_reports[0].messages_sent);
  EXPECT_LT(batched.core_reports[0].messages_received,
            solo.core_reports[0].messages_received);
}

TEST_F(BatchAppTest, BatchedRunDeterministic) {
  const RckAlignRun a = run_rckalign(*dataset_, live(4, 4));
  const RckAlignRun b = run_rckalign(*dataset_, live(4, 4));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events, b.events);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t k = 0; k < a.results.size(); ++k) {
    EXPECT_EQ(a.results[k].i, b.results[k].i);
    EXPECT_EQ(a.results[k].j, b.results[k].j);
    EXPECT_EQ(a.results[k].worker, b.results[k].worker);
  }
}

TEST_F(BatchAppTest, BatchedBitIdenticalUnderHostThreads) {
  // Host-parallel scheduling must not perturb batched runs: same makespan,
  // same event count, same rows (workers included) as the serial scheduler.
  RckAlignOptions serial = live(4, 4);
  RckAlignOptions threaded = live(4, 4);
  threaded.runtime.host.threads = 3;
  const RckAlignRun a = run_rckalign(*dataset_, serial);
  const RckAlignRun b = run_rckalign(*dataset_, threaded);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events, b.events);
  const auto sa = sorted_rows(a.results), sb = sorted_rows(b.results);
  expect_rows_identical(sa, sb);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t k = 0; k < sa.size(); ++k)
    EXPECT_EQ(sa[k].worker, sb[k].worker);
}

TEST_F(BatchAppTest, CachedRunsReplaySoloInsideGrants) {
  // With a cache the slave replays each job solo inside the grant (no lane
  // packing), but grant-level transport still applies and results must not
  // change.
  RckAlignOptions cached1 = live(3, 1);
  RckAlignOptions cached4 = live(3, 4);
  cached1.cache = cache_;
  cached4.cache = cache_;
  const RckAlignRun a = run_rckalign(*dataset_, cached1);
  const RckAlignRun b = run_rckalign(*dataset_, cached4);
  expect_rows_identical(sorted_rows(a.results), sorted_rows(b.results));
}

TEST_F(BatchAppTest, BlockedBatchedMatchesUnbatched) {
  // Force several blocks so batched slaves serve multiple farm rounds
  // (wait_ready only on the first, no terminate between rounds).
  std::uint64_t total = 0;
  for (const bio::Protein& p : *dataset_) total += p.wire_size();
  BlockedOptions b1, b4;
  b1.slave_count = b4.slave_count = 3;
  b1.master_memory_bytes = b4.master_memory_bytes = total;  // ~2-3 blocks
  b4.batch = 4;
  const BlockedRun r1 = run_rckalign_blocked(*dataset_, b1);
  const BlockedRun r4 = run_rckalign_blocked(*dataset_, b4);
  ASSERT_GT(r1.blocks, 1);
  expect_rows_identical(sorted_rows(r1.results), sorted_rows(r4.results));
}

TEST_F(BatchAppTest, OneVsAllBatchedMatchesUnbatched) {
  const bio::Protein& query = dataset_->front();
  const std::vector<bio::Protein> db(dataset_->begin() + 1, dataset_->end());
  OneVsAllOptions o1, o4;
  o1.slave_count = o4.slave_count = 3;
  o1.methods = o4.methods = {Method::TmAlign, Method::GaplessRmsd};
  o4.batch = 4;
  const OneVsAllRun r1 = run_one_vs_all(query, db, o1);
  const OneVsAllRun r4 = run_one_vs_all(query, db, o4);
  ASSERT_EQ(r1.ranked.size(), r4.ranked.size());
  for (std::size_t m = 0; m < r1.ranked.size(); ++m) {
    ASSERT_EQ(r1.ranked[m].size(), r4.ranked[m].size());
    for (std::size_t k = 0; k < r1.ranked[m].size(); ++k) {
      const Hit& a = r1.ranked[m][k];
      const Hit& b = r4.ranked[m][k];
      EXPECT_EQ(a.entry, b.entry);
      EXPECT_EQ(a.tm_query, b.tm_query);
      EXPECT_EQ(a.tm_entry, b.tm_entry);
      EXPECT_EQ(a.rmsd, b.rmsd);
      EXPECT_EQ(a.seq_identity, b.seq_identity);
      EXPECT_EQ(a.aligned_length, b.aligned_length);
    }
  }
}

TEST_F(BatchAppTest, BatchValidation) {
  EXPECT_THROW(run_rckalign(*dataset_, live(3, 0)), AlignError);

  RckAlignOptions ft = live(3, 4);
  ft.fault_tolerant = true;
  EXPECT_THROW(run_rckalign(*dataset_, ft), AlignError);

  BlockedOptions bo;
  bo.slave_count = 3;
  bo.batch = 0;
  EXPECT_THROW(run_rckalign_blocked(*dataset_, bo), AlignError);

  OneVsAllOptions oo;
  oo.slave_count = 3;
  oo.batch = 0;
  EXPECT_THROW(run_one_vs_all(dataset_->front(), *dataset_, oo), AlignError);
}

}  // namespace
}  // namespace rck::rckalign
