#include "rck/rckalign/error.hpp"
#include "rck/rckalign/extensions.hpp"

#include <gtest/gtest.h>

#include <set>

#include "rck/bio/dataset.hpp"

namespace rck::rckalign {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new std::vector<bio::Protein>(bio::build_dataset(bio::tiny_spec()));
    cache_ = new PairCache(PairCache::build(*dataset_));
  }
  static void TearDownTestSuite() {
    delete cache_;
    delete dataset_;
    cache_ = nullptr;
    dataset_ = nullptr;
  }
  static std::vector<bio::Protein>* dataset_;
  static PairCache* cache_;
};

std::vector<bio::Protein>* ExtensionsTest::dataset_ = nullptr;
PairCache* ExtensionsTest::cache_ = nullptr;

TEST_F(ExtensionsTest, McPscRunsBothMethods) {
  McPscOptions opts;
  opts.tmalign_slaves = 3;
  opts.rmsd_slaves = 2;
  opts.cache = cache_;
  const McPscRun run = run_mcpsc(*dataset_, opts);
  EXPECT_EQ(run.tmalign_results.size(), 28u);
  EXPECT_EQ(run.rmsd_results.size(), 28u);
  EXPECT_GT(run.makespan, 0u);
}

TEST_F(ExtensionsTest, McPscPartitionRespected) {
  McPscOptions opts;
  opts.tmalign_slaves = 3;  // UEs 1..3
  opts.rmsd_slaves = 2;     // UEs 4..5
  opts.cache = cache_;
  const McPscRun run = run_mcpsc(*dataset_, opts);
  for (const PairRow& r : run.tmalign_results) {
    EXPECT_GE(r.worker, 1);
    EXPECT_LE(r.worker, 3);
  }
  for (const PairRow& r : run.rmsd_results) {
    EXPECT_GE(r.worker, 4);
    EXPECT_LE(r.worker, 5);
  }
}

TEST_F(ExtensionsTest, McPscTmScoresMatchCache) {
  McPscOptions opts;
  opts.tmalign_slaves = 2;
  opts.rmsd_slaves = 1;
  opts.cache = cache_;
  const McPscRun run = run_mcpsc(*dataset_, opts);
  for (const PairRow& r : run.tmalign_results)
    EXPECT_DOUBLE_EQ(r.tm_norm_a, cache_->at(r.i, r.j).tm_norm_a);
  // RMSD rows come from the second method; rmsd must be populated.
  for (const PairRow& r : run.rmsd_results) EXPECT_GT(r.rmsd, 0.0);
}

TEST_F(ExtensionsTest, McPscValidation) {
  McPscOptions opts;
  opts.tmalign_slaves = 0;
  opts.rmsd_slaves = 2;
  EXPECT_THROW(run_mcpsc(*dataset_, opts), rck::rckalign::AlignError);
  opts.tmalign_slaves = 40;
  opts.rmsd_slaves = 40;
  EXPECT_THROW(run_mcpsc(*dataset_, opts), rck::rckalign::AlignError);
}

TEST_F(ExtensionsTest, HierarchyCompletesAllPairs) {
  HierarchyOptions opts;
  opts.group_count = 2;
  opts.slave_count = 6;
  opts.cache = cache_;
  const HierarchyRun run = run_hierarchical(*dataset_, opts);
  EXPECT_EQ(run.results.size(), 28u);
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (const PairRow& r : run.results) seen.insert({r.i, r.j});
  EXPECT_EQ(seen.size(), 28u);
}

TEST_F(ExtensionsTest, HierarchyScoresMatchCache) {
  HierarchyOptions opts;
  opts.group_count = 2;
  opts.slave_count = 4;
  opts.cache = cache_;
  const HierarchyRun run = run_hierarchical(*dataset_, opts);
  for (const PairRow& r : run.results)
    EXPECT_DOUBLE_EQ(r.tm_norm_a, cache_->at(r.i, r.j).tm_norm_a);
}

TEST_F(ExtensionsTest, HierarchyLeafWorkersOnly) {
  HierarchyOptions opts;
  opts.group_count = 2;  // sub-masters are ranks 1,2
  opts.slave_count = 6;  // leaves are ranks 3..8
  opts.cache = cache_;
  const HierarchyRun run = run_hierarchical(*dataset_, opts);
  for (const PairRow& r : run.results) {
    EXPECT_GE(r.worker, 3);
    EXPECT_LE(r.worker, 8);
  }
}

TEST_F(ExtensionsTest, HierarchyCompetitiveWithFlatFarm) {
  // Same number of leaf workers: the two-level hierarchy must be within a
  // modest factor of the flat farm (it exists to relieve the master, not to
  // speed up this small workload).
  HierarchyOptions h;
  h.group_count = 2;
  h.slave_count = 6;
  h.cache = cache_;
  const noc::SimTime hier = run_hierarchical(*dataset_, h).makespan;

  RckAlignOptions f;
  f.slave_count = 6;
  f.cache = cache_;
  const noc::SimTime flat = run_rckalign(*dataset_, f).makespan;
  EXPECT_LT(static_cast<double>(hier), 1.5 * static_cast<double>(flat));
}

TEST_F(ExtensionsTest, HierarchyValidation) {
  HierarchyOptions opts;
  opts.group_count = 0;
  EXPECT_THROW(run_hierarchical(*dataset_, opts), rck::rckalign::AlignError);
  opts.group_count = 4;
  opts.slave_count = 2;  // fewer slaves than groups
  EXPECT_THROW(run_hierarchical(*dataset_, opts), rck::rckalign::AlignError);
  opts.group_count = 10;
  opts.slave_count = 45;  // 1 + 10 + 45 > 48
  EXPECT_THROW(run_hierarchical(*dataset_, opts), rck::rckalign::AlignError);
}

TEST_F(ExtensionsTest, HierarchyDeterministic) {
  HierarchyOptions opts;
  opts.group_count = 3;
  opts.slave_count = 6;
  opts.cache = cache_;
  const HierarchyRun a = run_hierarchical(*dataset_, opts);
  const HierarchyRun b = run_hierarchical(*dataset_, opts);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.results.size(), b.results.size());
}

}  // namespace
}  // namespace rck::rckalign
