#include "rck/rckalign/error.hpp"
#include "rck/rckalign/cost_cache.hpp"

#include <gtest/gtest.h>

#include "rck/bio/dataset.hpp"
#include "rck/core/error.hpp"
#include "rck/core/tmalign.hpp"

namespace rck::rckalign {
namespace {

class CostCacheTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new std::vector<bio::Protein>(bio::build_dataset(bio::tiny_spec()));
    cache_ = new PairCache(PairCache::build(*dataset_));
  }
  static void TearDownTestSuite() {
    delete cache_;
    delete dataset_;
    cache_ = nullptr;
    dataset_ = nullptr;
  }
  static std::vector<bio::Protein>* dataset_;
  static PairCache* cache_;
};

std::vector<bio::Protein>* CostCacheTest::dataset_ = nullptr;
PairCache* CostCacheTest::cache_ = nullptr;

TEST_F(CostCacheTest, Dimensions) {
  EXPECT_EQ(cache_->chain_count(), 8u);
  EXPECT_EQ(cache_->pair_count(), 28u);
}

TEST_F(CostCacheTest, EntriesMatchDirectAlignment) {
  const core::TmAlignResult direct = core::tmalign((*dataset_)[0], (*dataset_)[3]);
  const PairEntry& e = cache_->at(0, 3);
  EXPECT_DOUBLE_EQ(e.tm_norm_a, direct.tm_norm_a);
  EXPECT_DOUBLE_EQ(e.tm_norm_b, direct.tm_norm_b);
  EXPECT_DOUBLE_EQ(e.rmsd, direct.rmsd);
  EXPECT_EQ(e.aligned_length, static_cast<std::uint32_t>(direct.aligned_length));
  EXPECT_EQ(e.stats, direct.stats);
}

TEST_F(CostCacheTest, OrderInsensitiveLookup) {
  EXPECT_EQ(&cache_->at(2, 5), &cache_->at(5, 2));
}

TEST_F(CostCacheTest, InvalidPairsThrow) {
  EXPECT_THROW(cache_->at(3, 3), rck::rckalign::AlignError);
  EXPECT_THROW(cache_->at(0, 8), rck::rckalign::AlignError);
}

TEST_F(CostCacheTest, FootprintsPopulated) {
  const PairEntry& e = cache_->at(0, 1);
  EXPECT_EQ(e.footprint_bytes,
            scc::CoreTimingModel::alignment_footprint((*dataset_)[0].size(),
                                                      (*dataset_)[1].size()));
}

TEST_F(CostCacheTest, TotalCyclesIsSumOfPairs) {
  const scc::CoreTimingModel model = scc::CoreTimingModel::p54c_800();
  std::uint64_t sum = 0;
  for (std::uint32_t j = 1; j < 8; ++j)
    for (std::uint32_t i = 0; i < j; ++i) sum += cache_->pair_cycles(i, j, model);
  EXPECT_EQ(sum, cache_->total_cycles(model));
}

TEST_F(CostCacheTest, SingleThreadBuildIdentical) {
  // Host threading must not change anything (determinism of the cache).
  const PairCache serial = PairCache::build(*dataset_, 1);
  const scc::CoreTimingModel model = scc::CoreTimingModel::p54c_800();
  EXPECT_EQ(serial.total_cycles(model), cache_->total_cycles(model));
  for (std::uint32_t j = 1; j < 8; ++j)
    for (std::uint32_t i = 0; i < j; ++i) {
      EXPECT_DOUBLE_EQ(serial.at(i, j).tm_norm_a, cache_->at(i, j).tm_norm_a);
      EXPECT_EQ(serial.at(i, j).stats, cache_->at(i, j).stats);
    }
}

TEST_F(CostCacheTest, FamilyStructureVisibleInScores) {
  // tiny: chains 0-2 family a, 3-5 family b, 6-7 family c.
  const double within_a = cache_->at(0, 1).tm_norm_a;
  const double cross_ab = cache_->at(0, 3).tm_norm_a;
  EXPECT_GT(within_a, cross_ab);
}

TEST(CostCache, PropagatesAlignmentErrors) {
  // A chain below TM-align's minimum length must surface as an exception
  // from build(), not a hang or a corrupt cache.
  std::vector<bio::Protein> bad;
  bio::Rng rng(1);
  bad.push_back(bio::make_protein("ok", 30, rng));
  bad.push_back(bio::Protein("tiny", {{'A', 1, {0, 0, 0}},
                                      {'G', 2, {3.8, 0, 0}},
                                      {'L', 3, {7.6, 0, 0}}}));
  EXPECT_THROW(PairCache::build(bad), rck::core::CoreError);
}

}  // namespace
}  // namespace rck::rckalign
