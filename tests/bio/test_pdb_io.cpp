#include "rck/bio/pdb_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "rck/bio/synthetic.hpp"

namespace rck::bio {
namespace {

constexpr const char* kTwoChainPdb =
    "HEADER    TEST\n"
    "ATOM      1  N   ALA A   1      11.104   6.134  -6.504  1.00  0.00           N\n"
    "ATOM      2  CA  ALA A   1      11.639   6.071  -5.147  1.00  0.00           C\n"
    "ATOM      3  CA  GLY A   2      12.000   9.500  -4.000  1.00  0.00           C\n"
    "ATOM      4  CA  TRP A   3      15.100  10.000  -2.500  1.00  0.00           C\n"
    "TER       5      TRP A   3\n"
    "ATOM      6  CA  LYS B   1       1.000   2.000   3.000  1.00  0.00           C\n"
    "ATOM      7  CA  SER B   2       4.500   2.200   3.100  1.00  0.00           C\n"
    "END\n";

TEST(PdbParse, FirstChainOnly) {
  const Protein p = parse_pdb(kTwoChainPdb, "test");
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.sequence(), "AGW");
  EXPECT_DOUBLE_EQ(p[0].ca.x, 11.639);
  EXPECT_DOUBLE_EQ(p[2].ca.z, -2.5);
  EXPECT_EQ(p[1].seq, 2);
}

TEST(PdbParse, SpecificChain) {
  PdbParseOptions opts;
  opts.chain_id = 'B';
  const Protein p = parse_pdb(kTwoChainPdb, "test", opts);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.sequence(), "KS");
}

TEST(PdbParse, AllChains) {
  const auto chains = parse_pdb_all_chains(kTwoChainPdb, "test");
  ASSERT_EQ(chains.size(), 2u);
  EXPECT_EQ(chains[0].size(), 3u);
  EXPECT_EQ(chains[1].size(), 2u);
  EXPECT_EQ(chains[0].name(), "test_A");
  EXPECT_EQ(chains[1].name(), "test_B");
}

TEST(PdbParse, FirstModelOnly) {
  const std::string two_models =
      "MODEL        1\n"
      "ATOM      1  CA  ALA A   1       0.000   0.000   0.000  1.00  0.00           C\n"
      "ENDMDL\n"
      "MODEL        2\n"
      "ATOM      2  CA  ALA A   1       9.000   9.000   9.000  1.00  0.00           C\n"
      "ATOM      3  CA  GLY A   2      12.000   9.000   9.000  1.00  0.00           C\n"
      "ENDMDL\n";
  const Protein p = parse_pdb(two_models, "m");
  EXPECT_EQ(p.size(), 1u);
  EXPECT_DOUBLE_EQ(p[0].ca.x, 0.0);
}

TEST(PdbParse, SkipsAltLocB) {
  const std::string altloc =
      "ATOM      1  CA AALA A   1       1.000   0.000   0.000  1.00  0.00           C\n"
      "ATOM      2  CA BALA A   1       9.000   0.000   0.000  1.00  0.00           C\n"
      "ATOM      3  CA  GLY A   2       4.000   0.000   0.000  1.00  0.00           C\n";
  const Protein p = parse_pdb(altloc, "alt");
  EXPECT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p[0].ca.x, 1.0);  // altloc A kept, B skipped
}

TEST(PdbParse, AcceptsHetatmMse) {
  const std::string mse =
      "ATOM      1  CA  ALA A   1       0.000   0.000   0.000  1.00  0.00           C\n"
      "HETATM    2  CA  MSE A   2       3.800   0.000   0.000  1.00  0.00           C\n";
  const Protein p = parse_pdb(mse, "mse");
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p[1].aa, 'M');

  PdbParseOptions opts;
  opts.include_hetatm_mse = false;
  EXPECT_EQ(parse_pdb(mse, "mse", opts).size(), 1u);
}

TEST(PdbParse, ThrowsOnEmptyInput) {
  EXPECT_THROW(parse_pdb("", "empty"), PdbError);
  EXPECT_THROW(parse_pdb("HEADER only\n", "hdr"), PdbError);
}

TEST(PdbParse, ThrowsOnMalformedCoordinates) {
  const std::string bad =
      "ATOM      1  CA  ALA A   1      xx.xxx   0.000   0.000  1.00  0.00           C\n";
  EXPECT_THROW(parse_pdb(bad, "bad"), PdbError);
}

TEST(PdbParse, UnknownResidueBecomesX) {
  const std::string odd =
      "ATOM      1  CA  ZZZ A   1       0.000   0.000   0.000  1.00  0.00           C\n";
  EXPECT_EQ(parse_pdb(odd, "odd")[0].aa, 'X');
}

TEST(PdbRoundTrip, WriteThenParsePreservesStructure) {
  Rng rng(21);
  const Protein p = make_protein("round", 60, rng);
  const std::string text = to_pdb(p);
  const Protein q = parse_pdb(text, "round");
  ASSERT_EQ(q.size(), p.size());
  EXPECT_EQ(q.sequence(), p.sequence());
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(p[i].ca.x, q[i].ca.x, 1e-3);  // PDB stores 3 decimals
    EXPECT_NEAR(p[i].ca.y, q[i].ca.y, 1e-3);
    EXPECT_NEAR(p[i].ca.z, q[i].ca.z, 1e-3);
    EXPECT_EQ(p[i].seq, q[i].seq);
  }
}

TEST(PdbRoundTrip, FileIo) {
  Rng rng(22);
  const Protein p = make_protein("fileio", 30, rng);
  const auto path = std::filesystem::temp_directory_path() / "rck_test_pdb" / "x.pdb";
  write_pdb_file(p, path);
  const Protein q = parse_pdb_file(path);
  EXPECT_EQ(q.size(), p.size());
  EXPECT_EQ(q.name(), "x");  // stem of the file
  std::filesystem::remove_all(path.parent_path());
}

TEST(PdbParse, FileNotFound) {
  EXPECT_THROW(parse_pdb_file("/nonexistent/definitely/missing.pdb"), PdbError);
}

}  // namespace
}  // namespace rck::bio
