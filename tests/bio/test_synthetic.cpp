#include "rck/bio/error.hpp"
#include "rck/bio/synthetic.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "rck/core/sec_struct.hpp"

namespace rck::bio {
namespace {

TEST(MakePlan, CoversExactLength) {
  Rng rng(1);
  for (int len : {3, 10, 57, 150, 500}) {
    const StructurePlan plan = make_plan(len, rng);
    int total = 0;
    for (const SsSegment& s : plan) {
      EXPECT_GT(s.length, 0);
      total += s.length;
    }
    EXPECT_EQ(total, len);
  }
}

TEST(MakePlan, RejectsTinyChains) {
  Rng rng(2);
  EXPECT_THROW(make_plan(2, rng), rck::bio::BioError);
}

TEST(MakePlan, AlternatesStructuredAndCoil) {
  Rng rng(3);
  const StructurePlan plan = make_plan(200, rng);
  for (std::size_t k = 0; k + 1 < plan.size(); ++k) {
    const bool a_coil = plan[k].type == SsType::Coil;
    const bool b_coil = plan[k + 1].type == SsType::Coil;
    EXPECT_NE(a_coil, b_coil) << "segments " << k << "," << k + 1;
  }
}

TEST(BuildBackbone, ChainConnectivity) {
  Rng rng(4);
  const StructurePlan plan = make_plan(120, rng);
  const std::vector<Vec3> pts = build_backbone(plan, rng);
  ASSERT_EQ(pts.size(), 120u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const double d = distance(pts[i - 1], pts[i]);
    EXPECT_GT(d, 3.0) << "residue " << i;
    EXPECT_LT(d, 4.5) << "residue " << i;
  }
}

TEST(BuildBackbone, MostlySelfAvoiding) {
  Rng rng(5);
  const StructurePlan plan = make_plan(200, rng);
  const std::vector<Vec3> pts = build_backbone(plan, rng);
  // Count hard clashes (< 3 A between residues >= 3 apart). The generator
  // uses a soft constraint, so allow a small number.
  int clashes = 0;
  for (std::size_t i = 0; i < pts.size(); ++i)
    for (std::size_t j = i + 3; j < pts.size(); ++j)
      if (distance(pts[i], pts[j]) < 3.0) ++clashes;
  EXPECT_LE(clashes, 4);
}

TEST(BuildBackbone, HelixSegmentsDetectedAsHelix) {
  Rng rng(6);
  const StructurePlan plan{{SsType::Helix, 30}};
  const std::vector<Vec3> pts = build_backbone(plan, rng);
  const auto sec = core::assign_secondary_structure(pts);
  int helix = 0;
  for (std::size_t i = 2; i + 2 < sec.size(); ++i) helix += sec[i] == SsType::Helix;
  // interior residues should essentially all read back as helix
  EXPECT_GE(helix, 24);
}

TEST(BuildBackbone, StrandSegmentsDetectedAsStrand) {
  Rng rng(7);
  const StructurePlan plan{{SsType::Strand, 20}};
  const std::vector<Vec3> pts = build_backbone(plan, rng);
  const auto sec = core::assign_secondary_structure(pts);
  int strand = 0;
  for (std::size_t i = 2; i + 2 < sec.size(); ++i) strand += sec[i] == SsType::Strand;
  EXPECT_GE(strand, 14);
}

TEST(MakeProtein, DeterministicForSeed) {
  Rng rng1(42), rng2(42);
  const Protein a = make_protein("a", 80, rng1);
  const Protein b = make_protein("a", 80, rng2);
  EXPECT_EQ(a, b);
}

TEST(MakeProtein, DifferentSeedsDiffer) {
  Rng rng1(42), rng2(43);
  const Protein a = make_protein("a", 80, rng1);
  const Protein b = make_protein("a", 80, rng2);
  EXPECT_NE(a, b);
}

TEST(MakeProtein, SequenceUsesStandardAlphabet) {
  Rng rng(8);
  const Protein p = make_protein("seq", 300, rng);
  const std::string alphabet = "ACDEFGHIKLMNPQRSTVWY";
  for (const Residue& r : p.residues())
    EXPECT_NE(alphabet.find(r.aa), std::string::npos) << r.aa;
}

TEST(Perturb, PreservesApproximateLength) {
  Rng rng(9);
  const Protein parent = make_protein("p", 150, rng);
  const Protein child = perturb(parent, "c", rng);
  EXPECT_GE(child.size(), 150u - 8u);
  EXPECT_LE(child.size(), 150u);
  EXPECT_EQ(child.name(), "c");
}

TEST(Perturb, RenumbersSequentially) {
  Rng rng(10);
  const Protein parent = make_protein("p", 100, rng);
  const Protein child = perturb(parent, "c", rng);
  for (std::size_t i = 0; i < child.size(); ++i)
    EXPECT_EQ(child[i].seq, static_cast<std::int32_t>(i + 1));
}

TEST(Perturb, KeepsChainConnectivity) {
  Rng rng(11);
  const Protein parent = make_protein("p", 200, rng);
  const Protein child = perturb(parent, "c", rng);
  const auto pts = child.ca_coords();
  // Per-atom Gaussian noise (sigma 0.35 per coordinate on both endpoints)
  // widens the 3.8 A bond distribution; bounds cover ~4 sigma.
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const double d = distance(pts[i - 1], pts[i]);
    EXPECT_GT(d, 1.8) << i;
    EXPECT_LT(d, 5.8) << i;
  }
}

TEST(Perturb, NoRigidMotionKeepsCoordinatesClose) {
  Rng rng(12);
  const Protein parent = make_protein("p", 120, rng);
  PerturbOptions opts;
  opts.random_rigid_motion = false;
  opts.max_terminal_indel = 0;
  const Protein child = perturb(parent, "c", rng, opts);
  ASSERT_EQ(child.size(), parent.size());
  // hinge motions move the tail, but the body should stay within a few A
  double max_d = 0;
  for (std::size_t i = 0; i < 5; ++i)
    max_d = std::max(max_d, distance(parent[i].ca, child[i].ca));
  EXPECT_LT(max_d, 3.0);
}

TEST(RandomTransform, IsRigid) {
  Rng rng(13);
  for (int k = 0; k < 20; ++k) {
    const Transform t = random_transform(rng);
    EXPECT_TRUE(is_rotation(t.rot, 1e-9));
    EXPECT_LE(std::abs(t.trans.x), 30.0);
  }
}

TEST(RandomSequence, DeterministicAndCorrectLength) {
  Rng a(99), b(99);
  EXPECT_EQ(random_sequence(50, a), random_sequence(50, b));
  Rng c(1);
  EXPECT_EQ(random_sequence(7, c).size(), 7u);
}

}  // namespace
}  // namespace rck::bio
