#include "rck/bio/seq_align.hpp"

#include <gtest/gtest.h>

#include "rck/bio/synthetic.hpp"

namespace rck::bio {
namespace {

TEST(Blosum62, KnownEntries) {
  const auto& m = SubstitutionMatrix::blosum62();
  EXPECT_EQ(m.score('A', 'A'), 4);
  EXPECT_EQ(m.score('W', 'W'), 11);
  EXPECT_EQ(m.score('A', 'R'), -1);
  EXPECT_EQ(m.score('W', 'P'), -4);
  EXPECT_EQ(m.score('I', 'V'), 3);
}

TEST(Blosum62, Symmetric) {
  const auto& m = SubstitutionMatrix::blosum62();
  const std::string aas = "ACDEFGHIKLMNPQRSTVWY";
  for (char a : aas)
    for (char b : aas) EXPECT_EQ(m.score(a, b), m.score(b, a)) << a << b;
}

TEST(Blosum62, CaseInsensitiveAndUnknown) {
  const auto& m = SubstitutionMatrix::blosum62();
  EXPECT_EQ(m.score('a', 'A'), 4);
  EXPECT_EQ(m.score('X', 'A'), -4);
  EXPECT_EQ(m.score('*', 'A'), -4);
}

TEST(SeqAlign, IdenticalSequences) {
  const SeqAlignResult r = seq_align("MKVLAT", "MKVLAT");
  EXPECT_EQ(r.aligned_a, "MKVLAT");
  EXPECT_EQ(r.aligned_b, "MKVLAT");
  EXPECT_EQ(r.aligned_length, 6);
  EXPECT_EQ(r.identities, 6);
  EXPECT_DOUBLE_EQ(r.identity(), 1.0);
  // Score = sum of diagonal entries.
  const auto& m = SubstitutionMatrix::blosum62();
  int expect = 0;
  for (char c : std::string("MKVLAT")) expect += m.score(c, c);
  EXPECT_EQ(r.score, expect);
}

TEST(SeqAlign, SingleInternalGap) {
  // ACDEFG vs ACEFG: one D deleted; affine gap = open(-11).
  const SeqAlignResult r = seq_align("ACDEFG", "ACEFG");
  EXPECT_EQ(r.aligned_a, "ACDEFG");
  EXPECT_EQ(r.aligned_b, "AC-EFG");
  EXPECT_EQ(r.identities, 5);
}

TEST(SeqAlign, AffineGapPrefersOneLongGap) {
  // Deleting 3 residues: one gap of 3 (open + 2*extend = -13) must beat
  // three isolated gaps (3*open = -33).
  const SeqAlignResult r = seq_align("AAACDEFWAAA", "AAAWAAA");
  int gap_openings = 0;
  bool in_gap = false;
  for (char c : r.aligned_b) {
    if (c == '-' && !in_gap) {
      ++gap_openings;
      in_gap = true;
    } else if (c != '-') {
      in_gap = false;
    }
  }
  EXPECT_EQ(gap_openings, 1);
}

TEST(SeqAlign, ScoreSymmetry) {
  const SeqAlignResult ab = seq_align("MKVLATWPDE", "MKVIASWPE");
  const SeqAlignResult ba = seq_align("MKVIASWPE", "MKVLATWPDE");
  EXPECT_EQ(ab.score, ba.score);
  EXPECT_EQ(ab.identities, ba.identities);
}

TEST(SeqAlign, AlignedStringsReconstructInputs) {
  Rng rng(1);
  const std::string a = random_sequence(60, rng);
  const std::string b = random_sequence(45, rng);
  const SeqAlignResult r = seq_align(a, b);
  std::string ra, rb;
  for (char c : r.aligned_a)
    if (c != '-') ra.push_back(c);
  for (char c : r.aligned_b)
    if (c != '-') rb.push_back(c);
  EXPECT_EQ(ra, a);
  EXPECT_EQ(rb, b);
  EXPECT_EQ(r.aligned_a.size(), r.aligned_b.size());
}

TEST(SeqAlign, EmptyInputsGlobal) {
  const SeqAlignResult r = seq_align("", "MKV");
  EXPECT_EQ(r.aligned_a, "---");
  EXPECT_EQ(r.aligned_b, "MKV");
  EXPECT_EQ(r.aligned_length, 0);
  const SeqAlignResult both = seq_align("", "");
  EXPECT_EQ(both.score, 0);
}

TEST(SeqAlign, LocalModeFindsIsland) {
  // A strong common core flanked by unrelated tails: local alignment must
  // return just the core.
  SeqAlignOptions opts;
  opts.local = true;
  const SeqAlignResult r =
      seq_align("PPPPPWWMKVLATWWPPPPP", "GGGGGWWMKVLATWWGGGGG", opts);
  EXPECT_EQ(r.aligned_a, "WWMKVLATWW");
  EXPECT_EQ(r.aligned_b, "WWMKVLATWW");
  EXPECT_DOUBLE_EQ(r.identity(), 1.0);
}

TEST(SeqAlign, LocalNeverNegative) {
  SeqAlignOptions opts;
  opts.local = true;
  const SeqAlignResult r = seq_align("WWWW", "PPPP", opts);
  EXPECT_GE(r.score, 0);
}

TEST(SeqAlign, FamilyMembersShowHighIdentity) {
  // perturb() mutates ~8% of residues: sequence identity of family members
  // stays high while unrelated random sequences sit near the ~5% baseline.
  Rng rng(2);
  const Protein p = make_protein("p", 150, rng);
  const Protein q = perturb(p, "q", rng);
  const Protein r = make_protein("r", 150, rng);
  const double fam = seq_align(p.sequence(), q.sequence()).identity();
  const double unrel = seq_align(p.sequence(), r.sequence()).identity();
  EXPECT_GT(fam, 0.75);
  EXPECT_LT(unrel, 0.35);
  EXPECT_GT(fam, unrel + 0.3);
}

TEST(SeqAlign, DpCellCountReported) {
  const SeqAlignResult r = seq_align("MKVLAT", "MKV");
  EXPECT_EQ(r.dp_cells, 18u);
}

}  // namespace
}  // namespace rck::bio
