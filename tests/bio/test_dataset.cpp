#include "rck/bio/error.hpp"
#include "rck/bio/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rck::bio {
namespace {

TEST(DatasetSpec, PaperChainCounts) {
  EXPECT_EQ(ck34_spec().total_chains(), 34);
  EXPECT_EQ(rs119_spec().total_chains(), 119);
  EXPECT_EQ(tiny_spec().total_chains(), 8);
}

TEST(DatasetSpec, PairCounts) {
  EXPECT_EQ(all_vs_all_pairs(34), 561u);
  EXPECT_EQ(all_vs_all_pairs(119), 7021u);
  EXPECT_EQ(all_vs_all_pairs(2), 1u);
  EXPECT_EQ(all_vs_all_pairs(1), 0u);
  EXPECT_EQ(all_vs_all_pairs(0), 0u);
}

TEST(BuildDataset, ProducesDeclaredChains) {
  const auto tiny = build_dataset(tiny_spec());
  EXPECT_EQ(tiny.size(), 8u);
  for (const Protein& p : tiny) {
    EXPECT_GE(p.size(), 50u);
    EXPECT_FALSE(p.name().empty());
  }
}

TEST(BuildDataset, NamesAreUnique) {
  const auto tiny = build_dataset(tiny_spec());
  std::set<std::string> names;
  for (const Protein& p : tiny) names.insert(p.name());
  EXPECT_EQ(names.size(), tiny.size());
}

TEST(BuildDataset, Deterministic) {
  const auto a = build_dataset(tiny_spec());
  const auto b = build_dataset(tiny_spec());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(BuildDataset, Ck34LengthDistribution) {
  const auto ck = build_dataset(ck34_spec());
  ASSERT_EQ(ck.size(), 34u);
  std::size_t min_len = 100000, max_len = 0, total = 0;
  for (const Protein& p : ck) {
    min_len = std::min(min_len, p.size());
    max_len = std::max(max_len, p.size());
    total += p.size();
  }
  // Chew-Kedem-like: globin-dominated, mean length in the high 100s.
  EXPECT_GE(min_len, 120u);
  EXPECT_LE(max_len, 360u);
  const double mean = static_cast<double>(total) / 34.0;
  EXPECT_GT(mean, 150.0);
  EXPECT_LT(mean, 220.0);
}

TEST(BuildDataset, Rs119LengthDistribution) {
  const auto rs = build_dataset(rs119_spec());
  ASSERT_EQ(rs.size(), 119u);
  std::size_t min_len = 100000, max_len = 0;
  for (const Protein& p : rs) {
    min_len = std::min(min_len, p.size());
    max_len = std::max(max_len, p.size());
  }
  // Rost-Sander-like: broad range from tiny domains to ~500 residues.
  EXPECT_LE(min_len, 60u);
  EXPECT_GE(max_len, 450u);
}

TEST(BuildDataset, FamilyMembersShareFamilyPrefix) {
  const auto tiny = build_dataset(tiny_spec());
  int family_a = 0;
  for (const Protein& p : tiny)
    if (p.name().rfind("tiny/a_", 0) == 0) ++family_a;
  EXPECT_EQ(family_a, 3);
}

TEST(ScaledSpec, ExactChainCountAnyN) {
  for (int n : {1, 2, 7, 34, 100}) {
    const DatasetSpec spec = scaled_spec("s", n, 1);
    EXPECT_EQ(spec.total_chains(), n) << n;
  }
}

TEST(ScaledSpec, DeterministicInSeed) {
  const auto a = build_dataset(scaled_spec("s", 20, 7));
  const auto b = build_dataset(scaled_spec("s", 20, 7));
  const auto c = build_dataset(scaled_spec("s", 20, 8));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  EXPECT_NE(a[0], c[0]);
}

TEST(ScaledSpec, LengthsWithinRange) {
  const auto ds = build_dataset(scaled_spec("s", 30, 3, 80, 120));
  for (const Protein& p : ds) {
    EXPECT_GE(p.size(), 80u - 8u);   // members can lose terminal residues
    EXPECT_LE(p.size(), 120u);
  }
}

TEST(ScaledSpec, RejectsBadParameters) {
  EXPECT_THROW(scaled_spec("s", 0, 1), rck::bio::BioError);
  EXPECT_THROW(scaled_spec("s", 5, 1, 10, 400), rck::bio::BioError);
  EXPECT_THROW(scaled_spec("s", 5, 1, 200, 100), rck::bio::BioError);
}

TEST(BuildDataset, MembersDifferFromFounder) {
  const auto tiny = build_dataset(tiny_spec());
  // tiny/a_0 is the founder; a_1, a_2 are perturbed copies.
  EXPECT_NE(tiny[0], tiny[1]);
  EXPECT_NE(tiny[1], tiny[2]);
}

}  // namespace
}  // namespace rck::bio
