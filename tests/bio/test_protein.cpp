#include "rck/bio/error.hpp"
#include "rck/bio/protein.hpp"

#include <gtest/gtest.h>

#include "rck/bio/serialize.hpp"
#include "rck/bio/synthetic.hpp"

namespace rck::bio {
namespace {

Protein make_toy() {
  return Protein("toy", {{'A', 1, {0, 0, 0}},
                         {'G', 2, {3.8, 0, 0}},
                         {'W', 3, {3.8, 3.8, 0}},
                         {'K', 4, {0, 3.8, 0}}});
}

TEST(Protein, BasicAccessors) {
  const Protein p = make_toy();
  EXPECT_EQ(p.name(), "toy");
  EXPECT_EQ(p.size(), 4u);
  EXPECT_FALSE(p.empty());
  EXPECT_EQ(p[2].aa, 'W');
  EXPECT_EQ(p[2].seq, 3);
  EXPECT_EQ(p.sequence(), "AGWK");
}

TEST(Protein, CaCoordsMatchResidues) {
  const Protein p = make_toy();
  const std::vector<Vec3> c = p.ca_coords();
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c[1], (Vec3{3.8, 0, 0}));
}

TEST(Protein, Centroid) {
  const Protein p = make_toy();
  const Vec3 c = p.centroid();
  EXPECT_DOUBLE_EQ(c.x, 1.9);
  EXPECT_DOUBLE_EQ(c.y, 1.9);
  EXPECT_DOUBLE_EQ(c.z, 0.0);
}

TEST(Protein, TransformedAppliesRigidMotion) {
  const Protein p = make_toy();
  Transform t;
  t.trans = {1, 2, 3};
  const Protein q = p.transformed(t);
  EXPECT_EQ(q[0].ca, (Vec3{1, 2, 3}));
  // original untouched
  EXPECT_EQ(p[0].ca, (Vec3{0, 0, 0}));
  // sequence and numbering preserved
  EXPECT_EQ(q.sequence(), p.sequence());
  EXPECT_EQ(q[3].seq, 4);
}

TEST(Protein, ApplyPreservesInternalDistances) {
  Protein p = make_toy();
  const double d01 = distance(p[0].ca, p[1].ca);
  Rng rng(11);
  p.apply(random_transform(rng));
  EXPECT_NEAR(distance(p[0].ca, p[1].ca), d01, 1e-9);
}

TEST(Protein, WireSizeMatchesSerializedSize) {
  const Protein p = make_toy();
  EXPECT_EQ(p.wire_size(), serialize(p).size());
  Rng rng(3);
  const Protein big = make_protein("big", 211, rng);
  EXPECT_EQ(big.wire_size(), serialize(big).size());
}

TEST(ThreeToOne, StandardResidues) {
  EXPECT_EQ(three_to_one("ALA"), 'A');
  EXPECT_EQ(three_to_one("TRP"), 'W');
  EXPECT_EQ(three_to_one("GLY"), 'G');
  EXPECT_EQ(three_to_one("MSE"), 'M');  // selenomethionine maps to M
  EXPECT_EQ(three_to_one("FOO"), 'X');
}

TEST(OneToThree, RoundTripsCanonical) {
  for (char c : std::string("ACDEFGHIKLMNPQRSTVWY"))
    EXPECT_EQ(three_to_one(std::string(one_to_three(c))), c) << c;
  EXPECT_EQ(one_to_three('X'), "UNK");
  // 'M' must map to MET, not MSE, despite both appearing in the table.
  EXPECT_EQ(one_to_three('M'), "MET");
}

TEST(RmsdNoSuperposition, ZeroForIdentical) {
  const Protein p = make_toy();
  EXPECT_DOUBLE_EQ(rmsd_no_superposition(p.ca_coords(), p.ca_coords()), 0.0);
}

TEST(RmsdNoSuperposition, KnownOffset) {
  const std::vector<Vec3> a{{0, 0, 0}, {1, 0, 0}};
  const std::vector<Vec3> b{{0, 0, 3}, {1, 0, 3}};
  EXPECT_DOUBLE_EQ(rmsd_no_superposition(a, b), 3.0);
}

TEST(RmsdNoSuperposition, RejectsMismatch) {
  const std::vector<Vec3> a{{0, 0, 0}};
  const std::vector<Vec3> b{{0, 0, 0}, {1, 1, 1}};
  EXPECT_THROW(rmsd_no_superposition(a, b), rck::bio::BioError);
  EXPECT_THROW(rmsd_no_superposition({}, {}), rck::bio::BioError);
}

}  // namespace
}  // namespace rck::bio
