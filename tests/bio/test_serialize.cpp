#include "rck/bio/serialize.hpp"

#include <gtest/gtest.h>

#include "rck/bio/synthetic.hpp"

namespace rck::bio {
namespace {

TEST(Wire, ScalarRoundTrip) {
  WireWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.i32(-12345);
  w.u64(0x0123456789ABCDEFull);
  w.f64(3.14159265358979);
  w.str("hello");
  WireReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.i32(), -12345);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159265358979);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(Wire, LittleEndianLayout) {
  WireWriter w;
  w.u32(0x01020304);
  const Bytes& b = w.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(std::to_integer<int>(b[0]), 0x04);
  EXPECT_EQ(std::to_integer<int>(b[3]), 0x01);
}

TEST(Wire, TruncationThrows) {
  WireWriter w;
  w.u32(7);
  WireReader r(w.bytes());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_THROW(r.u8(), WireError);
}

TEST(Wire, TruncatedStringThrows) {
  WireWriter w;
  w.u32(100);  // claims 100 bytes follow; none do
  WireReader r(w.bytes());
  EXPECT_THROW(r.str(), WireError);
}

TEST(Wire, RawAndRest) {
  WireWriter w;
  w.u8(1);
  w.u8(2);
  w.u8(3);
  WireReader r(w.bytes());
  const Bytes first = r.raw(1);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(std::to_integer<int>(first[0]), 1);
  const Bytes rest = r.rest();
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(std::to_integer<int>(rest[1]), 3);
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.raw(1), WireError);
}

TEST(Wire, OwningReaderOutlivesTemporary) {
  // The owning constructor must keep the buffer alive; this is the pattern
  // used all over the message-passing code: WireReader r(comm.recv(...)).
  WireWriter w;
  w.str("payload");
  WireReader r(Bytes(w.bytes()));  // temporary moved in
  EXPECT_EQ(r.str(), "payload");
}

TEST(Wire, EmptyString) {
  WireWriter w;
  w.str("");
  WireReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

TEST(ProteinSerialize, RoundTripExact) {
  Rng rng(5);
  const Protein p = make_protein("ser/test_1", 97, rng);
  const Bytes raw = serialize(p);
  const Protein q = deserialize_protein(raw);
  EXPECT_EQ(p, q);  // bitwise-identical coordinates expected
}

TEST(ProteinSerialize, EmptyNameRoundTrip) {
  const Protein p("", {{'A', 1, {1, 2, 3}}});
  EXPECT_EQ(deserialize_protein(serialize(p)), p);
}

TEST(ProteinSerialize, TruncatedPayloadThrows) {
  Rng rng(6);
  const Protein p = make_protein("t", 20, rng);
  Bytes raw = serialize(p);
  raw.resize(raw.size() - 5);
  EXPECT_THROW(deserialize_protein(raw), WireError);
}

TEST(ProteinSerialize, SizeIsPredictable) {
  Rng rng(7);
  for (int len : {5, 60, 333}) {
    const Protein p = make_protein("sz", len, rng);
    EXPECT_EQ(serialize(p).size(), p.wire_size());
  }
}

}  // namespace
}  // namespace rck::bio
