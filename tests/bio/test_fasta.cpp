#include "rck/bio/fasta.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "rck/bio/synthetic.hpp"

namespace rck::bio {
namespace {

TEST(Fasta, ParseBasic) {
  const auto records = parse_fasta(">p1 first protein\nACDEF\nGHIKL\n>p2\nMNPQR\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].id, "p1");
  EXPECT_EQ(records[0].description, "first protein");
  EXPECT_EQ(records[0].sequence, "ACDEFGHIKL");
  EXPECT_EQ(records[1].id, "p2");
  EXPECT_TRUE(records[1].description.empty());
  EXPECT_EQ(records[1].sequence, "MNPQR");
}

TEST(Fasta, UppercasesAndIgnoresWhitespace) {
  const auto records = parse_fasta(">x\nac df\n  ghi\r\n");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].sequence, "ACDFGHI");
}

TEST(Fasta, SequenceBeforeHeaderThrows) {
  EXPECT_THROW(parse_fasta("ACDEF\n>p1\nGHI\n"), std::runtime_error);
}

TEST(Fasta, EmptyInputAndEmptyRecords) {
  EXPECT_TRUE(parse_fasta("").empty());
  // A header with no sequence lines is dropped.
  EXPECT_TRUE(parse_fasta(">lonely header\n").empty());
}

TEST(Fasta, RoundTripWithWrapping) {
  std::vector<FastaRecord> records{{"id1", "desc", std::string(150, 'A')},
                                   {"id2", "", "MKV"}};
  const std::string text = to_fasta(records, 60);
  const auto parsed = parse_fasta(text);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].sequence, records[0].sequence);
  EXPECT_EQ(parsed[0].description, "desc");
  EXPECT_EQ(parsed[1].sequence, "MKV");
  // Wrapping: the 150-residue record spans 3 lines of <= 60.
  EXPECT_NE(text.find("\nAAAA"), std::string::npos);
}

TEST(Fasta, ProteinRecordMatchesSequence) {
  Rng rng(1);
  const Protein p = make_protein("prot/x", 42, rng);
  const FastaRecord r = to_fasta_record(p);
  EXPECT_EQ(r.id, "prot/x");
  EXPECT_EQ(r.sequence, p.sequence());
  EXPECT_NE(r.description.find("42"), std::string::npos);
}

TEST(Fasta, FileRoundTrip) {
  Rng rng(2);
  std::vector<Protein> chains;
  chains.push_back(make_protein("a", 30, rng));
  chains.push_back(make_protein("b", 50, rng));
  const auto path = std::filesystem::temp_directory_path() / "rck_fasta" / "x.fasta";
  write_fasta_file(chains, path);
  const auto records = parse_fasta_file(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].sequence, chains[0].sequence());
  EXPECT_EQ(records[1].sequence, chains[1].sequence());
  std::filesystem::remove_all(path.parent_path());
}

TEST(Fasta, MissingFileThrows) {
  EXPECT_THROW(parse_fasta_file("/definitely/not/here.fasta"), std::runtime_error);
}

}  // namespace
}  // namespace rck::bio
