// Robustness sweeps: every prefix truncation of valid payloads must raise a
// clean WireError (never crash, never return garbage), and the PDB parser
// must survive arbitrary line mutations.
#include <gtest/gtest.h>

#include "rck/bio/fasta.hpp"
#include "rck/bio/pdb_io.hpp"
#include "rck/bio/serialize.hpp"
#include "rck/bio/synthetic.hpp"
#include "rck/rckalign/codec.hpp"
#include "rck/rckskel/job.hpp"

namespace rck::bio {
namespace {

TEST(Fuzz, EveryProteinPayloadTruncationThrowsCleanly) {
  Rng rng(1);
  const Protein p = make_protein("fuzz", 25, rng);
  const Bytes full = serialize(p);
  const Protein ok = deserialize_protein(full);
  EXPECT_EQ(ok, p);
  for (std::size_t len = 0; len < full.size(); ++len) {
    Bytes cut(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)deserialize_protein(cut), WireError) << "prefix " << len;
  }
}

TEST(Fuzz, EveryPairJobTruncationThrowsCleanly) {
  Rng rng(2);
  const Protein a = make_protein("a", 12, rng);
  const Protein b = make_protein("b", 15, rng);
  const Bytes full = rckalign::encode_pair_job(1, 2, rckalign::Method::TmAlign, a, b);
  for (std::size_t len = 0; len < full.size(); ++len) {
    Bytes cut(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)rckalign::decode_pair_job(std::move(cut)), WireError)
        << "prefix " << len;
  }
}

TEST(Fuzz, EveryOutcomeTruncationThrowsCleanly) {
  rckalign::PairOutcome o;
  o.i = 3;
  o.j = 9;
  o.tm_norm_a = 0.7;
  const Bytes full = rckalign::encode_outcome(o);
  for (std::size_t len = 0; len < full.size(); ++len) {
    Bytes cut(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)rckalign::decode_outcome(std::move(cut)), WireError);
  }
}

TEST(Fuzz, SkeletonMessageRandomBytesNeverCrash) {
  // Random byte blobs fed to the protocol decoder: either a clean throw or
  // a (syntactically) valid message — never UB.
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<std::size_t> len(0, 64);
  for (int trial = 0; trial < 500; ++trial) {
    Bytes blob(len(rng));
    for (std::byte& x : blob) x = static_cast<std::byte>(byte(rng));
    try {
      const rckskel::Message msg = rckskel::decode_message(std::move(blob));
      EXPECT_GE(static_cast<int>(msg.type), 1);
      EXPECT_LE(static_cast<int>(msg.type), 4);
    } catch (const WireError&) {
      // fine
    }
  }
}

TEST(Fuzz, PdbParserSurvivesLineMutations) {
  Rng rng(4);
  const Protein p = make_protein("pdb", 20, rng);
  const std::string text = to_pdb(p);
  std::mt19937_64 mrng(5);
  std::uniform_int_distribution<std::size_t> pos(0, text.size() - 1);
  std::uniform_int_distribution<int> ch(32, 126);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = text;
    // Mutate up to 4 characters.
    for (int m = 0; m < 4; ++m)
      mutated[pos(mrng)] = static_cast<char>(ch(mrng));
    try {
      const Protein q = parse_pdb(mutated, "mut");
      EXPECT_LE(q.size(), p.size() + 1);  // can't invent many residues
    } catch (const PdbError&) {
      // fine: malformed input detected
    }
  }
}

TEST(Fuzz, PdbParserSurvivesTruncations) {
  Rng rng(6);
  const Protein p = make_protein("pdb", 15, rng);
  const std::string text = to_pdb(p);
  for (std::size_t len = 0; len <= text.size(); len += 7) {
    try {
      (void)parse_pdb(text.substr(0, len), "cut");
    } catch (const PdbError&) {
      // fine
    }
  }
}

TEST(Fuzz, FastaRandomTextNeverCrashes) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int> ch(9, 126);
  std::uniform_int_distribution<std::size_t> len(0, 200);
  for (int trial = 0; trial < 300; ++trial) {
    std::string text(len(rng), ' ');
    for (char& c : text) c = static_cast<char>(ch(rng));
    try {
      (void)parse_fasta(text);
    } catch (const std::runtime_error&) {
      // fine
    }
  }
}

}  // namespace
}  // namespace rck::bio
