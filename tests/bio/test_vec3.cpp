#include "rck/bio/vec3.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

namespace rck::bio {
namespace {

TEST(Vec3, ArithmeticBasics) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, -5, 6};
  EXPECT_EQ(a + b, (Vec3{5, -3, 9}));
  EXPECT_EQ(a - b, (Vec3{-3, 7, -3}));
  EXPECT_EQ(a * 2.0, (Vec3{2, 4, 6}));
  EXPECT_EQ(2.0 * a, (Vec3{2, 4, 6}));
  EXPECT_EQ(a / 2.0, (Vec3{0.5, 1, 1.5}));
  EXPECT_EQ(-a, (Vec3{-1, -2, -3}));
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v{1, 1, 1};
  v += {1, 2, 3};
  EXPECT_EQ(v, (Vec3{2, 3, 4}));
  v -= {1, 1, 1};
  EXPECT_EQ(v, (Vec3{1, 2, 3}));
  v *= 3.0;
  EXPECT_EQ(v, (Vec3{3, 6, 9}));
  v /= 3.0;
  EXPECT_EQ(v, (Vec3{1, 2, 3}));
}

TEST(Vec3, DotAndCross) {
  EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_EQ(cross({1, 0, 0}, {0, 1, 0}), (Vec3{0, 0, 1}));
  EXPECT_EQ(cross({0, 1, 0}, {1, 0, 0}), (Vec3{0, 0, -1}));
  // Cross product is orthogonal to both inputs.
  const Vec3 a{1.5, -2.0, 0.7};
  const Vec3 b{-0.3, 4.0, 2.2};
  const Vec3 c = cross(a, b);
  EXPECT_NEAR(dot(c, a), 0.0, 1e-12);
  EXPECT_NEAR(dot(c, b), 0.0, 1e-12);
}

TEST(Vec3, NormsAndDistances) {
  EXPECT_DOUBLE_EQ(norm({3, 4, 0}), 5.0);
  EXPECT_DOUBLE_EQ(norm2({3, 4, 0}), 25.0);
  EXPECT_DOUBLE_EQ(distance({1, 1, 1}, {1, 1, 4}), 3.0);
  EXPECT_DOUBLE_EQ(distance2({0, 0, 0}, {1, 2, 2}), 9.0);
  const Vec3 u = normalized({10, 0, 0});
  EXPECT_DOUBLE_EQ(norm(u), 1.0);
}

TEST(Mat3, IdentityAndZero) {
  const Mat3 i = Mat3::identity();
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
  const Vec3 v{3, -2, 5};
  EXPECT_EQ(i * v, v);
  EXPECT_EQ(Mat3::zero() * v, (Vec3{0, 0, 0}));
}

TEST(Mat3, MultiplicationMatchesComposition) {
  const Mat3 rx = rotation_about_axis({1, 0, 0}, 0.3);
  const Mat3 ry = rotation_about_axis({0, 1, 0}, -0.8);
  const Vec3 v{1, 2, 3};
  const Vec3 once = rx * (ry * v);
  const Vec3 composed = (rx * ry) * v;
  EXPECT_NEAR(once.x, composed.x, 1e-12);
  EXPECT_NEAR(once.y, composed.y, 1e-12);
  EXPECT_NEAR(once.z, composed.z, 1e-12);
}

TEST(Mat3, TransposeAndDeterminant) {
  Mat3 m;
  m.m = {{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}}};
  const Mat3 t = transpose(m);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(t(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(determinant(m), -3.0);
  EXPECT_DOUBLE_EQ(determinant(Mat3::identity()), 1.0);
}

TEST(Mat3, RotationIsProper) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> u(-1, 1);
  for (int k = 0; k < 50; ++k) {
    Vec3 axis{u(rng), u(rng), u(rng)};
    if (norm(axis) < 1e-3) continue;
    axis = normalized(axis);
    const Mat3 r = rotation_about_axis(axis, u(rng) * std::numbers::pi);
    EXPECT_TRUE(is_rotation(r, 1e-9));
  }
}

TEST(Mat3, RotationPreservesAxis) {
  const Vec3 axis = normalized(Vec3{1, 2, 3});
  const Mat3 r = rotation_about_axis(axis, 1.1);
  const Vec3 rotated = r * axis;
  EXPECT_NEAR(rotated.x, axis.x, 1e-12);
  EXPECT_NEAR(rotated.y, axis.y, 1e-12);
  EXPECT_NEAR(rotated.z, axis.z, 1e-12);
}

TEST(Mat3, RotationByKnownAngle) {
  const Mat3 r = rotation_about_axis({0, 0, 1}, std::numbers::pi / 2.0);
  const Vec3 v = r * Vec3{1, 0, 0};
  EXPECT_NEAR(v.x, 0.0, 1e-12);
  EXPECT_NEAR(v.y, 1.0, 1e-12);
  EXPECT_NEAR(v.z, 0.0, 1e-12);
}

TEST(Transform, ApplyAndCompose) {
  Transform t1;
  t1.rot = rotation_about_axis({0, 0, 1}, std::numbers::pi / 2.0);
  t1.trans = {1, 0, 0};
  Transform t2;
  t2.rot = rotation_about_axis({1, 0, 0}, std::numbers::pi);
  t2.trans = {0, 2, 0};
  const Vec3 p{1, 1, 1};
  const Vec3 nested = t1.apply(t2.apply(p));
  const Vec3 composed = (t1 * t2).apply(p);
  EXPECT_NEAR(nested.x, composed.x, 1e-12);
  EXPECT_NEAR(nested.y, composed.y, 1e-12);
  EXPECT_NEAR(nested.z, composed.z, 1e-12);
}

TEST(Transform, InverseRoundTrips) {
  Transform t;
  t.rot = rotation_about_axis(normalized(Vec3{2, -1, 0.5}), 0.77);
  t.trans = {4, -3, 9};
  const Transform inv = inverse(t);
  const Vec3 p{0.3, -1.2, 8.0};
  const Vec3 round = inv.apply(t.apply(p));
  EXPECT_NEAR(round.x, p.x, 1e-12);
  EXPECT_NEAR(round.y, p.y, 1e-12);
  EXPECT_NEAR(round.z, p.z, 1e-12);
}

TEST(Mat3, IsRotationRejectsScaling) {
  Mat3 m = Mat3::identity();
  m(0, 0) = 2.0;
  EXPECT_FALSE(is_rotation(m));
}

TEST(Mat3, IsRotationRejectsReflection) {
  Mat3 m = Mat3::identity();
  m(2, 2) = -1.0;  // orthonormal but det = -1
  EXPECT_FALSE(is_rotation(m));
}

}  // namespace
}  // namespace rck::bio
