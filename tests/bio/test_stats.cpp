#include "rck/bio/stats.hpp"

#include <gtest/gtest.h>

#include "rck/bio/dataset.hpp"
#include "rck/bio/synthetic.hpp"

namespace rck::bio {
namespace {

std::vector<Protein> chains_of_lengths(std::initializer_list<int> lengths) {
  std::vector<Protein> out;
  Rng rng(1);
  int k = 0;
  for (int len : lengths) out.push_back(make_protein("c" + std::to_string(k++), len, rng));
  return out;
}

TEST(DatasetStats, EmptyInput) {
  const DatasetStats s = dataset_stats({});
  EXPECT_EQ(s.chains, 0u);
  EXPECT_EQ(s.pairs, 0u);
  EXPECT_EQ(s.total_residues, 0u);
}

TEST(DatasetStats, KnownValues) {
  const auto chains = chains_of_lengths({10, 20, 30});
  const DatasetStats s = dataset_stats(chains);
  EXPECT_EQ(s.chains, 3u);
  EXPECT_EQ(s.pairs, 3u);
  EXPECT_EQ(s.min_length, 10u);
  EXPECT_EQ(s.max_length, 30u);
  EXPECT_DOUBLE_EQ(s.mean_length, 20.0);
  EXPECT_DOUBLE_EQ(s.median_length, 20.0);
  EXPECT_EQ(s.total_residues, 60u);
  // 10*20 + 10*30 + 20*30 = 1100
  EXPECT_EQ(s.pair_cost_proxy, 1100u);
}

TEST(DatasetStats, EvenCountMedian) {
  const auto chains = chains_of_lengths({10, 20, 30, 100});
  EXPECT_DOUBLE_EQ(dataset_stats(chains).median_length, 25.0);
}

TEST(LengthHistogram, PartitionsAllChains) {
  const auto chains = build_dataset(ck34_spec());
  const auto hist = length_histogram(chains, 10);
  ASSERT_EQ(hist.size(), 10u);
  std::size_t total = 0;
  for (std::size_t b : hist) total += b;
  EXPECT_EQ(total, chains.size());
}

TEST(LengthHistogram, SingleLengthCollapses) {
  const auto chains = chains_of_lengths({50, 50, 50});
  const auto hist = length_histogram(chains, 10);
  ASSERT_EQ(hist.size(), 1u);
  EXPECT_EQ(hist[0], 3u);
}

TEST(LengthHistogram, EdgeCases) {
  EXPECT_TRUE(length_histogram({}, 10).empty());
  const auto chains = chains_of_lengths({10, 20});
  EXPECT_TRUE(length_histogram(chains, 0).empty());
}

TEST(FormatReport, ContainsKeyNumbers) {
  const auto chains = build_dataset(tiny_spec());
  const std::string report = format_dataset_report("tiny", chains);
  EXPECT_NE(report.find("8 chains"), std::string::npos);
  EXPECT_NE(report.find("28 all-vs-all pairs"), std::string::npos);
  EXPECT_NE(report.find("histogram"), std::string::npos);
}

TEST(DatasetStats, Ck34VsRs119Workload) {
  // The calibration hinges on the RS119:CK34 pair-cost ratio; pin it here
  // so dataset edits that would silently break Table III get caught.
  const auto ck = build_dataset(ck34_spec());
  const auto rs = build_dataset(rs119_spec());
  const double ratio = static_cast<double>(dataset_stats(rs).pair_cost_proxy) /
                       static_cast<double>(dataset_stats(ck).pair_cost_proxy);
  EXPECT_GT(ratio, 10.0);
  EXPECT_LT(ratio, 16.0);
}

}  // namespace
}  // namespace rck::bio
