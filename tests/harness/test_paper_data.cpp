#include "rck/harness/paper_data.hpp"

#include <gtest/gtest.h>

namespace rck::harness {
namespace {

TEST(PaperData, CoreCountsAreOddSweep) {
  const auto counts = paper_core_counts();
  ASSERT_EQ(counts.size(), 24u);
  EXPECT_EQ(counts.front(), 1);
  EXPECT_EQ(counts.back(), 47);
  for (std::size_t k = 1; k < counts.size(); ++k)
    EXPECT_EQ(counts[k] - counts[k - 1], 2);
}

TEST(PaperData, Table2Monotone) {
  // Published times decrease (weakly) with core count for rckAlign; the
  // distributed column has two published non-monotone points (33, 35).
  const auto t2 = paper_table2();
  ASSERT_EQ(t2.size(), 24u);
  for (std::size_t k = 1; k < t2.size(); ++k)
    EXPECT_LE(t2[k].rckalign_s, t2[k - 1].rckalign_s);
  EXPECT_DOUBLE_EQ(t2.front().rckalign_s, 2027.0);
  EXPECT_DOUBLE_EQ(t2.back().distributed_s, 120.0);
}

TEST(PaperData, Table2RckAlignAlwaysWins) {
  for (const Table2Row& r : paper_table2())
    EXPECT_LT(r.rckalign_s, r.distributed_s) << r.slave_cores;
}

TEST(PaperData, Table3Ratios) {
  // AMD vs P54C per-core advantage reported by the paper.
  EXPECT_NEAR(kPaperTable3.p54c_ck34 / kPaperTable3.amd_ck34, 5.0, 0.01);
  EXPECT_NEAR(kPaperTable3.p54c_rs119 / kPaperTable3.amd_rs119, 3.92, 0.01);
}

TEST(PaperData, Table4SpeedupConsistentWithTimes) {
  // speedup = time(1) / time(n) must hold within rounding for both datasets.
  const auto t4 = paper_table4();
  const double ck_base = t4.front().ck34_time_s;
  const double rs_base = t4.front().rs119_time_s;
  for (const Table4Row& r : t4) {
    EXPECT_NEAR(r.ck34_speedup, ck_base / r.ck34_time_s, 0.35) << r.slave_cores;
    EXPECT_NEAR(r.rs119_speedup, rs_base / r.rs119_time_s, 0.35) << r.slave_cores;
  }
}

TEST(PaperData, Table4NearLinear) {
  // The headline: speedup grows almost linearly; at 47 slaves CK34 reaches
  // ~36x and RS119 ~45x.
  const auto t4 = paper_table4();
  EXPECT_NEAR(t4.back().ck34_speedup, 36.17, 1e-9);
  EXPECT_NEAR(t4.back().rs119_speedup, 44.78, 1e-9);
  // Larger dataset scales better at every point past 1 core.
  for (const Table4Row& r : t4) {
    if (r.slave_cores > 1) {
      EXPECT_GE(r.rs119_speedup, r.ck34_speedup);
    }
  }
}

TEST(PaperData, Table5MatchesHeadlines) {
  const auto t5 = paper_table5();
  ASSERT_EQ(t5.size(), 2u);
  // 11x over AMD and ~44x over P54C on RS119.
  EXPECT_NEAR(t5[1].tmalign_amd_s / t5[1].rckalign_scc_s, kPaperSpeedupVsAmd, 0.5);
  EXPECT_NEAR(t5[1].tmalign_p54c_s / t5[1].rckalign_scc_s, kPaperSpeedupVsP54c, 0.5);
}

TEST(PaperData, CrossTableConsistency) {
  // Table II's rckAlign column equals Table IV's CK34 times; Table V's
  // rckAlign values equal the 47-core entries.
  const auto t2 = paper_table2();
  const auto t4 = paper_table4();
  for (std::size_t k = 0; k < t2.size(); ++k) {
    EXPECT_EQ(t2[k].slave_cores, t4[k].slave_cores);
    // Table II row 1 is 2027 vs Table IV 2029 (paper rounding); allow 2 s.
    EXPECT_NEAR(t2[k].rckalign_s, t4[k].ck34_time_s, 2.0);
  }
  EXPECT_DOUBLE_EQ(paper_table5()[0].rckalign_scc_s, t2.back().rckalign_s);
  EXPECT_DOUBLE_EQ(paper_table5()[1].rckalign_scc_s, t4.back().rs119_time_s);
}

}  // namespace
}  // namespace rck::harness
