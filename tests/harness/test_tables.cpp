#include "rck/harness/tables.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace rck::harness {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t("demo");
  t.set_columns({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.5"), std::string::npos);
}

TEST(TextTable, RejectsWidthMismatch) {
  TextTable t("x");
  t.set_columns({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), rck::harness::TableError);
}

TEST(TextTable, CsvOutput) {
  TextTable t("csv");
  t.set_columns({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n3,4\n");
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Format, Seconds) {
  EXPECT_EQ(fmt_seconds(2029.4), "2029");
  EXPECT_EQ(fmt_seconds(56.34), "56.3");
  EXPECT_EQ(fmt_seconds(0.5), "0.500");
  EXPECT_EQ(fmt_seconds(0.00123), "0.00123");
}

TEST(Format, Speedup) { EXPECT_EQ(fmt_speedup(36.171), "36.17x"); }

TEST(Format, RelErr) {
  EXPECT_EQ(fmt_rel_err(110, 100), "+10.0%");
  EXPECT_EQ(fmt_rel_err(95, 100), "-5.0%");
  EXPECT_EQ(fmt_rel_err(5, 0), "n/a");
}

TEST(WriteFile, CreatesDirectoriesAndWrites) {
  const auto dir = std::filesystem::temp_directory_path() / "rck_tables_test";
  const auto path = dir / "sub" / "x.csv";
  write_file(path.string(), "hello\n");
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "hello");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rck::harness
