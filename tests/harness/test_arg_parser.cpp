// harness::ArgParser: registration, parsing forms, typo suggestions, and
// the standard observability flags.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rck/harness/arg_parser.hpp"

namespace {

using namespace rck;

std::vector<std::string> args(std::initializer_list<const char*> xs) {
  return {xs.begin(), xs.end()};
}

TEST(ArgParser, ParsesEveryKindAndBothValueForms) {
  bool sw = false;
  int n = 0;
  double x = 0.0;
  std::string s, choice = "tiny";
  static constexpr std::string_view kChoices[] = {"tiny", "ck34"};

  harness::ArgParser cli("t");
  cli.flag("switch", &sw, "a switch")
      .option("n", &n, "an int")
      .option("x", &x, "a double")
      .option("s", &s, "a string")
      .choice("dataset", &choice, kChoices, "a choice");

  EXPECT_TRUE(cli.parse(args(
      {"--switch", "--n", "42", "--x=2.5", "--s", "hello", "--dataset=ck34"})));
  EXPECT_TRUE(sw);
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(x, 2.5);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(choice, "ck34");
}

TEST(ArgParser, UnknownFlagSuggestsNearestName) {
  int slaves = 0;
  harness::ArgParser cli("t");
  cli.option("slaves", &slaves, "slave cores");
  try {
    cli.parse(args({"--slave", "3"}));
    FAIL() << "expected ArgError";
  } catch (const harness::ArgError& e) {
    EXPECT_EQ(e.code(), "rck.cli.args");
    EXPECT_NE(std::string(e.what()).find("did you mean '--slaves'"),
              std::string::npos)
        << e.what();
  }
  // A completely different word is not "a typo"; no absurd suggestion.
  try {
    cli.parse(args({"--frobnicate"}));
    FAIL() << "expected ArgError";
  } catch (const harness::ArgError& e) {
    EXPECT_EQ(std::string(e.what()).find("did you mean"), std::string::npos)
        << e.what();
  }
}

TEST(ArgParser, RejectsMalformedValues) {
  int n = 0;
  bool sw = false;
  harness::ArgParser cli("t");
  cli.option("n", &n, "an int").flag("sw", &sw, "a switch");
  EXPECT_THROW(cli.parse(args({"--n", "abc"})), harness::ArgError);
  EXPECT_THROW(cli.parse(args({"--n", "1x"})), harness::ArgError);
  EXPECT_THROW(cli.parse(args({"--n"})), harness::ArgError);   // missing value
  EXPECT_THROW(cli.parse(args({"--sw=1"})), harness::ArgError);  // switch w/ value
}

TEST(ArgParser, ChoiceRejectsValuesOutsideTheSet) {
  std::string choice = "tiny";
  static constexpr std::string_view kChoices[] = {"tiny", "ck34"};
  harness::ArgParser cli("t");
  cli.choice("dataset", &choice, kChoices, "a choice");
  try {
    cli.parse(args({"--dataset", "huge"}));
    FAIL() << "expected ArgError";
  } catch (const harness::ArgError& e) {
    EXPECT_NE(std::string(e.what()).find("tiny, ck34"), std::string::npos);
  }
}

TEST(ArgParser, HelpReturnsFalseAndListsFlags) {
  int n = 0;
  harness::ArgParser cli("tool", "Does a thing.");
  cli.option("n", &n, "an int");
  EXPECT_FALSE(cli.parse(args({"--help"})));
  const std::string u = cli.usage();
  EXPECT_NE(u.find("usage: tool"), std::string::npos);
  EXPECT_NE(u.find("--n N"), std::string::npos);
  EXPECT_NE(u.find("an int"), std::string::npos);
  EXPECT_NE(u.find("--help"), std::string::npos);
}

TEST(ArgParser, AliasResolvesToTargetInBothValueForms) {
  int slaves = 0;
  harness::ArgParser cli("t");
  cli.option("slaves", &slaves, "slave cores").alias("slave-count", "slaves");
  EXPECT_TRUE(cli.parse(args({"--slave-count", "7"})));
  EXPECT_EQ(slaves, 7);
  EXPECT_TRUE(cli.parse(args({"--slave-count=9"})));
  EXPECT_EQ(slaves, 9);
  // The canonical spelling keeps working.
  EXPECT_TRUE(cli.parse(args({"--slaves", "3"})));
  EXPECT_EQ(slaves, 3);
}

TEST(ArgParser, AliasFeedsTypoSuggestions) {
  int slaves = 0;
  harness::ArgParser cli("t");
  cli.option("slaves", &slaves, "slave cores").alias("slave-count", "slaves");
  try {
    cli.parse(args({"--slave-cont", "3"}));
    FAIL() << "expected ArgError";
  } catch (const harness::ArgError& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean '--slave-count'"),
              std::string::npos)
        << e.what();
  }
}

TEST(ArgParser, AliasShowsUpInUsageAndRejectsUnknownTarget) {
  int slaves = 0;
  harness::ArgParser cli("t");
  cli.option("slaves", &slaves, "slave cores").alias("slave-count", "slaves");
  EXPECT_NE(cli.usage().find("(alias: --slave-count)"), std::string::npos)
      << cli.usage();
  EXPECT_THROW(cli.alias("nope", "missing"), harness::ArgError);
}

TEST(ArgParser, ObsFlagsRouteIntoConfig) {
  obs::Config cfg;
  harness::ArgParser cli("t");
  cli.obs_flags(&cfg);
  EXPECT_FALSE(cfg.active());
  EXPECT_TRUE(cli.parse(
      args({"--trace-out", "t.json", "--metrics-out=m.json", "--collect"})));
  EXPECT_EQ(cfg.trace_path, "t.json");
  EXPECT_EQ(cfg.metrics_path, "m.json");
  EXPECT_TRUE(cfg.enable);
  EXPECT_TRUE(cfg.active());
}

TEST(ArgParser, ArgcArgvEntryPointSkipsProgramName) {
  int n = 0;
  harness::ArgParser cli("t");
  cli.option("n", &n, "an int");
  const char* argv[] = {"prog", "--n", "9"};
  EXPECT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(n, 9);
}

}  // namespace
