// rck::chk::lint — the tokenizer-based invariant linter behind tools/rck_lint.
#include "rck/chk/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace rck::chk::lint {
namespace {

bool has_rule(const std::vector<Finding>& fs, std::string_view rule) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

bool rules_contain(std::string_view path, std::string_view rule) {
  const std::vector<std::string> rs = rules_for(path);
  return std::find(rs.begin(), rs.end(), rule) != rs.end();
}

TEST(LintStrip, BlanksCommentsAndLiteralsKeepingLines) {
  const std::string in =
      "int a; // rand() here\n"
      "const char* s = \"mt19937\";\n"
      "/* system_clock\n   spans lines */ int b;\n";
  const std::string out = strip(in);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
            std::count(in.begin(), in.end(), '\n'));
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(out.find("mt19937"), std::string::npos);
  EXPECT_EQ(out.find("system_clock"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
}

TEST(LintStrip, RawStringsAndDigitSeparators) {
  const std::string in =
      "auto r = R\"(rand inside raw)\";\n"
      "int big = 1'000'000; int after = rand;\n";
  const std::string out = strip(in);
  EXPECT_EQ(out.find("rand inside raw"), std::string::npos);
  EXPECT_NE(out.find("1'000'000"), std::string::npos);
  EXPECT_NE(out.find("rand;"), std::string::npos);  // real code survives
}

TEST(LintRules, ScopingFollowsTheTree) {
  EXPECT_TRUE(rules_contain("src/scc/runtime.cpp", "determinism"));
  EXPECT_TRUE(rules_contain("src/chk/checker.cpp", "determinism"));
  EXPECT_FALSE(rules_contain("src/bio/protein.cpp", "determinism"));
  EXPECT_TRUE(rules_contain("src/bio/protein.cpp", "throw-taxonomy"));
  EXPECT_TRUE(rules_contain("src/core/kabsch.cpp", "hot-path-alloc"));
  EXPECT_FALSE(rules_contain("src/core/tmalign.cpp", "hot-path-alloc"));
  // The round-2 batch kernel and the batch-pulling slave loop inherit the
  // allocation-freedom contract.
  EXPECT_TRUE(rules_contain("src/core/batch.cpp", "hot-path-alloc"));
  EXPECT_TRUE(rules_contain("src/rckskel/batch_slave.cpp", "hot-path-alloc"));
  EXPECT_TRUE(rules_for("tests/chk/test_lint.cpp").empty());   // not covered
  EXPECT_TRUE(rules_for("src/scc/CMakeLists.txt").empty());    // not source
}

TEST(LintDeterminism, BansFireOnIdentifiersNotComments) {
  const auto dirty = lint_file("src/scc/x.cpp", "auto g = std::mt19937{7};\n");
  ASSERT_TRUE(has_rule(dirty, "determinism"));
  EXPECT_EQ(dirty.front().line, 1);

  const auto comment_only =
      lint_file("src/scc/x.cpp", "// seeded like mt19937 but deterministic\n");
  EXPECT_FALSE(has_rule(comment_only, "determinism"));
}

TEST(LintDeterminism, WallClockCallsButNotTimeMembers) {
  EXPECT_TRUE(has_rule(lint_file("src/noc/x.cpp", "auto t = std::time(nullptr);\n"),
                       "determinism"));
  EXPECT_TRUE(has_rule(lint_file("src/noc/x.cpp", "long t = time(NULL);\n"),
                       "determinism"));
  // A member/method merely named time() is the simulator's own clock.
  EXPECT_FALSE(has_rule(
      lint_file("src/noc/x.cpp", "const SimTime t = model.time(cycles);\n"),
      "determinism"));
  EXPECT_FALSE(has_rule(
      lint_file("src/noc/x.cpp", "noc::SimTime time(std::uint64_t c);\n"),
      "determinism"));
}

TEST(LintDeterminism, WaiverSuppressesSameAndNextLine) {
  const std::string waived =
      "// rck-lint: allow(determinism)\n"
      "auto g = std::mt19937{7};\n";
  EXPECT_TRUE(lint_file("src/scc/x.cpp", waived).empty());

  const std::string inline_waiver =
      "auto g = std::mt19937{7};  // rck-lint: allow(determinism)\n";
  EXPECT_TRUE(lint_file("src/scc/x.cpp", inline_waiver).empty());
}

TEST(LintThrowTaxonomy, RequiresErrorSuffixedClasses) {
  EXPECT_TRUE(has_rule(
      lint_file("src/bio/x.cpp", "throw std::runtime_error(\"x\");\n"),
      "throw-taxonomy"));
  EXPECT_FALSE(has_rule(
      lint_file("src/bio/x.cpp", "throw ParseError(\"bad pdb\");\n"),
      "throw-taxonomy"));
  EXPECT_FALSE(has_rule(
      lint_file("src/bio/x.cpp", "throw rck::chk::ChkIoError(msg);\n"),
      "throw-taxonomy"));
  EXPECT_FALSE(has_rule(lint_file("src/bio/x.cpp", "catch (...) { throw; }\n"),
                        "throw-taxonomy"));
}

TEST(LintErrorCodes, RegisteredCodesPassTyposFire) {
  EXPECT_TRUE(rules_contain("src/rckskel/skeletons.cpp", "error-codes"));
  // The PR 6 checkpoint-codec family is a minted code.
  EXPECT_FALSE(has_rule(
      lint_file("src/rckskel/x.hpp",
                ": Error(\"rck.skel.checkpoint\", message) {}\n"),
      "error-codes"));
  // So is the batched-grant protocol family.
  EXPECT_FALSE(has_rule(
      lint_file("src/rckskel/x.hpp",
                ": Error(\"rck.skel.batch\", message) {}\n"),
      "error-codes"));
  const auto typo = lint_file(
      "src/rckskel/x.hpp", ": Error(\"rck.skel.chekpoint\", message) {}\n");
  ASSERT_TRUE(has_rule(typo, "error-codes"));
  EXPECT_EQ(typo.front().line, 1);
}

TEST(LintErrorCodes, EmbeddedCodesCommentsAndWaivers) {
  // Codes embedded mid-literal (the chk JSON emitter) are still validated.
  EXPECT_FALSE(has_rule(
      lint_file("src/chk/x.cpp",
                "out += \"{\\\"code\\\": \\\"rck.chk.race\\\", \\\"kind\\\": \";\n"),
      "error-codes"));
  EXPECT_TRUE(has_rule(
      lint_file("src/chk/x.cpp",
                "out += \"{\\\"code\\\": \\\"rck.chk.racy\\\"}\";\n"),
      "error-codes"));
  // Prose mentions in comments never fire; a family prefix alone is not a
  // code; waivers opt a line out for deliberately unregistered strings.
  EXPECT_FALSE(has_rule(
      lint_file("src/bio/x.cpp", "// the \"rck.bogus.family\" strawman\n"),
      "error-codes"));
  EXPECT_FALSE(has_rule(
      lint_file("src/bio/x.cpp", "log(\"rck.skel master failover\");\n"),
      "error-codes"));
  EXPECT_TRUE(
      lint_file("src/bio/x.cpp",
                "auto c = \"rck.new.family\";  // rck-lint: allow(error-codes)\n")
          .empty());
}

TEST(LintHotPath, AllocationBansOnlyInKernelFiles) {
  const std::string growing = "void f(std::vector<int>& v) { v.push_back(1); }\n";
  EXPECT_TRUE(has_rule(lint_file("src/core/kabsch.cpp", growing),
                       "hot-path-alloc"));
  EXPECT_FALSE(has_rule(lint_file("src/core/tmalign.cpp", growing),
                        "hot-path-alloc"));
  EXPECT_TRUE(has_rule(lint_file("src/core/simd_kernels.cpp",
                                 "auto* p = new double[9];\n"),
                       "hot-path-alloc"));
}

TEST(LintIncludes, LayoutObligations) {
  EXPECT_TRUE(has_rule(
      lint_file("src/scc/x.cpp", "#include \"../noc/network.hpp\"\n"),
      "include-hygiene"));
  EXPECT_TRUE(has_rule(lint_file("src/scc/x.cpp", "#include \"rck/rck.hpp\"\n"),
                       "include-hygiene"));
  // The umbrella's own implementation, the service layer above it, and
  // tools may include it.
  EXPECT_FALSE(has_rule(lint_file("src/rck/run.cpp", "#include \"rck/rck.hpp\"\n"),
                        "include-hygiene"));
  EXPECT_FALSE(has_rule(
      lint_file("src/service/service.cpp", "#include \"rck/rck.hpp\"\n"),
      "include-hygiene"));
  EXPECT_FALSE(has_rule(lint_file("tools/rck_lint.cpp", "#include \"rck/rck.hpp\"\n"),
                        "include-hygiene"));
  // Public rck/... paths and same-directory private headers are fine; angle
  // brackets carry no obligation.
  EXPECT_TRUE(lint_file("src/scc/x.cpp",
                        "#include \"rck/noc/network.hpp\"\n"
                        "#include \"pair_exec.hpp\"\n"
                        "#include <vector>\n")
                  .empty());
}

TEST(LintWaivers, MultiRuleAllowCoversEveryNamedRule) {
  // One marker may waive several rules: the include-hygiene hit on its own
  // line and the determinism hit on the next are both named, so the file is
  // clean.
  const std::string multi =
      "#include \"../rng.hpp\"  // rck-lint: allow(include-hygiene, "
      "determinism, layering)\n"
      "auto g = std::mt19937{7};\n";
  EXPECT_TRUE(lint_file("src/scc/x.cpp", multi).empty());

  // Spaces around the rule names are insignificant.
  const std::string spaced =
      "auto g = std::mt19937{7};  // rck-lint: allow( determinism , "
      "error-codes )\n";
  EXPECT_TRUE(lint_file("src/scc/x.cpp", spaced).empty());
}

TEST(LintWaivers, AllowWaivesOnlyTheNamedRules) {
  // allow(determinism) does not silence the include-hygiene finding that
  // shares the line.
  const std::string partial =
      "#include \"../rng.hpp\"  // rck-lint: allow(determinism)\n";
  const auto fs = lint_file("src/scc/x.cpp", partial);
  EXPECT_TRUE(has_rule(fs, "include-hygiene"));
  EXPECT_FALSE(has_rule(fs, "determinism"));
}

TEST(LintWaivers, ScopeIsSameAndNextLineOnly) {
  const std::string distant =
      "// rck-lint: allow(determinism)\n"
      "\n"
      "auto g = std::mt19937{7};\n";
  EXPECT_TRUE(has_rule(lint_file("src/scc/x.cpp", distant), "determinism"));
}

TEST(LintWaivers, AllowAllIsTheBlanketEscape) {
  const std::string blanket =
      "// rck-lint: allow(all)\n"
      "#include \"../rng.hpp\"\n";
  EXPECT_TRUE(lint_file("src/scc/x.cpp", blanket).empty());
}

TEST(LintLayering, EnforcesTheIncludeDag) {
  // bio/core are pure compute: the simulator and the skeletons are
  // invisible to them.
  EXPECT_TRUE(has_rule(
      lint_file("src/core/x.cpp", "#include \"rck/scc/runtime.hpp\"\n"),
      "layering"));
  EXPECT_TRUE(has_rule(
      lint_file("src/bio/x.cpp", "#include \"rck/rckskel/skeletons.hpp\"\n"),
      "layering"));
  EXPECT_TRUE(has_rule(
      lint_file("src/bio/x.cpp", "#include \"rck/noc/network.hpp\"\n"),
      "layering"));
  // Sim layers never reach up into the umbrella or the service layer.
  EXPECT_TRUE(has_rule(
      lint_file("src/scc/x.cpp", "#include \"rck/service/service.hpp\"\n"),
      "layering"));
  EXPECT_TRUE(has_rule(
      lint_file("src/rckskel/x.cpp", "#include \"rck/query.hpp\"\n"),
      "layering"));
  // Listed edges pass; so does the shared error taxonomy from everywhere.
  EXPECT_FALSE(has_rule(
      lint_file("src/scc/x.cpp", "#include \"rck/mc/mc.hpp\"\n"), "layering"));
  EXPECT_FALSE(has_rule(
      lint_file("src/core/x.cpp", "#include \"rck/bio/protein.hpp\"\n"),
      "layering"));
  EXPECT_FALSE(has_rule(
      lint_file("src/bio/x.cpp", "#include \"rck/error.hpp\"\n"), "layering"));
  // Own headers and same-directory private headers carry no edge at all.
  EXPECT_FALSE(has_rule(
      lint_file("src/scc/x.cpp", "#include \"rck/scc/timing.hpp\"\n"),
      "layering"));
  EXPECT_FALSE(has_rule(lint_file("src/scc/x.cpp", "#include \"detail.hpp\"\n"),
                        "layering"));
}

TEST(LintLayering, RegisteredExceptionIsFileScoped) {
  // scc::timing's stats reuse is registered for exactly that header...
  EXPECT_FALSE(has_rule(lint_file("src/scc/include/rck/scc/timing.hpp",
                                  "#include \"rck/core/stats.hpp\"\n"),
                        "layering"));
  // ...and nowhere else in scc.
  EXPECT_TRUE(has_rule(
      lint_file("src/scc/runtime.cpp", "#include \"rck/core/stats.hpp\"\n"),
      "layering"));
}

TEST(LintLayering, WaiversAndScopingApply) {
  EXPECT_FALSE(has_rule(
      lint_file("src/core/x.cpp",
                "#include \"rck/scc/runtime.hpp\"  // rck-lint: allow(layering)\n"),
      "layering"));
  // tools/ sit above the whole stack: no layering obligations.
  EXPECT_FALSE(rules_contain("tools/rck_mc.cpp", "layering"));
  EXPECT_TRUE(rules_contain("src/mc/mc.cpp", "layering"));
}

TEST(LintJson, StableShapeAndEscaping) {
  EXPECT_EQ(to_json({}), "[]\n");
  const std::vector<Finding> fs{
      {"src/scc/x.cpp", 3, "determinism", "banned \"clock\"\tuse"},
      {"src/bio/y.cpp", 7, "error-codes", "unregistered"},
  };
  const std::string j = to_json(fs);
  EXPECT_NE(j.find("\"rule\": \"determinism\""), std::string::npos);
  EXPECT_NE(j.find("\"path\": \"src/scc/x.cpp\""), std::string::npos);
  EXPECT_NE(j.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(j.find("\\\"clock\\\""), std::string::npos);  // quotes escaped
  EXPECT_NE(j.find("\\t"), std::string::npos);            // control escaped
  EXPECT_NE(j.find("\"line\": 7"), std::string::npos);
  // Two objects, one array.
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'), 2);
  EXPECT_EQ(j.front(), '[');
}

TEST(LintFindings, AreSortedByLineThenRule) {
  const std::string two =
      "#include \"../bad.hpp\"\n"
      "auto g = std::mt19937{7};\n";
  const auto fs = lint_file("src/scc/x.cpp", two);
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_EQ(fs[0].rule, "include-hygiene");
  EXPECT_EQ(fs[1].line, 2);
  EXPECT_EQ(fs[1].rule, "determinism");
}

}  // namespace
}  // namespace rck::chk::lint
