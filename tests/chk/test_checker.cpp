// rck::chk vector-clock engine: happens-before edges come ONLY from RCCE
// flag publish/consume and barriers; every MPB access is checked against
// the interval shadow map.
#include "rck/chk/chk.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace rck::chk {
namespace {

// 4 cores x 800 B MPB -> 200 B slices at 0/200/400/600.
Checker make(Config cfg = Config::on(), int nranks = 4,
             std::uint32_t mpb_bytes = 800) {
  return Checker(std::move(cfg), nranks, mpb_bytes);
}

TEST(Checker, SliceGeometry) {
  const Checker c = make();
  EXPECT_EQ(c.nranks(), 4);
  EXPECT_EQ(c.slice_len(), 200u);
  EXPECT_EQ(c.slice_lo(0), 0u);
  EXPECT_EQ(c.slice_lo(3), 600u);

  // The real chip: 48 cores sharing 8 KiB MPBs.
  const Checker scc = make(Config::on(), 48, 8192);
  EXPECT_EQ(scc.slice_len(), 8192u / 48u);
}

TEST(Checker, ConstructorRejectsDegenerateShapes) {
  EXPECT_THROW(Checker(Config::on(), 0, 800), ChkError);
  EXPECT_THROW(Checker(Config::on(), 4, 0), ChkError);
}

TEST(Checker, SiteInterningIsIdempotent) {
  Checker c = make();
  const SiteId a = c.site("rcce.send");
  const SiteId b = c.site("rcce.recv");
  EXPECT_NE(a, b);
  EXPECT_EQ(c.site("rcce.send"), a);
  EXPECT_EQ(c.site_name(a), "rcce.send");
  EXPECT_EQ(c.site_name(0), "?");  // SiteId 0 is the unknown site
}

TEST(Checker, CleanPublishConsumeCycle) {
  Checker c = make();
  const SiteId snd = c.site("send");
  const SiteId rcv = c.site("recv");
  // Core 0 writes its slice of core 1's MPB, publishes, core 1 consumes.
  c.mpb_write(0, 1, c.slice_lo(0), 64, 10, snd, 0, 1);
  c.flag_set(0, 0, 1, 11, snd);
  c.flag_test(1, 0, 1, /*observed_set=*/true, 20, rcv);
  c.mpb_read(1, 1, c.slice_lo(0), 64, 21, rcv, 0, 1);

  EXPECT_EQ(c.stats().races, 0u);
  EXPECT_EQ(c.stats().mpb_writes, 1u);
  EXPECT_EQ(c.stats().mpb_reads, 1u);
  EXPECT_EQ(c.stats().flag_sets, 1u);
  EXPECT_EQ(c.stats().flag_tests, 1u);
  EXPECT_TRUE(c.reports().empty());
}

TEST(Checker, ReadBeforePublishIsReported) {
  Checker c = make();
  const SiteId snd = c.site("send");
  const SiteId rcv = c.site("stale_read");
  c.mpb_write(0, 1, 0, 64, 10, snd, 0, 1);
  c.flag_set(0, 0, 1, 11, snd);
  // Core 1 reads WITHOUT testing the flag: no happens-before edge.
  c.mpb_read(1, 1, 0, 64, 12, rcv, 0, 1);

  ASSERT_EQ(c.reports().size(), 1u);
  const RaceReport& r = c.reports().front();
  EXPECT_EQ(r.kind, RaceReport::Kind::ReadBeforePublish);
  EXPECT_EQ(r.prior.core, 0);
  EXPECT_EQ(r.prior.kind, AccessKind::Write);
  EXPECT_EQ(r.current.core, 1);
  EXPECT_EQ(r.current.kind, AccessKind::Read);
  EXPECT_EQ(r.current.mpb, 1);
  EXPECT_EQ(r.prior.ts, 10u);
  EXPECT_EQ(r.current.ts, 12u);
  EXPECT_EQ(c.site_name(r.prior.site), "send");
  EXPECT_EQ(c.site_name(r.current.site), "stale_read");
  // The report carries the implicated flow's flag chain (the publish).
  ASSERT_FALSE(r.flag_chain.empty());
  EXPECT_EQ(r.flag_chain.back().kind, FlagEvent::Kind::Set);
  EXPECT_EQ(r.flag_chain.back().core, 0);
}

TEST(Checker, FailedFlagTestCreatesNoEdge) {
  Checker c = make();
  const SiteId s = c.site("s");
  c.mpb_write(0, 1, 0, 64, 10, s, 0, 1);
  c.flag_set(0, 0, 1, 11, s);
  // Core 1's test came back empty (simulated ordering): no edge, so the
  // subsequent read still races.
  c.flag_test(1, 0, 1, /*observed_set=*/false, 12, s);
  c.mpb_read(1, 1, 0, 64, 13, s, 0, 1);
  ASSERT_EQ(c.reports().size(), 1u);
  EXPECT_EQ(c.reports().front().kind, RaceReport::Kind::ReadBeforePublish);
}

TEST(Checker, UnorderedOverlappingWritesAreReported) {
  Checker c = make();
  const SiteId s = c.site("w");
  c.mpb_write(1, 0, 0, 64, 10, s);
  c.mpb_write(2, 0, 32, 64, 11, s);  // overlaps [32, 64), no ordering
  ASSERT_EQ(c.reports().size(), 1u);
  const RaceReport& r = c.reports().front();
  EXPECT_EQ(r.kind, RaceReport::Kind::WriteWriteOverlap);
  EXPECT_EQ(r.prior.core, 1);
  EXPECT_EQ(r.current.core, 2);
}

TEST(Checker, SameWriterOverlapIsProgramOrdered) {
  Checker c = make();
  const SiteId s = c.site("w");
  c.mpb_write(1, 0, 0, 64, 10, s);
  c.mpb_write(1, 0, 32, 64, 11, s);  // same core: program order, no race
  EXPECT_EQ(c.stats().races, 0u);
}

TEST(Checker, FlagEdgeOrdersCrossCoreWrites) {
  Checker c = make();
  const SiteId s = c.site("w");
  c.mpb_write(1, 0, 0, 64, 10, s, 1, 2);
  c.flag_set(1, 1, 2, 11, s);
  c.flag_test(2, 1, 2, true, 12, s);
  c.mpb_write(2, 0, 0, 64, 13, s, 1, 2);  // ordered after core 1's write
  EXPECT_EQ(c.stats().races, 0u);
}

TEST(Checker, BarrierOrdersAllParticipants) {
  Checker c = make();
  const SiteId s = c.site("w");
  c.mpb_write(0, 1, 0, 64, 10, s);
  c.barrier({0, 1, 2, 3}, 20);
  c.mpb_read(1, 1, 0, 64, 21, s);
  c.mpb_write(2, 1, 0, 64, 22, s);  // also ordered after core 0's write
  EXPECT_EQ(c.stats().races, 0u);
  EXPECT_EQ(c.stats().barriers, 1u);
}

TEST(Checker, DisjointRangesNeverInteract) {
  Checker c = make();
  const SiteId s = c.site("w");
  c.mpb_write(0, 3, c.slice_lo(0), 64, 10, s);
  c.mpb_write(1, 3, c.slice_lo(1), 64, 10, s);  // separate RCCE slices
  c.mpb_read(2, 3, c.slice_lo(2), 8, 11, s);    // untouched slice
  EXPECT_EQ(c.stats().races, 0u);
}

TEST(Checker, OverlapCarvingKeepsCleanHistory) {
  Checker c = make();
  const SiteId s = c.site("w");
  // Core 0 writes [0, 100) then rewrites the middle [40, 60): the shadow
  // map carves three segments, all owned by core 0.
  c.mpb_write(0, 1, 0, 100, 10, s, 0, 1);
  c.mpb_write(0, 1, 40, 20, 11, s, 0, 1);
  c.flag_set(0, 0, 1, 12, s);
  c.flag_test(1, 0, 1, true, 13, s);
  c.mpb_read(1, 1, 0, 100, 14, s, 0, 1);  // spans all three segments
  EXPECT_EQ(c.stats().races, 0u);
}

TEST(Checker, DuplicateRacesAreDedupedButCounted) {
  Checker c = make();
  const SiteId s = c.site("loop_read");
  c.mpb_write(0, 1, 0, 64, 10, c.site("send"), 0, 1);
  for (int k = 0; k < 5; ++k) c.mpb_read(1, 1, 0, 64, 20 + k, s, 0, 1);
  EXPECT_EQ(c.stats().races, 5u);   // every occurrence counted
  EXPECT_EQ(c.reports().size(), 1u);  // one structured report
}

TEST(Checker, MaxReportsCapsRecordingNotDetection) {
  Config cfg = Config::on();
  cfg.max_reports = 2;
  Checker c = make(cfg);
  c.mpb_write(0, 1, 0, 64, 10, c.site("send"), 0, 1);
  // Three distinct racing sites -> three distinct dedup keys.
  c.mpb_read(1, 1, 0, 8, 11, c.site("r1"), 0, 1);
  c.mpb_read(1, 1, 0, 8, 12, c.site("r2"), 0, 1);
  c.mpb_read(1, 1, 0, 8, 13, c.site("r3"), 0, 1);
  EXPECT_EQ(c.reports().size(), 2u);
  EXPECT_EQ(c.stats().races, 3u);
}

TEST(Checker, CoreRangeIsValidated) {
  Checker c = make();
  const SiteId s = c.site("w");
  EXPECT_THROW(c.mpb_write(4, 0, 0, 8, 0, s), ChkError);
  EXPECT_THROW(c.mpb_read(0, -1, 0, 8, 0, s), ChkError);
  EXPECT_THROW(c.flag_set(0, 0, 99, 0, s), ChkError);
  EXPECT_THROW(c.barrier({0, 7}, 0), ChkError);
}

TEST(Checker, NoteLandsInFlagChain) {
  Checker c = make();
  const SiteId s = c.site("send");
  const SiteId n = c.site("farm_ft.lease_expiry");
  c.mpb_write(2, 1, c.slice_lo(2), 64, 10, s, 2, 1);
  c.flag_set(2, 2, 1, 11, s);
  c.note(1, 2, 1, 15, n, /*id=*/42);
  c.mpb_read(1, 1, c.slice_lo(2), 64, 16, c.site("stale"), 2, 1);
  ASSERT_EQ(c.reports().size(), 1u);
  const RaceReport& r = c.reports().front();
  bool saw_note = false;
  for (const FlagEvent& ev : r.flag_chain)
    if (ev.kind == FlagEvent::Kind::Note && ev.id == 42) saw_note = true;
  EXPECT_TRUE(saw_note);
}

TEST(Checker, ReportJsonIsStructured) {
  Checker c = make();
  c.mpb_write(0, 1, 0, 64, 10, c.site("send"), 0, 1);
  c.mpb_read(1, 1, 0, 64, 12, c.site("stale_read"), 0, 1);
  const std::string doc = c.report_json();
  EXPECT_NE(doc.find("\"schema\": \"rck-chk-report-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"rck.chk.race\""), std::string::npos);
  EXPECT_NE(doc.find("send"), std::string::npos);
  EXPECT_NE(doc.find("stale_read"), std::string::npos);
  // The compact stats object is embedded verbatim.
  EXPECT_NE(doc.find(c.section_json()), std::string::npos);
}

TEST(Checker, SectionJsonCountsEvents) {
  Checker c = make();
  c.mpb_write(0, 1, 0, 64, 10, c.site("s"), 0, 1);
  c.flag_set(0, 0, 1, 11, c.site("s"));
  EXPECT_EQ(c.section_json(),
            "{\"mpb_writes\": 1, \"mpb_reads\": 0, \"flag_sets\": 1, "
            "\"flag_tests\": 0, \"barriers\": 0, \"notes\": 0, \"races\": 0}");
}

TEST(Checker, WriteReportCreatesParentDirectories) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "rck_chk_report_test";
  std::filesystem::remove_all(dir);
  const std::filesystem::path p = dir / "nested" / "report.json";

  Checker c = make();
  write_report(c, p.string());
  std::ifstream f(p);
  ASSERT_TRUE(f.good());
  std::string first;
  std::getline(f, first);
  EXPECT_EQ(first, "{");
  std::filesystem::remove_all(dir);
}

TEST(Checker, WriteReportFailureIsTyped) {
  // Parent "directory" is a regular file: create_directories must fail.
  const std::filesystem::path blocker =
      std::filesystem::temp_directory_path() / "rck_chk_blocker";
  std::filesystem::remove_all(blocker);
  {
    std::ofstream f(blocker);
    f << "not a directory";
  }
  const Checker c = make();
  EXPECT_THROW(write_report(c, (blocker / "sub" / "r.json").string()),
               ChkIoError);
  std::filesystem::remove_all(blocker);
}

}  // namespace
}  // namespace rck::chk
