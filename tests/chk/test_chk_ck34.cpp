// PR 5 acceptance on the paper's CK34 workload: a chk-enabled run is
// bit-identical to a chk-disabled one — same simulated cycles, same
// alignment results, same observability bytes — and finds zero races in the
// shipped protocol stack.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rck/bio/dataset.hpp"
#include "rck/obs/sink.hpp"
#include "rck/rck.hpp"

namespace {

using namespace rck;

constexpr int kSlaves = 12;

class ChkCk34 : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new std::vector<bio::Protein>(bio::build_dataset(bio::ck34_spec()));
    cache_ = new rckalign::PairCache(rckalign::PairCache::build(*dataset_));
  }
  static void TearDownTestSuite() {
    delete cache_;
    cache_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  static RunResult run_with(bool with_chk, std::uint64_t seed = 0,
                            bool collect = false, int host_threads = 1) {
    RunConfig cfg;
    cfg.with_slaves(kSlaves).with_cache(cache_).with_host_threads(host_threads);
    if (with_chk) cfg.with_chk();
    if (seed != 0) cfg.with_chk_seed(seed);
    if (collect) cfg.with_collect();
    return rck::run(*dataset_, cfg);
  }

  static std::vector<bio::Protein>* dataset_;
  static rckalign::PairCache* cache_;
};

std::vector<bio::Protein>* ChkCk34::dataset_ = nullptr;
rckalign::PairCache* ChkCk34::cache_ = nullptr;

TEST_F(ChkCk34, CheckerIsBitNeutralAndFindsNoRaces) {
  const RunResult plain = run_with(false);
  const RunResult checked = run_with(true);

  EXPECT_EQ(plain.chk, nullptr);
  ASSERT_NE(checked.chk, nullptr);
  EXPECT_EQ(checked.chk->stats().races, 0u);
  EXPECT_TRUE(checked.chk->reports().empty());

  // Bit-identity: cycles and alignments.
  EXPECT_EQ(plain.makespan, checked.makespan);
  EXPECT_EQ(plain.results, checked.results);
  EXPECT_EQ(plain.core_reports, checked.core_reports);
  EXPECT_EQ(plain.events, checked.events);

  // The full protocol stream was actually checked: one slice write + publish
  // + consume per farm frame, and CK34's 561 jobs move a lot of frames.
  EXPECT_GT(checked.chk->stats().mpb_writes, 2u * 561u);
  EXPECT_EQ(checked.chk->stats().mpb_writes, checked.chk->stats().mpb_reads);
  EXPECT_EQ(checked.chk->stats().mpb_writes, checked.chk->stats().flag_sets);
}

TEST_F(ChkCk34, ObsBytesAreIdenticalUnderChk) {
  const RunResult plain = run_with(false, 0, /*collect=*/true);
  const RunResult checked = run_with(true, 0, /*collect=*/true);
  ASSERT_NE(plain.obs, nullptr);
  ASSERT_NE(checked.obs, nullptr);
  ASSERT_NE(checked.chk, nullptr);
  ASSERT_EQ(checked.chk->stats().races, 0u);

  EXPECT_EQ(plain.obs->snapshot().to_json(), checked.obs->snapshot().to_json());
  EXPECT_EQ(obs::chrome_trace_json(*plain.obs),
            obs::chrome_trace_json(*checked.obs));
}

TEST_F(ChkCk34, HostParallelConfigStaysCleanAndIdentical) {
  // chk forces the serial scheduler underneath, so a host-parallel config
  // must yield the same simulated results with zero races.
  const RunResult serial = run_with(true);
  const RunResult threaded = run_with(true, 0, false, /*host_threads=*/4);
  ASSERT_NE(threaded.chk, nullptr);
  EXPECT_EQ(threaded.chk->stats().races, 0u);
  EXPECT_EQ(serial.makespan, threaded.makespan);
  EXPECT_EQ(serial.results, threaded.results);
  EXPECT_EQ(serial.chk->stats(), threaded.chk->stats());
}

TEST_F(ChkCk34, FaultPlanRunStaysClean) {
  // Crash/lease-expiry/retry orderings from the FT farm are where stale
  // frames would hide; the checker must still find nothing in ours.
  const noc::SimTime base = run_with(false).makespan;
  RunConfig cfg;
  cfg.with_slaves(kSlaves).with_cache(cache_).with_chk();
  scc::FaultPlan plan;
  plan.crashes.push_back({3, base / 4});
  plan.crashes.push_back({7, base / 2});
  cfg.with_faults(plan);
  const RunResult out = rck::run(*dataset_, cfg);
  ASSERT_NE(out.chk, nullptr);
  EXPECT_EQ(out.chk->stats().races, 0u);
  EXPECT_GT(out.farm_report.reassignments, 0u);
  EXPECT_GT(out.chk->stats().notes, 0u);  // recovery annotations were seen
  EXPECT_EQ(out.results.size(), 561u);    // every pair still computed
}

TEST_F(ChkCk34, PerturbedSchedulesStayCleanAndCorrect) {
  const RunResult plain = run_with(false);
  const RunResult perturbed = run_with(true, /*seed=*/0x5cc5cc5cu);
  ASSERT_NE(perturbed.chk, nullptr);
  EXPECT_EQ(perturbed.chk->stats().races, 0u);
  // Reordering same-instant ties must not change simulated results: every
  // perturbed schedule is one the conservative DES already admits.
  EXPECT_EQ(plain.makespan, perturbed.makespan);
  EXPECT_EQ(plain.results, perturbed.results);
}

}  // namespace
