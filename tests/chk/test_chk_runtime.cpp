// rck::chk wired into the simulated SCC runtime: the built-in send/recv/
// barrier instrumentation, the raw annotation hooks, seeded known-race
// skeletons (satellite of the PR 5 acceptance list), schedule perturbation,
// and the obs/metrics surfacing of race reports.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "rck/bio/dataset.hpp"
#include "rck/bio/serialize.hpp"
#include "rck/obs/sink.hpp"
#include "rck/rck.hpp"
#include "rck/rcce/rcce.hpp"
#include "rck/scc/runtime.hpp"

namespace rck {
namespace {

bio::Bytes u32_msg(std::uint32_t v) {
  bio::WireWriter w;
  w.u32(v);
  return w.take();
}

scc::RuntimeConfig chk_cfg(std::uint64_t seed = 0) {
  scc::RuntimeConfig cfg;
  cfg.chk.enable = true;
  cfg.chk.schedule_seed = seed;
  return cfg;
}

// Master sends one frame to each slave, gets it echoed back, then everyone
// meets at the barrier: every protocol edge the checker knows about.
void echo_program(scc::CoreCtx& c) {
  rcce::Comm comm(c);
  if (comm.ue() == 0) {
    for (int s = 1; s < comm.num_ues(); ++s) comm.send(s, u32_msg(7u));
    for (int s = 1; s < comm.num_ues(); ++s) (void)comm.recv(s);
  } else {
    comm.send(0, comm.recv(0));
  }
  comm.barrier();
}

TEST(ChkRuntime, OffByDefaultAndHooksAreNoOps) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  rt.run(3, [](scc::CoreCtx& c) {
    // Annotation hooks must be callable (and free) without a checker.
    c.chk_mpb_write(0, 0, 8, "test.site");
    c.chk_flag_set(0, 1, "test.site");
    c.chk_note(0, 1, "test.site", 1);
    echo_program(c);
  });
  EXPECT_EQ(rt.chk(), nullptr);
}

TEST(ChkRuntime, CleanProtocolRunHasZeroRaces) {
  scc::SpmdRuntime rt(chk_cfg());
  rt.run(4, echo_program);
  ASSERT_NE(rt.chk(), nullptr);
  const chk::Stats& s = rt.chk()->stats();
  EXPECT_EQ(s.races, 0u);
  // 3 out + 3 back = 6 frames; each is one slice write + publish + consume.
  EXPECT_EQ(s.mpb_writes, 6u);
  EXPECT_EQ(s.mpb_reads, 6u);
  EXPECT_EQ(s.flag_sets, 6u);
  EXPECT_GE(s.flag_tests, 6u);  // blocked-recv retries test more than once
  EXPECT_EQ(s.barriers, 1u);
  EXPECT_TRUE(rt.chk()->reports().empty());
}

TEST(ChkRuntime, EnablingChkDoesNotPerturbTheSimulation) {
  scc::SpmdRuntime plain{scc::RuntimeConfig{}};
  const noc::SimTime t_plain = plain.run(4, echo_program);
  scc::SpmdRuntime checked(chk_cfg());
  const noc::SimTime t_checked = checked.run(4, echo_program);
  EXPECT_EQ(t_plain, t_checked);
  EXPECT_EQ(plain.core_reports(), checked.core_reports());
  EXPECT_EQ(plain.events_fired(), checked.events_fired());
}

TEST(ChkRuntime, ChkForcesSerialSchedulerWithIdenticalResults) {
  scc::RuntimeConfig par = chk_cfg();
  par.host.threads = 4;  // chk forces the serial scheduler underneath
  scc::SpmdRuntime a(chk_cfg()), b(par);
  EXPECT_EQ(a.run(4, echo_program), b.run(4, echo_program));
  EXPECT_EQ(a.chk()->stats(), b.chk()->stats());
}

// Known-race skeleton 1: read before the publishing flag is tested.
TEST(ChkRuntime, SeededReadBeforeFlagIsReported) {
  scc::SpmdRuntime rt(chk_cfg());
  rt.run(2, [](scc::CoreCtx& c) {
    rcce::Comm comm(c);
    const std::uint32_t lo = 0;
    if (comm.ue() == 0) {
      comm.chk_mpb_write(/*mpb_owner=*/1, lo, 64, "bug.send", 0, 1);
      comm.chk_flag_set(0, 1, "bug.send");
    } else {
      // Runs strictly later in simulated time, but never tests the flag.
      comm.charge_cycles(1000);
      comm.chk_mpb_read(/*mpb_owner=*/1, lo, 64, "bug.stale_read", 0, 1);
    }
  });
  ASSERT_NE(rt.chk(), nullptr);
  ASSERT_EQ(rt.chk()->reports().size(), 1u);
  const chk::RaceReport& r = rt.chk()->reports().front();
  EXPECT_EQ(r.kind, chk::RaceReport::Kind::ReadBeforePublish);
  EXPECT_EQ(r.prior.core, 0);
  EXPECT_EQ(r.current.core, 1);
  EXPECT_EQ(rt.chk()->site_name(r.prior.site), "bug.send");
  EXPECT_EQ(rt.chk()->site_name(r.current.site), "bug.stale_read");
  ASSERT_FALSE(r.flag_chain.empty());
  EXPECT_EQ(r.flag_chain.back().kind, chk::FlagEvent::Kind::Set);
}

// Known-race skeleton 2: two senders sharing one slice without an ordering
// flag (e.g. a broken collective that forgot per-source slice offsets).
TEST(ChkRuntime, SeededOverlappingSliceWritesAreReported) {
  scc::SpmdRuntime rt(chk_cfg());
  rt.run(3, [](scc::CoreCtx& c) {
    rcce::Comm comm(c);
    if (comm.ue() == 0) return;
    comm.charge_cycles(static_cast<std::uint64_t>(comm.ue()) * 100);
    comm.chk_mpb_write(/*mpb_owner=*/0, 0, 64, "bug.shared_slice",
                       comm.ue(), 0);
  });
  ASSERT_EQ(rt.chk()->reports().size(), 1u);
  const chk::RaceReport& r = rt.chk()->reports().front();
  EXPECT_EQ(r.kind, chk::RaceReport::Kind::WriteWriteOverlap);
  EXPECT_EQ(r.prior.core, 1);
  EXPECT_EQ(r.current.core, 2);
  EXPECT_EQ(r.current.mpb, 0);
}

// Known-race skeleton 3: a stale frame consumed after a lease reassignment —
// the receiver re-reads its slice on retry without re-testing the publish
// flag, picking up whatever the previous attempt left there.
TEST(ChkRuntime, SeededStaleFrameAfterReassignmentIsReported) {
  scc::SpmdRuntime rt(chk_cfg());
  rt.run(3, [](scc::CoreCtx& c) {
    rcce::Comm comm(c);
    const std::uint32_t lo = 2 * 64;
    if (comm.ue() == 2) {
      // First attempt: proper publish.
      comm.chk_mpb_write(1, lo, 64, "ft.send", 2, 1);
      comm.chk_flag_set(2, 1, "ft.send");
      // Retry after the lease was reassigned: rewrite without the consumer
      // ever being told.
      comm.charge_cycles(5000);
      comm.chk_mpb_write(1, lo, 64, "ft.retry_send", 2, 1);
    } else if (comm.ue() == 1) {
      comm.charge_cycles(1000);
      comm.chk_flag_test(2, 1, /*observed_set=*/true, "ft.recv");
      comm.chk_mpb_read(1, lo, 64, "ft.recv", 2, 1);  // clean first read
      comm.charge_cycles(9000);
      comm.chk_note(2, 1, "ft.lease_reassigned", /*id=*/42);
      comm.chk_mpb_read(1, lo, 64, "ft.stale_read", 2, 1);  // no re-test
    }
  });
  ASSERT_EQ(rt.chk()->reports().size(), 1u);
  const chk::RaceReport& r = rt.chk()->reports().front();
  EXPECT_EQ(r.kind, chk::RaceReport::Kind::ReadBeforePublish);
  EXPECT_EQ(rt.chk()->site_name(r.prior.site), "ft.retry_send");
  EXPECT_EQ(rt.chk()->site_name(r.current.site), "ft.stale_read");
  // The reassignment note shows up in the report's flag chain.
  bool saw_note = false;
  for (const chk::FlagEvent& ev : r.flag_chain)
    if (ev.kind == chk::FlagEvent::Kind::Note && ev.id == 42) saw_note = true;
  EXPECT_TRUE(saw_note);
}

TEST(ChkRuntime, FaultPlanRunStaysCleanUnderChk) {
  // A slave crash exercises the FT farm's lease-expiry + retry paths with
  // the checker watching every flag/MPB op along the way.
  const std::vector<bio::Protein> dataset = bio::build_dataset(bio::tiny_spec());
  const rckalign::PairCache cache = rckalign::PairCache::build(dataset);
  RunConfig base_cfg;
  base_cfg.with_slaves(3).with_cache(&cache);
  const noc::SimTime base = rck::run(dataset, base_cfg).makespan;

  RunConfig cfg;
  cfg.with_slaves(3).with_cache(&cache).with_chk();
  scc::FaultPlan plan;
  plan.crashes.push_back({2, base / 4});  // mid-run, leased jobs in flight
  cfg.with_faults(plan);
  const RunResult out = rck::run(dataset, cfg);
  ASSERT_NE(out.chk, nullptr);
  EXPECT_EQ(out.chk->stats().races, 0u);
  EXPECT_GT(out.chk->stats().mpb_writes, 0u);
  EXPECT_GT(out.farm_report.reassignments, 0u);
  // The recovery annotations flowed into the checker.
  EXPECT_GT(out.chk->stats().notes, 0u);
}

TEST(ChkRuntime, SchedulePerturbationIsDeterministicPerSeed) {
  const auto run_once = [](std::uint64_t seed) {
    scc::SpmdRuntime rt(chk_cfg(seed));
    const noc::SimTime t = rt.run(5, echo_program);
    return std::pair<noc::SimTime, chk::Stats>(t, rt.chk()->stats());
  };
  const auto a1 = run_once(0xfeedu), a2 = run_once(0xfeedu);
  EXPECT_EQ(a1, a2);  // same seed -> bit-for-bit replay
  // A different seed explores a different interleaving but the protocol is
  // clean under all of them, and simulated results don't depend on the
  // dispatch order of same-instant ties.
  const auto b = run_once(0xbeefu);
  EXPECT_EQ(a1.first, b.first);
  EXPECT_EQ(a1.second.races, 0u);
  EXPECT_EQ(b.second.races, 0u);
}

TEST(ChkRuntime, RacesSurfaceInObsTraceAndMetrics) {
  scc::RuntimeConfig cfg = chk_cfg();
  cfg.obs.enable = true;
  scc::SpmdRuntime rt(cfg);
  rt.run(2, [](scc::CoreCtx& c) {
    rcce::Comm comm(c);
    if (comm.ue() == 0) {
      comm.chk_mpb_write(1, 0, 64, "bug.send", 0, 1);
      comm.chk_flag_set(0, 1, "bug.send");
    } else {
      comm.charge_cycles(1000);
      comm.chk_mpb_read(1, 0, 64, "bug.stale_read", 0, 1);
    }
  });
  ASSERT_NE(rt.obs(), nullptr);
  ASSERT_EQ(rt.chk()->stats().races, 1u);
  // Metrics snapshot gains the "chk" section...
  const std::string metrics = rt.obs()->snapshot().to_json();
  EXPECT_NE(metrics.find("\"chk\": {\"mpb_writes\""), std::string::npos);
  EXPECT_NE(metrics.find("\"races\": 1"), std::string::npos);
  // ...and the trace gains a chk_race instant on the racing core's lane.
  const std::string trace = obs::chrome_trace_json(*rt.obs());
  EXPECT_NE(trace.find("chk_race"), std::string::npos);
}

TEST(ChkRuntime, CleanRunEmitsNoObsBytes) {
  const auto metrics_of = [](bool with_chk) {
    scc::RuntimeConfig cfg;
    cfg.obs.enable = true;
    cfg.chk.enable = with_chk;
    scc::SpmdRuntime rt(cfg);
    rt.run(4, echo_program);
    return std::pair<std::string, std::string>(
        rt.obs()->snapshot().to_json(), obs::chrome_trace_json(*rt.obs()));
  };
  const auto off = metrics_of(false);
  const auto on = metrics_of(true);
  EXPECT_EQ(off.first, on.first);    // metrics bytes identical
  EXPECT_EQ(off.second, on.second);  // trace bytes identical
}

TEST(ChkRunConfig, UmbrellaPlumbingAndValidation) {
  RunConfig cfg;
  cfg.with_chk().with_chk_seed(9).with_chk_report("out/chk.json");
  EXPECT_TRUE(cfg.chk.enable);
  const rckalign::RckAlignOptions opts = cfg.to_options();
  EXPECT_TRUE(opts.runtime.chk.enable);
  EXPECT_EQ(opts.runtime.chk.schedule_seed, 9u);
  EXPECT_EQ(opts.runtime.chk.report_path, "out/chk.json");

  RunConfig clash;
  clash.with_metrics("same.json").with_chk_report("same.json");
  bool found = false;
  for (const ConfigIssue& issue : clash.validate())
    if (issue.field == "chk.report_path") found = true;
  EXPECT_TRUE(found);
  EXPECT_THROW(clash.validated(), ConfigError);
}

}  // namespace
}  // namespace rck
