#include "rck/core/error.hpp"
#include "rck/core/ce_align.hpp"

#include <gtest/gtest.h>

#include "rck/bio/synthetic.hpp"
#include "rck/core/tmalign.hpp"

namespace rck::core {
namespace {

using bio::Protein;
using bio::Rng;

TEST(CeAlign, SelfAlignmentCoversEverything) {
  Rng rng(1);
  const Protein p = bio::make_protein("p", 96, rng);
  const CeResult r = ce_align(p, p);
  // 96 residues, m = 8: the path can cover all 12 fragments on the diagonal.
  EXPECT_GE(r.aligned_length, 88);
  EXPECT_NEAR(r.rmsd, 0.0, 1e-6);
  EXPECT_GT(r.tm, 0.9);
  // Diagonal path: i == j for every fragment.
  for (const CeFragment& f : r.path) EXPECT_EQ(f.i, f.j);
}

TEST(CeAlign, RigidMotionInvariant) {
  // CE never superposes during the search (distance matrices are invariant),
  // so a rigid motion must change nothing about the path.
  Rng rng(2);
  const Protein p = bio::make_protein("p", 80, rng);
  const Protein q = p.transformed(bio::random_transform(rng));
  const CeResult same = ce_align(p, p);
  const CeResult moved = ce_align(p, q);
  // Distance matrices are exactly rotation-invariant up to floating-point
  // rounding; rounding can flip marginal tie-breaks, so compare outcomes,
  // not the exact fragment list.
  EXPECT_NEAR(moved.rmsd, 0.0, 1e-5);
  EXPECT_NEAR(static_cast<double>(moved.aligned_length),
              static_cast<double>(same.aligned_length), 8.0);
  EXPECT_GT(moved.tm, 0.9);
}

TEST(CeAlign, FamilyMemberWithoutHingesAlignsWell) {
  // CE is a rigid-core method: give it a rigid family member (noise +
  // rigid motion, no hinge bending) and it should cover most of the chain.
  Rng rng(3);
  const Protein p = bio::make_protein("p", 120, rng);
  Protein q = p;
  std::normal_distribution<double> noise(0.0, 0.4);
  for (bio::Residue& res : q.residues()) res.ca += {noise(rng), noise(rng), noise(rng)};
  q.apply(bio::random_transform(rng));
  const CeResult r = ce_align(p, q);
  EXPECT_GT(r.aligned_length, 80);
  EXPECT_LT(r.rmsd, 2.5);
  EXPECT_GT(r.tm, 0.6);
}

TEST(CeAlign, HingeMotionShrinksRigidCore) {
  // The flip side (and the reason multi-criteria PSC is useful): a hinged
  // family member still scores well with TM-align's flexible-ish search,
  // while CE, comparing global internal distances, keeps only the largest
  // rigid fragment chain.
  Rng rng(3);
  const Protein p = bio::make_protein("p", 120, rng);
  const Protein q = bio::perturb(p, "q", rng);  // includes hinge motions
  const CeResult ce = ce_align(p, q);
  const TmAlignResult tm = tmalign(p, q);
  EXPECT_GT(tm.tm(), 0.5);
  EXPECT_LT(ce.aligned_length, tm.aligned_length);
  EXPECT_GT(ce.aligned_length, 16);  // at least a couple of fragments
}

TEST(CeAlign, UnrelatedChainsFindLittle) {
  Rng rng(4);
  const Protein p = bio::make_protein("p", 100, rng);
  const Protein q = bio::make_protein("q", 100, rng);
  const CeResult r = ce_align(p, q);
  EXPECT_LT(r.tm, 0.45);
}

TEST(CeAlign, PathIsMonotoneAndDisjoint) {
  Rng rng(5);
  const Protein p = bio::make_protein("p", 110, rng);
  const Protein q = bio::perturb(p, "q", rng);
  const CeResult r = ce_align(p, q);
  for (std::size_t k = 1; k < r.path.size(); ++k) {
    EXPECT_GE(r.path[k].i, r.path[k - 1].i + r.path[k - 1].len);
    EXPECT_GE(r.path[k].j, r.path[k - 1].j + r.path[k - 1].len);
  }
}

TEST(CeAlign, AgreesWithTmAlignOnFoldDiscrimination) {
  // The MC-PSC premise: different methods should agree on same-fold vs
  // different-fold even when their scores differ.
  Rng rng(6);
  const Protein p = bio::make_protein("p", 100, rng);
  const Protein same = bio::perturb(p, "same", rng);
  const Protein diff = bio::make_protein("diff", 100, rng);

  const double tm_same = tmalign(p, same).tm();
  const double tm_diff = tmalign(p, diff).tm();
  const CeResult ce_same = ce_align(p, same);
  const CeResult ce_diff = ce_align(p, diff);

  EXPECT_GT(tm_same, 0.5);
  EXPECT_LT(tm_diff, 0.5);
  EXPECT_GT(ce_same.tm, ce_diff.tm);
  EXPECT_GT(ce_same.aligned_length, ce_diff.aligned_length);
}

TEST(CeAlign, RejectsShortChains) {
  Rng rng(7);
  const Protein ok = bio::make_protein("ok", 40, rng);
  const Protein tiny = bio::make_protein("tiny", 12, rng);  // < 2*8
  EXPECT_THROW(ce_align(tiny, ok), rck::core::CoreError);
  EXPECT_THROW(ce_align(ok, tiny), rck::core::CoreError);
}

TEST(CeAlign, Deterministic) {
  Rng rng(8);
  const Protein p = bio::make_protein("p", 90, rng);
  const Protein q = bio::make_protein("q", 85, rng);
  const CeResult a = ce_align(p, q);
  const CeResult b = ce_align(p, q);
  EXPECT_EQ(a.aligned_length, b.aligned_length);
  EXPECT_DOUBLE_EQ(a.rmsd, b.rmsd);
  EXPECT_EQ(a.stats, b.stats);
}

TEST(CeAlign, StatsPopulated) {
  Rng rng(9);
  const Protein p = bio::make_protein("p", 70, rng);
  const Protein q = bio::make_protein("q", 70, rng);
  const CeResult r = ce_align(p, q);
  EXPECT_GT(r.stats.matrix_cells, 0u);
  EXPECT_GT(r.stats.kabsch_calls, 0u);
}

TEST(CeAlign, GapBoundRespected) {
  Rng rng(10);
  const Protein p = bio::make_protein("p", 130, rng);
  const Protein q = bio::perturb(p, "q", rng);
  CeOptions opts;
  opts.max_gap = 5;
  const CeResult r = ce_align(p, q, opts);
  for (std::size_t k = 1; k < r.path.size(); ++k) {
    EXPECT_LE(r.path[k].i - (r.path[k - 1].i + r.path[k - 1].len), 5);
    EXPECT_LE(r.path[k].j - (r.path[k - 1].j + r.path[k - 1].len), 5);
  }
}

}  // namespace
}  // namespace rck::core
