#include "rck/core/error.hpp"
#include "rck/core/quality.hpp"

#include <gtest/gtest.h>

#include "rck/bio/synthetic.hpp"

namespace rck::core {
namespace {

using bio::Protein;
using bio::Residue;
using bio::Rng;

TEST(Quality, PerfectModelScoresPerfectly) {
  Rng rng(1);
  const Protein native = bio::make_protein("native", 100, rng);
  const QualityResult q = score_model_by_index(native, native);
  EXPECT_NEAR(q.tm, 1.0, 1e-6);
  EXPECT_NEAR(q.rmsd, 0.0, 1e-6);
  EXPECT_NEAR(q.gdt_ts, 1.0, 1e-12);
  EXPECT_NEAR(q.gdt_ha, 1.0, 1e-12);
  EXPECT_GT(q.maxsub, 0.99);
  EXPECT_EQ(q.paired, 100);
}

TEST(Quality, RigidlyMovedModelStillPerfect) {
  Rng rng(2);
  const Protein native = bio::make_protein("native", 80, rng);
  const Protein model = native.transformed(bio::random_transform(rng));
  const QualityResult q = score_model_by_index(model, native);
  EXPECT_GT(q.tm, 0.999);
  EXPECT_GT(q.gdt_ha, 0.99);
}

TEST(Quality, NoisyModelDegradesMonotonically) {
  Rng rng(3);
  const Protein native = bio::make_protein("native", 120, rng);
  double last_tm = 1.1, last_gdt = 1.1;
  for (double noise : {0.2, 0.8, 2.0, 5.0}) {
    Protein model = native;
    std::normal_distribution<double> n(0.0, noise);
    for (Residue& r : model.residues()) r.ca += {n(rng), n(rng), n(rng)};
    const QualityResult q = score_model_by_index(model, native);
    EXPECT_LT(q.tm, last_tm) << noise;
    EXPECT_LT(q.gdt_ts, last_gdt + 1e-9) << noise;
    last_tm = q.tm;
    last_gdt = q.gdt_ts;
  }
  EXPECT_LT(last_tm, 0.6);  // 5 A noise is a bad model
}

TEST(Quality, GdtHaIsStricterThanGdtTs) {
  Rng rng(4);
  const Protein native = bio::make_protein("native", 90, rng);
  Protein model = native;
  std::normal_distribution<double> n(0.0, 1.0);
  for (Residue& r : model.residues()) r.ca += {n(rng), n(rng), n(rng)};
  const QualityResult q = score_model_by_index(model, native);
  EXPECT_LE(q.gdt_ha, q.gdt_ts);
  EXPECT_GT(q.gdt_ha, 0.0);
}

TEST(Quality, ByResidueNumberHandlesPartialModels) {
  Rng rng(5);
  const Protein native = bio::make_protein("native", 100, rng);
  // Model covers residues 21..80 only (seq numbers 21..80).
  std::vector<Residue> sub(native.residues().begin() + 20,
                           native.residues().begin() + 80);
  const Protein model("partial", sub);
  const auto q = score_model(model, native);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->paired, 60);
  // Coverage caps every score at 60/100.
  EXPECT_LE(q->tm, 0.6 + 1e-9);
  EXPECT_LE(q->gdt_ts, 0.6 + 1e-9);
  EXPECT_GT(q->tm, 0.55);  // but the covered part matches perfectly
  EXPECT_NEAR(q->rmsd, 0.0, 1e-6);
}

TEST(Quality, DisjointNumberingReturnsNullopt) {
  Rng rng(6);
  const Protein a = bio::make_protein("a", 30, rng);  // seq 1..30
  Protein b = bio::make_protein("b", 30, rng);
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i].seq = static_cast<std::int32_t>(1000 + i);
  EXPECT_FALSE(score_model(a, b).has_value());
}

TEST(Quality, IndexPairingRejectsLengthMismatch) {
  Rng rng(7);
  const Protein a = bio::make_protein("a", 30, rng);
  const Protein b = bio::make_protein("b", 31, rng);
  EXPECT_THROW(score_model_by_index(a, b), rck::core::CoreError);
}

TEST(Quality, StatsPopulated) {
  Rng rng(8);
  const Protein native = bio::make_protein("native", 60, rng);
  const QualityResult q = score_model_by_index(native, native);
  EXPECT_GT(q.stats.kabsch_calls, 0u);
  EXPECT_GT(q.stats.scored_pairs, 0u);
}

TEST(Quality, TransformReportedMatchesScores) {
  Rng rng(9);
  const Protein native = bio::make_protein("native", 70, rng);
  Protein model = native.transformed(bio::random_transform(rng));
  const QualityResult q = score_model_by_index(model, native);
  // Applying the reported transform must superpose the model onto native.
  double worst = 0.0;
  for (std::size_t i = 0; i < native.size(); ++i)
    worst = std::max(worst, distance(q.transform.apply(model[i].ca), native[i].ca));
  EXPECT_LT(worst, 0.01);
}

}  // namespace
}  // namespace rck::core
