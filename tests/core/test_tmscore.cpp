#include "rck/core/tmscore.hpp"

#include <gtest/gtest.h>

#include "rck/bio/synthetic.hpp"

namespace rck::core {
namespace {

using bio::Rng;
using bio::Transform;
using bio::Vec3;

TEST(D0, PaperFormula) {
  // d0 = 1.24 (L-15)^(1/3) - 1.8
  EXPECT_NEAR(d0_of_length(100), 1.24 * std::cbrt(85.0) - 1.8, 1e-12);
  EXPECT_NEAR(d0_of_length(300), 1.24 * std::cbrt(285.0) - 1.8, 1e-12);
}

TEST(D0, SmallLengthClamp) {
  EXPECT_DOUBLE_EQ(d0_of_length(21), 0.5);
  EXPECT_DOUBLE_EQ(d0_of_length(5), 0.5);
  // Just above the clamp boundary the formula may still be < 0.5.
  EXPECT_GE(d0_of_length(22), 0.5);
}

TEST(D0, MonotoneInLength) {
  for (int l = 22; l < 600; l += 7)
    EXPECT_LT(d0_of_length(l), d0_of_length(l + 7));
}

TEST(TmOfTransform, PerfectMatchScoresOne) {
  Rng rng(1);
  const auto p = bio::make_protein("p", 60, rng);
  const auto x = p.ca_coords();
  const double tm =
      tm_of_transform(x, x, Transform{}, static_cast<int>(x.size()),
                      d0_of_length(static_cast<int>(x.size())));
  EXPECT_NEAR(tm, 1.0, 1e-12);
}

TEST(TmOfTransform, BoundedByAlignedFraction) {
  // Normalizing by lnorm > aligned pairs bounds TM by n_ali / lnorm.
  Rng rng(2);
  const auto p = bio::make_protein("p", 40, rng);
  const auto x = p.ca_coords();
  const double tm = tm_of_transform(x, x, Transform{}, 80, d0_of_length(80));
  EXPECT_NEAR(tm, 0.5, 1e-12);
}

TEST(TmOfTransform, FarApartScoresNearZero) {
  Rng rng(3);
  const auto p = bio::make_protein("p", 50, rng);
  const auto x = p.ca_coords();
  auto y = x;
  for (Vec3& v : y) v += {1000, 0, 0};
  const double tm = tm_of_transform(x, y, Transform{}, 50, d0_of_length(50));
  EXPECT_LT(tm, 1e-4);
}

TEST(TmSearch, RecoversRigidMotion) {
  Rng rng(4);
  const auto p = bio::make_protein("p", 80, rng);
  const auto x = p.ca_coords();
  const Transform truth = bio::random_transform(rng);
  std::vector<Vec3> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = truth.apply(x[i]);

  const int lnorm = static_cast<int>(x.size());
  const TmSearchResult r = tmscore_search(x, y, lnorm, d0_of_length(lnorm));
  EXPECT_GT(r.tm, 0.999);
}

TEST(TmSearch, PartialMatchFindsCommonCore) {
  // First half matches rigidly, second half is garbage: the search must
  // lock onto the matching half rather than compromise across everything.
  Rng rng(5);
  const auto p = bio::make_protein("p", 100, rng);
  const auto x = p.ca_coords();
  auto y = x;
  const Transform t = bio::random_transform(rng);
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = t.apply(y[i]);
    if (i >= 50) y[i] += {200.0 + static_cast<double>(i), 50, -30};
  }
  const int lnorm = 100;
  const double d0 = d0_of_length(lnorm);
  const TmSearchResult r = tmscore_search(x, y, lnorm, d0);
  // Half the residues can align perfectly: TM ~ 0.5.
  EXPECT_GT(r.tm, 0.45);
  // And the found transform must superpose the first half tightly.
  int close = 0;
  for (std::size_t i = 0; i < 50; ++i)
    close += distance(r.transform.apply(x[i]), y[i]) < 1.0;
  EXPECT_GE(close, 45);
}

TEST(TmSearch, DegenerateInputs) {
  const std::vector<Vec3> none;
  const TmSearchResult r0 = tmscore_search(none, none, 10, 2.0);
  EXPECT_DOUBLE_EQ(r0.tm, 0.0);

  const std::vector<Vec3> two{{0, 0, 0}, {3.8, 0, 0}};
  const TmSearchResult r2 = tmscore_search(two, two, 10, 2.0);
  EXPECT_DOUBLE_EQ(r2.tm, 0.0);  // < 3 pairs: no search
}

TEST(TmSearch, FastModeCloseToFull) {
  Rng rng(6);
  const auto p = bio::make_protein("p", 120, rng);
  const auto x = p.ca_coords();
  Rng rng2(7);
  const auto q = bio::perturb(p, "q", rng2);
  // Use the common prefix as an "alignment".
  const std::size_t n = std::min(x.size(), q.size());
  std::vector<Vec3> xa(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(n));
  const auto qc = q.ca_coords();
  std::vector<Vec3> ya(qc.begin(), qc.begin() + static_cast<std::ptrdiff_t>(n));

  const int lnorm = static_cast<int>(n);
  const double d0 = d0_of_length(lnorm);
  TmSearchOptions fast;
  fast.fast = true;
  const double tm_fast = tmscore_search(xa, ya, lnorm, d0, fast).tm;
  const double tm_full = tmscore_search(xa, ya, lnorm, d0).tm;
  EXPECT_GE(tm_full + 1e-12, tm_fast);       // full search can only be better
  EXPECT_GT(tm_fast, 0.6 * tm_full);         // but fast is not useless
}

TEST(TmSearch, StatsAccumulate) {
  Rng rng(8);
  const auto p = bio::make_protein("p", 50, rng);
  const auto x = p.ca_coords();
  AlignStats stats;
  tmscore_search(x, x, 50, d0_of_length(50), {}, &stats);
  EXPECT_GT(stats.kabsch_calls, 0u);
  EXPECT_GT(stats.scored_pairs, 0u);
}

TEST(TmSearch, DeterministicAcrossCalls) {
  Rng rng(9);
  const auto p = bio::make_protein("p", 70, rng);
  const auto q = bio::make_protein("q", 70, rng);
  const auto x = p.ca_coords();
  const auto y = q.ca_coords();
  const TmSearchResult a = tmscore_search(x, y, 70, d0_of_length(70));
  const TmSearchResult b = tmscore_search(x, y, 70, d0_of_length(70));
  EXPECT_DOUBLE_EQ(a.tm, b.tm);
  EXPECT_EQ(a.transform.rot, b.transform.rot);
}

/// TM of the returned transform must equal the returned tm (the search's
/// bookkeeping can't drift from the actual score), across sizes.
class TmSearchConsistency : public ::testing::TestWithParam<int> {};

TEST_P(TmSearchConsistency, ReturnedTransformAchievesReturnedScore) {
  const int len = GetParam();
  Rng rng(static_cast<std::uint64_t>(len));
  const auto p = bio::make_protein("p", len, rng);
  const auto child = bio::perturb(p, "c", rng);
  const std::size_t n = std::min(p.size(), child.size());
  const auto xc = p.ca_coords();
  const auto yc = child.ca_coords();
  std::vector<Vec3> xa(xc.begin(), xc.begin() + static_cast<std::ptrdiff_t>(n));
  std::vector<Vec3> ya(yc.begin(), yc.begin() + static_cast<std::ptrdiff_t>(n));

  const int lnorm = static_cast<int>(n);
  const double d0 = d0_of_length(lnorm);
  const TmSearchResult r = tmscore_search(xa, ya, lnorm, d0);
  const double recomputed = tm_of_transform(xa, ya, r.transform, lnorm, d0);
  EXPECT_NEAR(recomputed, r.tm, 1e-9);
  EXPECT_GE(r.tm, 0.0);
  EXPECT_LE(r.tm, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Lengths, TmSearchConsistency,
                         ::testing::Values(20, 45, 90, 150, 240));

}  // namespace
}  // namespace rck::core
