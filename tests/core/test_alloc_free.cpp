// Allocation-freedom regression test for the TM-align workspace path.
//
// The per-slave contract of TmAlignWorkspace is: after a warm-up call on the
// largest problem a slave will see, further tmalign() calls perform ZERO
// heap allocations — every buffer (SoA copies, DP matrices, score rows,
// candidate alignments, selection scratch) reuses its capacity. This file
// replaces the global allocation functions with counting versions, so it
// must be its own test binary: the interposition affects every allocation
// in the process.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "rck/bio/synthetic.hpp"
#include "rck/core/batch.hpp"
#include "rck/core/tmalign.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0)
    throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size, alignof(std::max_align_t)); }
void* operator new[](std::size_t size) { return counted_alloc(size, alignof(std::max_align_t)); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace rck::core {
namespace {

TEST(AllocFree, SteadyStateTmalignAllocatesNothing) {
  bio::Rng rng(11);
  const bio::Protein a = bio::make_protein("a", 130, rng);
  const bio::Protein b = bio::perturb(a, "b", rng);
  const bio::Protein c = bio::make_protein("c", 90, rng);

  TmAlignWorkspace ws;
  // Warm-up: grows every buffer to its steady-state capacity. Two rounds so
  // buffers sized by data-dependent intermediates (selection sets, candidate
  // alignments) see their full range too.
  (void)tmalign(a, b, ws);
  (void)tmalign(a, c, ws);
  (void)tmalign(a, b, ws);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  double sink = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    sink += tmalign(a, b, ws).tm_norm_a;
    sink += tmalign(a, c, ws).tm_norm_a;  // smaller problem: capacity reuse
    sink += tmalign(c, b, ws).tm_norm_a;
  }
  const std::uint64_t during = g_allocations.load(std::memory_order_relaxed) - before;

  EXPECT_GT(sink, 0.0);
  EXPECT_EQ(during, 0u) << "steady-state tmalign() calls hit the heap";
}

TEST(AllocFree, SteadyStateAlignBatchAllocatesNothing) {
  // Same contract for the lane-batched driver: once the BatchWorkspace has
  // grown to the run's maximal chunk, batched calls — including ragged
  // chunks and chunks smaller than earlier ones — never hit the heap.
  bio::Rng rng(12);
  const bio::Protein a = bio::make_protein("a", 130, rng);
  const bio::Protein b = bio::perturb(a, "b", rng);
  const bio::Protein c = bio::make_protein("c", 90, rng);
  const bio::Protein d = bio::make_protein("d", 60, rng);

  const BatchItem full[4] = {{&a, &b}, {&a, &c}, {&c, &b}, {&a, &d}};
  const BatchItem ragged[3] = {{&d, &c}, {&b, &a}, {&c, &d}};

  BatchWorkspace ws;
  // Warm-up rounds, as above.
  kern::align_batch(full, 4, ws);
  kern::align_batch(ragged, 3, ws);
  kern::align_batch(full, 4, ws);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  double sink = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    kern::align_batch(full, 4, ws);
    sink += ws.result(0).tm_norm_a;
    kern::align_batch(ragged, 3, ws);  // ragged chunk: capacity reuse
    sink += ws.result(2).tm_norm_a;
    kern::align_batch(full, 1, ws);  // K=1 degenerate chunk
    sink += ws.result(0).tm_norm_a;
  }
  const std::uint64_t during = g_allocations.load(std::memory_order_relaxed) - before;

  EXPECT_GT(sink, 0.0);
  EXPECT_EQ(during, 0u) << "steady-state align_batch() calls hit the heap";
}

TEST(AllocFree, CounterSeesOrdinaryAllocations) {
  // Sanity check that the interposition actually works — otherwise the test
  // above would pass vacuously.
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  std::vector<double>* v = new std::vector<double>(1000);
  const std::uint64_t during = g_allocations.load(std::memory_order_relaxed) - before;
  delete v;
  EXPECT_GE(during, 2u);  // the vector object and its buffer
}

}  // namespace
}  // namespace rck::core
