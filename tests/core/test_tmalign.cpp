#include "rck/core/error.hpp"
#include "rck/core/tmalign.hpp"

#include <gtest/gtest.h>

#include "rck/bio/dataset.hpp"
#include "rck/bio/synthetic.hpp"

namespace rck::core {
namespace {

using bio::Protein;
using bio::Rng;

TEST(TmAlign, SelfAlignmentIsPerfect) {
  Rng rng(1);
  const Protein p = bio::make_protein("p", 120, rng);
  const TmAlignResult r = tmalign(p, p);
  EXPECT_NEAR(r.tm_norm_a, 1.0, 1e-6);
  EXPECT_NEAR(r.tm_norm_b, 1.0, 1e-6);
  EXPECT_NEAR(r.rmsd, 0.0, 1e-6);
  EXPECT_EQ(r.aligned_length, 120);
  EXPECT_NEAR(r.seq_identity, 1.0, 1e-12);
}

TEST(TmAlign, RigidMotionInvariance) {
  // TM-align must undo an arbitrary rigid motion exactly.
  Rng rng(2);
  const Protein p = bio::make_protein("p", 90, rng);
  const Protein q = p.transformed(bio::random_transform(rng));
  const TmAlignResult r = tmalign(p, q);
  EXPECT_GT(r.tm(), 0.999);
  EXPECT_LT(r.rmsd, 0.01);
  EXPECT_EQ(r.aligned_length, 90);
}

TEST(TmAlign, FamilyMembersScoreHigh) {
  Rng rng(3);
  const Protein p = bio::make_protein("p", 150, rng);
  const Protein q = bio::perturb(p, "q", rng);
  const TmAlignResult r = tmalign(p, q);
  EXPECT_GT(r.tm(), 0.5) << "same-fold pair must clear the fold threshold";
  EXPECT_LT(r.rmsd, 4.0);
}

TEST(TmAlign, UnrelatedChainsScoreLow) {
  Rng rng(4);
  const Protein p = bio::make_protein("p", 150, rng);
  const Protein q = bio::make_protein("q", 150, rng);
  const TmAlignResult r = tmalign(p, q);
  EXPECT_LT(r.tm(), 0.4) << "random folds must stay below the threshold";
}

TEST(TmAlign, TransformMapsAOntoB) {
  Rng rng(5);
  const Protein p = bio::make_protein("p", 100, rng);
  const Protein q = p.transformed(bio::random_transform(rng));
  const TmAlignResult r = tmalign(p, q);
  // Applying the reported transform to a must land on b.
  for (std::size_t j = 0; j < r.y2x.size(); ++j) {
    if (r.y2x[j] < 0) continue;
    const auto& ca_a = p[static_cast<std::size_t>(r.y2x[j])].ca;
    const auto& ca_b = q[j].ca;
    EXPECT_LT(distance(r.transform.apply(ca_a), ca_b), 0.5);
  }
}

TEST(TmAlign, NormalizationAsymmetry) {
  // A short chain aligned to a long one: TM normalized by the long chain
  // is necessarily smaller.
  Rng rng(6);
  const Protein long_p = bio::make_protein("long", 200, rng);
  // Make the short chain a fragment of the long one (a perfect subchain).
  std::vector<bio::Residue> sub(long_p.residues().begin(),
                                long_p.residues().begin() + 80);
  const Protein short_p("short", sub);

  const TmAlignResult r = tmalign(short_p, long_p);
  EXPECT_GT(r.tm_norm_a, 0.9);  // normalized by 80: nearly perfect
  EXPECT_LT(r.tm_norm_b, 0.6);  // normalized by 200: at most 80/200 + slack
  EXPECT_GT(r.aligned_length, 70);
}

TEST(TmAlign, SymmetryOfScores) {
  // tmalign(a,b) and tmalign(b,a) must give (approximately) mirrored
  // normalizations; the heuristic search may differ slightly.
  Rng rng(7);
  const Protein p = bio::make_protein("p", 110, rng);
  const Protein q = bio::perturb(p, "q", rng);
  const TmAlignResult ab = tmalign(p, q);
  const TmAlignResult ba = tmalign(q, p);
  EXPECT_NEAR(ab.tm_norm_a, ba.tm_norm_b, 0.08);
  EXPECT_NEAR(ab.tm_norm_b, ba.tm_norm_a, 0.08);
}

TEST(TmAlign, RejectsTinyChains) {
  Rng rng(8);
  const Protein ok = bio::make_protein("ok", 30, rng);
  const Protein tiny("tiny", {{'A', 1, {0, 0, 0}},
                              {'G', 2, {3.8, 0, 0}},
                              {'L', 3, {7.6, 0, 0}},
                              {'K', 4, {11.4, 0, 0}}});
  EXPECT_THROW(tmalign(tiny, ok), rck::core::CoreError);
  EXPECT_THROW(tmalign(ok, tiny), rck::core::CoreError);
}

TEST(TmAlign, Deterministic) {
  Rng rng(9);
  const Protein p = bio::make_protein("p", 130, rng);
  const Protein q = bio::make_protein("q", 100, rng);
  const TmAlignResult a = tmalign(p, q);
  const TmAlignResult b = tmalign(p, q);
  EXPECT_DOUBLE_EQ(a.tm_norm_a, b.tm_norm_a);
  EXPECT_DOUBLE_EQ(a.rmsd, b.rmsd);
  EXPECT_EQ(a.y2x, b.y2x);
  EXPECT_EQ(a.stats, b.stats);
}

TEST(TmAlign, StatsArePopulated) {
  Rng rng(10);
  const Protein p = bio::make_protein("p", 80, rng);
  const Protein q = bio::make_protein("q", 80, rng);
  const TmAlignResult r = tmalign(p, q);
  EXPECT_GT(r.stats.dp_cells, 80u * 80u);  // at least a few NW solves
  EXPECT_GT(r.stats.kabsch_calls, 10u);
  EXPECT_GT(r.stats.scored_pairs, 0u);
  EXPECT_GT(r.stats.matrix_cells, 0u);
  EXPECT_GT(r.stats.iterations, 0u);
}

TEST(TmAlign, AlignmentMappingIsValid) {
  Rng rng(11);
  const Protein p = bio::make_protein("p", 95, rng);
  const Protein q = bio::make_protein("q", 120, rng);
  const TmAlignResult r = tmalign(p, q);
  ASSERT_EQ(r.y2x.size(), q.size());
  int last = -1;
  int count = 0;
  for (int v : r.y2x) {
    if (v < 0) continue;
    EXPECT_GE(v, 0);
    EXPECT_LT(v, static_cast<int>(p.size()));
    EXPECT_GT(v, last);  // strictly increasing (sequential alignment)
    last = v;
    ++count;
  }
  EXPECT_EQ(count, r.aligned_length);
}

TEST(TmAlign, FoldDiscriminationOnFamilies) {
  // Within-family TM must exceed cross-family TM for the tiny dataset.
  const auto ds = bio::build_dataset(bio::tiny_spec());
  // tiny: a_0,a_1,a_2, b_0,b_1,b_2, c_0,c_1
  const double within = tmalign(ds[0], ds[1]).tm();
  const double cross = tmalign(ds[0], ds[3]).tm();
  EXPECT_GT(within, cross);
  EXPECT_GT(within, 0.5);
  EXPECT_LT(cross, 0.45);
}

TEST(TmAlignOptions, D0OverrideChangesScores) {
  Rng rng(20);
  const Protein p = bio::make_protein("p", 100, rng);
  const Protein q = bio::perturb(p, "q", rng);
  TmAlignOptions loose;
  loose.d0_override = 10.0;  // generous distance scale: higher TM
  TmAlignOptions tight;
  tight.d0_override = 1.0;  // strict: lower TM
  const double base = tmalign(p, q).tm();
  const double hi = tmalign(p, q, loose).tm();
  const double lo = tmalign(p, q, tight).tm();
  EXPECT_GT(hi, base);
  EXPECT_LT(lo, base);
}

TEST(TmAlignOptions, LnormOverrideUnifiesNormalizations) {
  Rng rng(21);
  const Protein p = bio::make_protein("p", 80, rng);
  const Protein q = bio::make_protein("q", 140, rng);
  TmAlignOptions opts;
  opts.lnorm_override = 100;
  const TmAlignResult r = tmalign(p, q, opts);
  // Both scores use the same normalization, so they are equal.
  EXPECT_DOUBLE_EQ(r.tm_norm_a, r.tm_norm_b);
}

TEST(TmAlignOptions, FastPresetCheaperAndClose) {
  Rng rng(22);
  const Protein p = bio::make_protein("p", 150, rng);
  const Protein q = bio::perturb(p, "q", rng);
  const TmAlignResult full = tmalign(p, q);
  const TmAlignResult fast = tmalign(p, q, fast_tmalign_options());
  EXPECT_LT(fast.stats.total_ops(), full.stats.total_ops());
  EXPECT_GT(fast.tm(), 0.9 * full.tm());
}

/// Property sweep over length combinations: scores bounded, RMSD
/// non-negative, aligned length bounded by min length.
class TmAlignProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TmAlignProperty, Invariants) {
  const auto [la, lb] = GetParam();
  Rng rng(static_cast<std::uint64_t>(la * 997 + lb));
  const Protein a = bio::make_protein("a", la, rng);
  const Protein b = bio::make_protein("b", lb, rng);
  const TmAlignResult r = tmalign(a, b);
  EXPECT_GE(r.tm_norm_a, 0.0);
  EXPECT_LE(r.tm_norm_a, 1.0 + 1e-9);
  EXPECT_GE(r.tm_norm_b, 0.0);
  EXPECT_LE(r.tm_norm_b, 1.0 + 1e-9);
  EXPECT_GE(r.rmsd, 0.0);
  EXPECT_GE(r.aligned_length, 3);
  EXPECT_LE(r.aligned_length, std::min(la, lb));
  EXPECT_GE(r.seq_identity, 0.0);
  EXPECT_LE(r.seq_identity, 1.0);
}

INSTANTIATE_TEST_SUITE_P(LengthGrid, TmAlignProperty,
                         ::testing::Values(std::tuple{20, 20}, std::tuple{20, 100},
                                           std::tuple{100, 20}, std::tuple{60, 61},
                                           std::tuple{150, 150}, std::tuple{40, 200}));

}  // namespace
}  // namespace rck::core
