#include "rck/core/sec_struct.hpp"

#include <gtest/gtest.h>

#include "rck/bio/synthetic.hpp"

namespace rck::core {
namespace {

using bio::SsType;
using bio::Vec3;

TEST(SecStr, IdealHelixDistances) {
  // Ideal alpha-helix template distances -> helix.
  EXPECT_EQ(sec_str(5.45, 5.18, 6.37, 5.45, 5.18, 5.45), SsType::Helix);
}

TEST(SecStr, IdealStrandDistances) {
  EXPECT_EQ(sec_str(6.1, 10.4, 13.0, 6.1, 10.4, 6.1), SsType::Strand);
}

TEST(SecStr, TurnWhenCompact) {
  // Not helix, not strand, but d15 < 8 -> turn.
  EXPECT_EQ(sec_str(9.0, 9.0, 7.5, 9.0, 9.0, 9.0), SsType::Turn);
}

TEST(SecStr, CoilOtherwise) {
  EXPECT_EQ(sec_str(9.0, 9.0, 12.0, 9.0, 9.0, 9.0), SsType::Coil);
}

TEST(SecStr, HelixToleranceBoundary) {
  // Just inside the 2.1 A window on d13.
  EXPECT_EQ(sec_str(5.45 + 2.0, 5.18, 6.37, 5.45, 5.18, 5.45), SsType::Helix);
  // Just outside (and d15 = 6.37 < 8, so it degrades to turn).
  EXPECT_EQ(sec_str(5.45 + 2.2, 5.18, 6.37, 5.45, 5.18, 5.45), SsType::Turn);
}

TEST(AssignSS, ShortChainsAllCoil) {
  const std::vector<Vec3> four{{0, 0, 0}, {3.8, 0, 0}, {7.6, 0, 0}, {11.4, 0, 0}};
  const auto sec = assign_secondary_structure(four);
  ASSERT_EQ(sec.size(), 4u);
  for (SsType t : sec) EXPECT_EQ(t, SsType::Coil);
}

TEST(AssignSS, TerminiAreCoil) {
  bio::Rng rng(1);
  const bio::StructurePlan plan{{SsType::Helix, 20}};
  const auto pts = bio::build_backbone(plan, rng);
  const auto sec = assign_secondary_structure(pts);
  EXPECT_EQ(sec.front(), SsType::Coil);
  EXPECT_EQ(sec[1], SsType::Coil);
  EXPECT_EQ(sec[sec.size() - 2], SsType::Coil);
  EXPECT_EQ(sec.back(), SsType::Coil);
}

TEST(AssignSS, RecoversGeneratorPlanMajority) {
  // Generate a protein from a known plan; interior residues of structured
  // segments should be recovered with high accuracy.
  bio::Rng rng(2);
  const bio::StructurePlan plan{{SsType::Helix, 15},
                                {SsType::Coil, 5},
                                {SsType::Strand, 10},
                                {SsType::Coil, 4},
                                {SsType::Helix, 12}};
  const auto pts = bio::build_backbone(plan, rng);
  const auto sec = assign_secondary_structure(pts);

  auto count_in = [&](std::size_t lo, std::size_t hi, SsType want) {
    int n = 0;
    for (std::size_t i = lo; i < hi; ++i) n += sec[i] == want;
    return n;
  };
  // Helix 1 spans [0,15): check interior [3,12).
  EXPECT_GE(count_in(3, 12, SsType::Helix), 8);
  // Strand spans [20,30): interior [22,28).
  EXPECT_GE(count_in(22, 28, SsType::Strand), 5);
  // Helix 2 spans [34,46): interior [37,43).
  EXPECT_GE(count_in(37, 43, SsType::Helix), 5);
}

TEST(SsString, MatchesAssignment) {
  bio::Rng rng(3);
  const auto p = bio::make_protein("x", 60, rng);
  const auto pts = p.ca_coords();
  const std::string s = secondary_structure_string(pts);
  const auto sec = assign_secondary_structure(pts);
  ASSERT_EQ(s.size(), sec.size());
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s[i], ss_char(sec[i]));
}

TEST(SsChar, AllCodes) {
  EXPECT_EQ(ss_char(SsType::Helix), 'H');
  EXPECT_EQ(ss_char(SsType::Strand), 'E');
  EXPECT_EQ(ss_char(SsType::Turn), 'T');
  EXPECT_EQ(ss_char(SsType::Coil), 'C');
}

}  // namespace
}  // namespace rck::core
