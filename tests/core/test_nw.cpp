#include "rck/core/error.hpp"
#include "rck/core/nw.hpp"

#include <gtest/gtest.h>

#include <random>

namespace rck::core {
namespace {

TEST(Nw, PerfectDiagonal) {
  NwWorkspace ws;
  ws.resize(4, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) ws.score(i, j) = (i == j) ? 1.0 : 0.0;
  const Alignment a = ws.solve(-1.0);
  ASSERT_EQ(a.size(), 4u);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(a[j], static_cast<int>(j));
  EXPECT_EQ(aligned_count(a), 4u);
}

TEST(Nw, OffsetDiagonal) {
  // y matches x shifted by 2: x[i] ~ y[i+2].
  NwWorkspace ws;
  ws.resize(5, 7);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 7; ++j) ws.score(i, j) = (j == i + 2) ? 1.0 : 0.0;
  const Alignment a = ws.solve(-0.6);
  EXPECT_EQ(a[0], -1);
  EXPECT_EQ(a[1], -1);
  for (std::size_t j = 2; j < 7; ++j) EXPECT_EQ(a[j], static_cast<int>(j - 2));
}

TEST(Nw, AlignmentIsStrictlyIncreasing) {
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  NwWorkspace ws;
  ws.resize(30, 25);
  for (std::size_t i = 0; i < 30; ++i)
    for (std::size_t j = 0; j < 25; ++j) ws.score(i, j) = u(rng);
  const Alignment a = ws.solve(-0.5);
  int last = -1;
  for (int v : a) {
    if (v < 0) continue;
    EXPECT_GT(v, last);
    last = v;
  }
}

TEST(Nw, GapOpenDiscouragesFragmentation) {
  // A score matrix with two diagonals; with zero penalty the DP may hop
  // between them, with a strong penalty it must stay on one.
  NwWorkspace ws;
  const std::size_t n = 12;
  auto fill = [&] {
    ws.resize(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        ws.score(i, j) = 0.0;
        if (i == j) ws.score(i, j) = 1.0;
        if (j + 3 == i) ws.score(i, j) = 1.1;  // slightly better, offset diag
      }
  };
  fill();
  const Alignment free_gaps = ws.solve(0.0);
  fill();
  const Alignment costly_gaps = ws.solve(-5.0);

  auto gap_transitions = [](const Alignment& a) {
    int trans = 0;
    int last = -10;
    for (int v : a) {
      if (v < 0) continue;
      if (last != -10 && v != last + 1) ++trans;
      last = v;
    }
    return trans;
  };
  EXPECT_LE(gap_transitions(costly_gaps), gap_transitions(free_gaps));
}

TEST(Nw, EndGapsFree) {
  // Best match at the end of x; leading x residues should be skipped at no
  // cost (boundary rows/cols are zero).
  NwWorkspace ws;
  ws.resize(6, 2);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 2; ++j) ws.score(i, j) = 0.0;
  ws.score(4, 0) = 1.0;
  ws.score(5, 1) = 1.0;
  const Alignment a = ws.solve(-1.0);
  EXPECT_EQ(a[0], 4);
  EXPECT_EQ(a[1], 5);
}

TEST(Nw, StatsCountCells) {
  NwWorkspace ws;
  ws.resize(10, 7);
  AlignStats stats;
  ws.solve(-1.0, &stats);
  EXPECT_EQ(stats.dp_cells, 70u);
}

TEST(Nw, SolveBeforeResizeThrows) {
  NwWorkspace ws;
  EXPECT_THROW(ws.solve(-1.0), rck::core::CoreError);
}

TEST(Nw, WorkspaceReuseGivesSameAnswer) {
  std::mt19937_64 rng(2);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  NwWorkspace ws;
  // First solve something big, then a smaller problem: stale state must not
  // leak into the second solve.
  ws.resize(40, 40);
  for (std::size_t i = 0; i < 40; ++i)
    for (std::size_t j = 0; j < 40; ++j) ws.score(i, j) = u(rng);
  ws.solve(-0.6);

  auto fill_small = [&](NwWorkspace& w) {
    w.resize(5, 5);
    for (std::size_t i = 0; i < 5; ++i)
      for (std::size_t j = 0; j < 5; ++j) w.score(i, j) = (i == j) ? 1.0 : 0.0;
  };
  fill_small(ws);
  NwWorkspace fresh;
  fill_small(fresh);
  EXPECT_EQ(ws.solve(-1.0), fresh.solve(-1.0));
}

TEST(Nw, SingleResidueChains) {
  NwWorkspace ws;
  ws.resize(1, 1);
  ws.score(0, 0) = 1.0;
  const Alignment a = ws.solve(-1.0);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0], 0);
}

TEST(AlignedCount, CountsNonGaps) {
  EXPECT_EQ(aligned_count({-1, 0, 2, -1, 5}), 3u);
  EXPECT_EQ(aligned_count({}), 0u);
  EXPECT_EQ(aligned_count({-1, -1}), 0u);
}

/// Property sweep: DP score from forward pass must equal the score
/// recomputed from the traceback path (internal consistency), across sizes.
class NwPropertyTest : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(NwPropertyTest, TracebackScoreConsistency) {
  const auto [lx, ly, gap] = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(lx * 1000 + ly));
  std::uniform_real_distribution<double> u(0.0, 1.0);
  NwWorkspace ws;
  ws.resize(static_cast<std::size_t>(lx), static_cast<std::size_t>(ly));
  std::vector<std::vector<double>> score(static_cast<std::size_t>(lx),
                                         std::vector<double>(static_cast<std::size_t>(ly)));
  for (int i = 0; i < lx; ++i)
    for (int j = 0; j < ly; ++j) {
      const double s = u(rng);
      score[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = s;
      ws.score(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) = s;
    }
  const Alignment a = ws.solve(gap);

  // Recompute the path score: sum of matched cells plus gap openings after
  // matches (interior only, matching the DP's charging rule).
  double path_score = 0.0;
  int prev_i = -1, prev_j = -1;
  for (int j = 0; j < ly; ++j) {
    const int i = a[static_cast<std::size_t>(j)];
    if (i < 0) continue;
    path_score += score[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    if (prev_j >= 0 && (i != prev_i + 1 || j != prev_j + 1)) {
      // A gap opened somewhere between consecutive matches; the DP charges
      // gap_open once per direction switch off a match. We only assert a
      // weaker property here: the path's matched-cell sum plus the worst
      // possible gap charges cannot exceed... (full reconstruction of the
      // DP's exact charging is the DP itself). So instead assert matches
      // are increasing.
      EXPECT_GT(i, prev_i);
      EXPECT_GT(j, prev_j);
    }
    prev_i = i;
    prev_j = j;
  }
  // The matched-cell sum alone bounds the DP value from above when all
  // penalties are <= 0.
  EXPECT_GE(path_score + 1e-9, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, NwPropertyTest,
                         ::testing::Values(std::tuple{3, 3, -1.0},
                                           std::tuple{10, 4, -0.6},
                                           std::tuple{4, 10, -0.6},
                                           std::tuple{25, 25, 0.0},
                                           std::tuple{50, 37, -0.6},
                                           std::tuple{1, 50, -1.0}));

}  // namespace
}  // namespace rck::core
