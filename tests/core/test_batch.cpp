// Property suite for inter-pair lane batching (kern::align_batch).
//
// The contract under test is strict bit-identity: for every job in a batch,
// the alignment, transform, all four reported scores AND the AlignStats
// work counters (which drive the simulator's cycle charges) must equal a
// solo tmalign() of the same pair exactly — across ragged batches, K = 1,
// batch sizes that do not divide the job count, and both kernel paths
// (scalar fallback and AVX2 when available). Plain EXPECT_EQ on doubles is
// deliberate: "close" would hide a broken determinism contract.
#include "rck/core/batch.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "rck/bio/synthetic.hpp"
#include "rck/core/error.hpp"
#include "rck/core/simd_kernels.hpp"
#include "rck/core/tmalign.hpp"

namespace rck::core {
namespace {

using bio::Protein;
using bio::Rng;

bool transforms_identical(const bio::Transform& a, const bio::Transform& b) {
  return std::memcmp(&a, &b, sizeof(bio::Transform)) == 0;
}

void expect_identical(const TmAlignResult& got, const TmAlignResult& want,
                      const char* what) {
  EXPECT_EQ(got.tm_norm_a, want.tm_norm_a) << what;
  EXPECT_EQ(got.tm_norm_b, want.tm_norm_b) << what;
  EXPECT_EQ(got.rmsd, want.rmsd) << what;
  EXPECT_EQ(got.aligned_length, want.aligned_length) << what;
  EXPECT_EQ(got.seq_identity, want.seq_identity) << what;
  EXPECT_TRUE(transforms_identical(got.transform, want.transform)) << what;
  EXPECT_EQ(got.y2x, want.y2x) << what;
  EXPECT_TRUE(got.stats == want.stats)
      << what << ": AlignStats diverged (cycle charges would change)";
}

/// A job mix that exercises the lockstep masks: an identical pair (trivially
/// converging refinement), a perturbed same-fold pair, an unrelated pair
/// (hybrid/local participation differs), and strongly mixed lengths
/// (ragged-lane garbage regions).
std::vector<Protein> make_mixed_chains() {
  Rng rng(101);
  std::vector<Protein> out;
  out.push_back(bio::make_protein("a", 150, rng));
  out.push_back(bio::perturb(out[0], "b", rng));
  out.push_back(bio::make_protein("c", 37, rng));
  out.push_back(bio::make_protein("d", 96, rng));
  out.push_back(out[0].transformed(bio::random_transform(rng)));
  out.push_back(bio::make_protein("f", 201, rng));
  out.push_back(bio::perturb(out[3], "g", rng));
  return out;
}

std::vector<BatchItem> make_jobs(const std::vector<Protein>& chains) {
  // All ordered pairs of distinct chains: 42 jobs, not divisible by 4.
  std::vector<BatchItem> jobs;
  for (std::size_t i = 0; i < chains.size(); ++i)
    for (std::size_t j = 0; j < chains.size(); ++j)
      if (i != j) jobs.push_back(BatchItem{&chains[i], &chains[j]});
  return jobs;
}

void run_identity_sweep(const TmAlignOptions& opts) {
  const std::vector<Protein> chains = make_mixed_chains();
  const std::vector<BatchItem> jobs = make_jobs(chains);

  // Solo references, one workspace reused like a slave would.
  std::vector<TmAlignResult> ref;
  ref.reserve(jobs.size());
  TmAlignWorkspace solo;
  for (const BatchItem& job : jobs) ref.push_back(tmalign(*job.a, *job.b, solo, opts));

  // Batched, for every chunk size 1..kBatchLanes (none divide 42 except 1
  // and 2, so the ragged final chunk is exercised too).
  BatchWorkspace bw;
  for (std::size_t chunk = 1; chunk <= kern::kBatchLanes; ++chunk) {
    for (std::size_t base = 0; base < jobs.size(); base += chunk) {
      const std::size_t n = std::min(chunk, jobs.size() - base);
      kern::align_batch(jobs.data() + base, n, bw, opts);
      for (std::size_t k = 0; k < n; ++k) {
        SCOPED_TRACE(::testing::Message()
                     << "chunk=" << chunk << " job=" << base + k);
        expect_identical(bw.result(k), ref[base + k], "batched vs solo");
      }
    }
  }
}

TEST(AlignBatch, BitIdenticalToSoloAcrossRaggedChunks) {
  run_identity_sweep(TmAlignOptions{});
}

TEST(AlignBatch, BitIdenticalWithFastOptions) {
  run_identity_sweep(fast_tmalign_options());
}

TEST(AlignBatch, BitIdenticalOnBothKernelPaths) {
  // The scalar fallback and the AVX2 path must agree with each other (and
  // with solo) job for job. On hosts without AVX2 the toggle is a no-op and
  // this degenerates to running the sweep twice — still a valid identity.
  const bool had = kern::simd_enabled();
  const std::vector<Protein> chains = make_mixed_chains();
  const std::vector<BatchItem> jobs = make_jobs(chains);

  kern::set_simd_enabled(false);
  std::vector<TmAlignResult> scalar_solo;
  TmAlignWorkspace solo;
  for (const BatchItem& job : jobs) scalar_solo.push_back(tmalign(*job.a, *job.b, solo));

  BatchWorkspace bw;
  for (const bool simd : {false, true}) {
    kern::set_simd_enabled(simd);
    for (std::size_t base = 0; base < jobs.size(); base += kern::kBatchLanes) {
      const std::size_t n = std::min(kern::kBatchLanes, jobs.size() - base);
      kern::align_batch(jobs.data() + base, n, bw);
      for (std::size_t k = 0; k < n; ++k) {
        SCOPED_TRACE(::testing::Message()
                     << "simd=" << simd << " job=" << base + k);
        expect_identical(bw.result(k), scalar_solo[base + k],
                         "batched vs scalar solo");
      }
    }
  }
  kern::set_simd_enabled(had);
}

TEST(AlignBatch, SingleJobDegeneratesToSolo) {
  Rng rng(7);
  const Protein a = bio::make_protein("a", 80, rng);
  const Protein b = bio::perturb(a, "b", rng);
  const TmAlignResult ref = tmalign(a, b);
  const BatchItem job{&a, &b};
  BatchWorkspace bw;
  kern::align_batch(&job, 1, bw);
  expect_identical(bw.result(0), ref, "K=1");
}

TEST(AlignBatch, WorkspaceReuseAcrossShrinkingBatches) {
  // A big batch followed by a smaller one: the grow-only buffers of the
  // shared NW must not leak the larger batch's state into the smaller one.
  Rng rng(9);
  const Protein big = bio::make_protein("big", 220, rng);
  const Protein big2 = bio::perturb(big, "big2", rng);
  const Protein small1 = bio::make_protein("s1", 40, rng);
  const Protein small2 = bio::perturb(small1, "s2", rng);

  BatchWorkspace bw;
  const BatchItem first[2] = {{&big, &big2}, {&big2, &big}};
  kern::align_batch(first, 2, bw);

  const TmAlignResult ref = tmalign(small1, small2);
  const BatchItem second{&small1, &small2};
  kern::align_batch(&second, 1, bw);
  expect_identical(bw.result(0), ref, "after shrink");
}

TEST(AlignBatch, RejectsInvalidBatches) {
  Rng rng(13);
  const Protein a = bio::make_protein("a", 50, rng);
  const Protein tiny = bio::make_protein("t", 4, rng);
  BatchWorkspace bw;

  std::vector<BatchItem> too_many(kern::kBatchLanes + 1, BatchItem{&a, &a});
  EXPECT_THROW(kern::align_batch(too_many.data(), too_many.size(), bw),
               CoreError);

  const BatchItem short_chain{&a, &tiny};
  EXPECT_THROW(kern::align_batch(&short_chain, 1, bw), CoreError);

  const BatchItem null_item{&a, nullptr};
  EXPECT_THROW(kern::align_batch(&null_item, 1, bw), CoreError);

  // Zero jobs is a no-op, not an error (a slave may be granted an empty
  // tail batch).
  kern::align_batch(nullptr, 0, bw);
}

}  // namespace
}  // namespace rck::core
