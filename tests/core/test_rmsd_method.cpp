#include "rck/core/error.hpp"
#include "rck/core/rmsd_method.hpp"

#include <gtest/gtest.h>

#include "rck/bio/synthetic.hpp"
#include "rck/core/tmalign.hpp"

namespace rck::core {
namespace {

using bio::Protein;
using bio::Rng;

TEST(GaplessRmsd, SelfIsZero) {
  Rng rng(1);
  const Protein p = bio::make_protein("p", 60, rng);
  const RmsdResult r = best_gapless_rmsd(p, p);
  EXPECT_NEAR(r.rmsd, 0.0, 1e-8);
  EXPECT_EQ(r.aligned_length, 60);
  EXPECT_EQ(r.offset, 0);
}

TEST(GaplessRmsd, RigidMotionInvariant) {
  Rng rng(2);
  const Protein p = bio::make_protein("p", 80, rng);
  const Protein q = p.transformed(bio::random_transform(rng));
  const RmsdResult r = best_gapless_rmsd(p, q);
  // Numerically zero: the Jacobi eigen solve leaves ~1e-6 A residuals.
  EXPECT_NEAR(r.rmsd, 0.0, 1e-5);
}

TEST(GaplessRmsd, FindsSubchainOffset) {
  Rng rng(3);
  const Protein p = bio::make_protein("p", 100, rng);
  // q = residues [20, 80) of p: best offset aligns x[i+20] ~ y[i],
  // i.e. x[i] ~ y[i + offset] with offset = -20.
  std::vector<bio::Residue> sub(p.residues().begin() + 20, p.residues().begin() + 80);
  const Protein q("q", sub);
  const RmsdResult r = best_gapless_rmsd(p, q);
  EXPECT_NEAR(r.rmsd, 0.0, 1e-8);
  EXPECT_EQ(r.offset, -20);
  EXPECT_EQ(r.aligned_length, 60);
}

TEST(GaplessRmsd, UnrelatedChainsHaveLargeRmsd) {
  Rng rng(4);
  const Protein p = bio::make_protein("p", 90, rng);
  const Protein q = bio::make_protein("q", 90, rng);
  EXPECT_GT(best_gapless_rmsd(p, q).rmsd, 5.0);
}

TEST(GaplessRmsd, RejectsTinyChains) {
  Rng rng(5);
  const Protein ok = bio::make_protein("ok", 20, rng);
  const Protein tiny("t", {{'A', 1, {0, 0, 0}}, {'G', 2, {3.8, 0, 0}}});
  EXPECT_THROW(best_gapless_rmsd(tiny, ok), rck::core::CoreError);
}

TEST(GaplessRmsd, StatsPopulated) {
  Rng rng(6);
  const Protein p = bio::make_protein("p", 40, rng);
  const Protein q = bio::make_protein("q", 50, rng);
  const RmsdResult r = best_gapless_rmsd(p, q);
  EXPECT_GT(r.stats.kabsch_calls, 10u);  // one per candidate offset
  EXPECT_GT(r.stats.kabsch_points, 0u);
}

TEST(GaplessRmsd, MuchCheaperThanTmAlign) {
  // MC-PSC relies on the second method being lighter; assert the work
  // counters reflect that.
  Rng rng(7);
  const Protein p = bio::make_protein("p", 100, rng);
  const Protein q = bio::make_protein("q", 100, rng);
  const RmsdResult r = best_gapless_rmsd(p, q);
  const TmAlignResult t = tmalign(p, q);
  EXPECT_LT(r.stats.total_ops(), t.stats.total_ops() / 2);
}

}  // namespace
}  // namespace rck::core
