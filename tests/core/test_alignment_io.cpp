#include "rck/core/alignment_io.hpp"

#include <gtest/gtest.h>

#include "rck/bio/synthetic.hpp"

namespace rck::core {
namespace {

using bio::Protein;
using bio::Rng;

TEST(AlignmentIo, IdenticalChainsAllColons) {
  Rng rng(1);
  const Protein p = bio::make_protein("p", 40, rng);
  const TmAlignResult r = tmalign(p, p);
  const AlignmentStrings s = render_alignment(p, p, r);
  EXPECT_EQ(s.seq_a, p.sequence());
  EXPECT_EQ(s.seq_b, p.sequence());
  for (char c : s.markers) EXPECT_EQ(c, ':');
}

TEST(AlignmentIo, StringsHaveEqualLength) {
  Rng rng(2);
  const Protein a = bio::make_protein("a", 60, rng);
  const Protein b = bio::make_protein("b", 45, rng);
  const TmAlignResult r = tmalign(a, b);
  const AlignmentStrings s = render_alignment(a, b, r);
  EXPECT_EQ(s.seq_a.size(), s.markers.size());
  EXPECT_EQ(s.seq_b.size(), s.markers.size());
}

TEST(AlignmentIo, EveryResidueAppearsExactlyOnce) {
  Rng rng(3);
  const Protein a = bio::make_protein("a", 70, rng);
  const Protein b = bio::make_protein("b", 55, rng);
  const TmAlignResult r = tmalign(a, b);
  const AlignmentStrings s = render_alignment(a, b, r);
  std::string a_only, b_only;
  for (char c : s.seq_a)
    if (c != '-') a_only.push_back(c);
  for (char c : s.seq_b)
    if (c != '-') b_only.push_back(c);
  EXPECT_EQ(a_only, a.sequence());
  EXPECT_EQ(b_only, b.sequence());
}

TEST(AlignmentIo, GapsNeverPairWithMarkers) {
  Rng rng(4);
  const Protein a = bio::make_protein("a", 50, rng);
  const Protein b = bio::make_protein("b", 80, rng);
  const TmAlignResult r = tmalign(a, b);
  const AlignmentStrings s = render_alignment(a, b, r);
  for (std::size_t k = 0; k < s.markers.size(); ++k) {
    if (s.seq_a[k] == '-' || s.seq_b[k] == '-')
      EXPECT_EQ(s.markers[k], ' ') << k;
    else
      EXPECT_NE(s.markers[k], ' ') << k;
  }
}

TEST(AlignmentIo, MarkerCountMatchesAlignedLength) {
  Rng rng(5);
  const Protein a = bio::make_protein("a", 65, rng);
  const Protein b = bio::make_protein("b", 65, rng);
  const TmAlignResult r = tmalign(a, b);
  const AlignmentStrings s = render_alignment(a, b, r);
  int aligned = 0;
  for (char c : s.markers) aligned += (c == ':' || c == '.');
  EXPECT_EQ(aligned, r.aligned_length);
}

TEST(AlignmentIo, ReportContainsSummaryAndWrappedBlocks) {
  Rng rng(6);
  const Protein a = bio::make_protein("a", 150, rng);
  const Protein b = bio::perturb(a, "b", rng);
  const TmAlignResult r = tmalign(a, b);
  const std::string report = format_alignment_report(a, b, r, 50);
  EXPECT_NE(report.find("Aligned length="), std::string::npos);
  EXPECT_NE(report.find("TM-score="), std::string::npos);
  // Wrapping: more than one block of three lines.
  std::size_t blocks = 0, pos = 0;
  while ((pos = report.find("\n\n", pos)) != std::string::npos) {
    ++blocks;
    pos += 2;
  }
  EXPECT_GE(blocks, 3u);
}

TEST(AlignmentIo, CloseFamilyPairIsMostlyColons) {
  Rng rng(7);
  const Protein a = bio::make_protein("a", 100, rng);
  const Protein b = bio::perturb(a, "b", rng);
  const TmAlignResult r = tmalign(a, b);
  const AlignmentStrings s = render_alignment(a, b, r);
  int colons = 0, total = 0;
  for (char c : s.markers) {
    colons += c == ':';
    total += c != ' ';
  }
  EXPECT_GT(colons, total * 8 / 10);
}

}  // namespace
}  // namespace rck::core
