// SIMD/scalar equivalence for the comparison kernels.
//
// The contract (src/core/simd.hpp) is bit-identity: both paths execute the
// same per-element IEEE operations in the same fixed 4-lane reduction order,
// so every assertion here is exact equality, not a tolerance. When the AVX2
// path is not compiled in (non-x86 host or -DRCK_SIMD=OFF) the toggle is a
// no-op and the tests degrade to self-consistency checks of the fallback.
#include "rck/core/simd_kernels.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "rck/bio/coords_soa.hpp"
#include "rck/bio/synthetic.hpp"
#include "rck/core/tmalign.hpp"
#include "rck/core/tmscore.hpp"

namespace rck::core {
namespace {

using bio::CoordsSoA;
using bio::Protein;
using bio::Rng;
using bio::Transform;
using bio::Vec3;

/// RAII guard: force a kernel mode for one scope, restore the default after.
struct SimdMode {
  explicit SimdMode(bool on) { kern::set_simd_enabled(on); }
  ~SimdMode() { kern::set_simd_enabled(kern::simd_compiled()); }
};

/// Coordinates with non-trivial digits in every lane position.
CoordsSoA make_coords(std::size_t n, unsigned seed) {
  Rng rng(seed);
  std::uniform_real_distribution<double> coord(-40.0, 40.0);
  std::vector<Vec3> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({coord(rng), coord(rng), coord(rng)});
  CoordsSoA c;
  c.assign(pts);
  return c;
}

Transform make_transform(unsigned seed) {
  Rng rng(seed);
  return bio::random_transform(rng);
}

// Every kernel, every length 1..17: covers the empty-block case (n < 4),
// whole blocks, and each possible remainder of the scalar tail.
TEST(SimdKernels, BitIdenticalAcrossLengths) {
  for (std::size_t n = 1; n <= 17; ++n) {
    const CoordsSoA xa = make_coords(n, 100 + static_cast<unsigned>(n));
    const CoordsSoA ya = make_coords(n, 200 + static_cast<unsigned>(n));
    const Transform t = make_transform(300 + static_cast<unsigned>(n));
    const double d0sq = 2.75;

    std::vector<double> d2_scalar(n), d2_simd(n);
    std::vector<double> row_scalar(n), row_simd(n);
    std::vector<double> bonus(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) bonus[j] = 0.5 * static_cast<double>(j % 3);

    double tm_scalar, sumd2_scalar;
    kern::KabschSums ks_scalar;
    {
      SimdMode mode(false);
      tm_scalar = kern::tm_sum(xa.view(), ya.view(), t, d0sq, d2_scalar.data());
      sumd2_scalar = kern::sum_d2(xa.view(), ya.view(), t);
      kern::score_row(xa.at(0), ya.view(), d0sq, bonus.data(), row_scalar.data());
      ks_scalar = kern::kabsch_accumulate(xa.view(), ya.view());
    }
    double tm_simd, sumd2_simd;
    kern::KabschSums ks_simd;
    {
      SimdMode mode(true);
      tm_simd = kern::tm_sum(xa.view(), ya.view(), t, d0sq, d2_simd.data());
      sumd2_simd = kern::sum_d2(xa.view(), ya.view(), t);
      kern::score_row(xa.at(0), ya.view(), d0sq, bonus.data(), row_simd.data());
      ks_simd = kern::kabsch_accumulate(xa.view(), ya.view());
    }

    EXPECT_EQ(tm_scalar, tm_simd) << "n=" << n;
    EXPECT_EQ(sumd2_scalar, sumd2_simd) << "n=" << n;
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_EQ(d2_scalar[k], d2_simd[k]) << "n=" << n << " k=" << k;
      EXPECT_EQ(row_scalar[k], row_simd[k]) << "n=" << n << " k=" << k;
    }
    EXPECT_EQ(ks_scalar.cf.x, ks_simd.cf.x) << "n=" << n;
    EXPECT_EQ(ks_scalar.ct.z, ks_simd.ct.z) << "n=" << n;
    EXPECT_EQ(ks_scalar.fq, ks_simd.fq) << "n=" << n;
    EXPECT_EQ(ks_scalar.tq, ks_simd.tq) << "n=" << n;
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j)
        EXPECT_EQ(ks_scalar.m[i][j], ks_simd.m[i][j]) << "n=" << n;
  }
}

// The d2 side channel must hold exactly the distances the sum was built
// from, in both modes.
TEST(SimdKernels, DistanceSideChannelMatchesDirectComputation) {
  const std::size_t n = 13;
  const CoordsSoA xa = make_coords(n, 7);
  const CoordsSoA ya = make_coords(n, 8);
  const Transform t = make_transform(9);
  std::vector<double> d2(n);
  kern::tm_sum(xa.view(), ya.view(), t, 2.0, d2.data());
  for (std::size_t k = 0; k < n; ++k) {
    const Vec3 p = t.apply(xa.at(k));
    const Vec3 q = ya.at(k);
    const double dx = p.x - q.x, dy = p.y - q.y, dz = p.z - q.z;
    EXPECT_EQ(d2[k], (dx * dx + dy * dy) + dz * dz) << k;
  }
}

// Whole-pipeline equivalence: a full tmalign run must produce identical
// alignments and AlignStats in both modes, and scores equal to the last bit.
TEST(SimdKernels, TmalignEndToEndIdenticalAcrossModes) {
  Rng rng(42);
  const Protein a = bio::make_protein("a", 97, rng);
  const Protein b = bio::perturb(a, "b", rng);

  TmAlignResult scalar_r, simd_r;
  {
    SimdMode mode(false);
    scalar_r = tmalign(a, b);
  }
  {
    SimdMode mode(true);
    simd_r = tmalign(a, b);
  }
  EXPECT_EQ(scalar_r.tm_norm_a, simd_r.tm_norm_a);
  EXPECT_EQ(scalar_r.tm_norm_b, simd_r.tm_norm_b);
  EXPECT_EQ(scalar_r.rmsd, simd_r.rmsd);
  EXPECT_EQ(scalar_r.seq_identity, simd_r.seq_identity);
  EXPECT_EQ(scalar_r.aligned_length, simd_r.aligned_length);
  EXPECT_EQ(scalar_r.y2x, simd_r.y2x);
  EXPECT_EQ(scalar_r.stats.scored_pairs, simd_r.stats.scored_pairs);
  EXPECT_EQ(scalar_r.stats.matrix_cells, simd_r.stats.matrix_cells);
  EXPECT_EQ(scalar_r.stats.dp_cells, simd_r.stats.dp_cells);
  EXPECT_EQ(scalar_r.stats.kabsch_calls, simd_r.stats.kabsch_calls);
  EXPECT_EQ(scalar_r.stats.kabsch_points, simd_r.stats.kabsch_points);
  EXPECT_EQ(scalar_r.stats.iterations, simd_r.stats.iterations);
}

// The workspace variant must agree exactly with the value-returning one
// (same code path, but this pins the capacity-reuse logic: a workspace warm
// from a *larger* problem must not leak state into a smaller one).
TEST(SimdKernels, WorkspaceReuseMatchesFreshRuns) {
  Rng rng(5);
  const Protein big_a = bio::make_protein("A", 140, rng);
  const Protein big_b = bio::perturb(big_a, "B", rng);
  const Protein small_a = bio::make_protein("a", 60, rng);
  const Protein small_b = bio::make_protein("b", 73, rng);

  TmAlignWorkspace ws;
  (void)tmalign(big_a, big_b, ws);  // warm the workspace past both sizes
  const TmAlignResult& reused = tmalign(small_a, small_b, ws);
  const TmAlignResult fresh = tmalign(small_a, small_b);

  EXPECT_EQ(fresh.tm_norm_a, reused.tm_norm_a);
  EXPECT_EQ(fresh.tm_norm_b, reused.tm_norm_b);
  EXPECT_EQ(fresh.rmsd, reused.rmsd);
  EXPECT_EQ(fresh.seq_identity, reused.seq_identity);
  EXPECT_EQ(fresh.aligned_length, reused.aligned_length);
  EXPECT_EQ(fresh.y2x, reused.y2x);
  EXPECT_EQ(fresh.stats.scored_pairs, reused.stats.scored_pairs);
  EXPECT_EQ(fresh.stats.dp_cells, reused.stats.dp_cells);
}

TEST(SimdKernels, ToggleReportsState) {
  if (!kern::simd_compiled()) {
    // The toggle must be a stable no-op without the compiled path.
    kern::set_simd_enabled(true);
    EXPECT_FALSE(kern::simd_enabled());
    return;
  }
  SimdMode off(false);
  EXPECT_FALSE(kern::simd_enabled());
  kern::set_simd_enabled(true);
  EXPECT_TRUE(kern::simd_enabled());
}

}  // namespace
}  // namespace rck::core
