#include "rck/core/error.hpp"
#include "rck/core/kabsch.hpp"

#include <gtest/gtest.h>

#include <random>

#include "rck/bio/synthetic.hpp"

namespace rck::core {
namespace {

using bio::Rng;
using bio::Transform;
using bio::Vec3;

std::vector<Vec3> random_cloud(Rng& rng, std::size_t n, double extent = 20.0) {
  std::uniform_real_distribution<double> u(-extent, extent);
  std::vector<Vec3> pts(n);
  for (Vec3& p : pts) p = {u(rng), u(rng), u(rng)};
  return pts;
}

std::vector<Vec3> apply_all(const Transform& t, const std::vector<Vec3>& pts) {
  std::vector<Vec3> out(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) out[i] = t.apply(pts[i]);
  return out;
}

TEST(Kabsch, IdentityForIdenticalSets) {
  Rng rng(1);
  const auto pts = random_cloud(rng, 25);
  const Superposition s = superpose(pts, pts);
  EXPECT_NEAR(s.rmsd, 0.0, 1e-9);
  EXPECT_TRUE(bio::is_rotation(s.transform.rot, 1e-9));
  for (const Vec3& p : pts) {
    const Vec3 q = s.transform.apply(p);
    EXPECT_NEAR(distance(p, q), 0.0, 1e-8);
  }
}

TEST(Kabsch, RecoversKnownRigidMotion) {
  Rng rng(2);
  const auto from = random_cloud(rng, 40);
  const Transform truth = bio::random_transform(rng);
  const auto to = apply_all(truth, from);
  const Superposition s = superpose(from, to);
  EXPECT_NEAR(s.rmsd, 0.0, 1e-8);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_NEAR(s.transform.rot(r, c), truth.rot(r, c), 1e-8);
  EXPECT_NEAR(s.transform.trans.x, truth.trans.x, 1e-7);
}

TEST(Kabsch, AlwaysProperRotation) {
  // Quaternion method must never return a reflection, even for inputs where
  // naive Kabsch would (mirror-image clouds).
  Rng rng(3);
  auto from = random_cloud(rng, 15);
  auto to = from;
  for (Vec3& p : to) p.x = -p.x;  // mirrored
  const Superposition s = superpose(from, to);
  EXPECT_TRUE(bio::is_rotation(s.transform.rot, 1e-8));
  EXPECT_GT(determinant(s.transform.rot), 0.0);
  EXPECT_GT(s.rmsd, 0.1);  // a mirror cannot be superposed exactly
}

TEST(Kabsch, RmsdMatchesExplicitComputation) {
  Rng rng(4);
  const auto from = random_cloud(rng, 30);
  auto to = apply_all(bio::random_transform(rng), from);
  // add noise so the optimum is nonzero
  std::normal_distribution<double> noise(0.0, 0.7);
  for (Vec3& p : to) p += {noise(rng), noise(rng), noise(rng)};
  const Superposition s = superpose(from, to);
  double ss = 0.0;
  for (std::size_t i = 0; i < from.size(); ++i)
    ss += distance2(s.transform.apply(from[i]), to[i]);
  const double explicit_rmsd = std::sqrt(ss / static_cast<double>(from.size()));
  EXPECT_NEAR(s.rmsd, explicit_rmsd, 1e-6);
}

TEST(Kabsch, OptimalityAgainstJitteredTransforms) {
  // No nearby rigid transform should beat the solver's RMSD.
  Rng rng(5);
  const auto from = random_cloud(rng, 20);
  auto to = apply_all(bio::random_transform(rng), from);
  std::normal_distribution<double> noise(0.0, 1.0);
  for (Vec3& p : to) p += {noise(rng), noise(rng), noise(rng)};
  const Superposition s = superpose(from, to);

  auto rmsd_of = [&](const Transform& t) {
    double ss = 0.0;
    for (std::size_t i = 0; i < from.size(); ++i)
      ss += distance2(t.apply(from[i]), to[i]);
    return std::sqrt(ss / static_cast<double>(from.size()));
  };
  std::uniform_real_distribution<double> u(-0.05, 0.05);
  for (int k = 0; k < 200; ++k) {
    Transform jittered = s.transform;
    jittered.rot =
        bio::rotation_about_axis(bio::normalized(Vec3{u(rng), u(rng), 1.0}), u(rng)) *
        jittered.rot;
    jittered.trans += {u(rng), u(rng), u(rng)};
    EXPECT_GE(rmsd_of(jittered) + 1e-9, s.rmsd);
  }
}

TEST(Kabsch, StatsAccumulation) {
  Rng rng(6);
  const auto pts = random_cloud(rng, 12);
  AlignStats stats;
  superpose(pts, pts, &stats);
  superpose(pts, pts, &stats);
  EXPECT_EQ(stats.kabsch_calls, 2u);
  EXPECT_EQ(stats.kabsch_points, 24u);
}

TEST(Kabsch, RejectsBadInput) {
  const std::vector<Vec3> two{{0, 0, 0}, {1, 0, 0}};
  const std::vector<Vec3> three{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  EXPECT_THROW(superpose(two, two), rck::core::CoreError);
  EXPECT_THROW(superpose(three, two), rck::core::CoreError);
}

TEST(Kabsch, TranslationOnly) {
  Rng rng(7);
  const auto from = random_cloud(rng, 10);
  auto to = from;
  for (Vec3& p : to) p += {5, -3, 2};
  const Superposition s = superpose(from, to);
  EXPECT_NEAR(s.rmsd, 0.0, 1e-9);
  EXPECT_NEAR(s.transform.trans.x, 5.0, 1e-8);
  EXPECT_NEAR(s.transform.trans.y, -3.0, 1e-8);
}

TEST(Kabsch, DegenerateCollinearInputStillValid) {
  // Collinear points leave a free rotation about the line; the result must
  // still be a proper rigid transform achieving zero RMSD.
  std::vector<Vec3> line;
  for (int i = 0; i < 10; ++i) line.push_back({static_cast<double>(i), 0, 0});
  const Superposition s = superpose(line, line);
  EXPECT_TRUE(bio::is_rotation(s.transform.rot, 1e-7));
  EXPECT_NEAR(s.rmsd, 0.0, 1e-7);
}

TEST(SuperposedRmsd, MatchesFullSolve) {
  Rng rng(8);
  const auto a = random_cloud(rng, 18);
  const auto b = random_cloud(rng, 18);
  EXPECT_DOUBLE_EQ(superposed_rmsd(a, b), superpose(a, b).rmsd);
}

}  // namespace
}  // namespace rck::core
