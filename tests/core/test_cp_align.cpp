#include "rck/core/cp_align.hpp"

#include <gtest/gtest.h>

#include "rck/bio/synthetic.hpp"

namespace rck::core {
namespace {

using bio::Protein;
using bio::Rng;

TEST(RotateChain, BasicRotation) {
  Rng rng(1);
  const Protein p = bio::make_protein("p", 10, rng);
  const Protein r = rotate_chain(p, 3);
  ASSERT_EQ(r.size(), 10u);
  EXPECT_EQ(r[0].ca, p[3].ca);
  EXPECT_EQ(r[6].ca, p[9].ca);
  EXPECT_EQ(r[7].ca, p[0].ca);
  EXPECT_EQ(r[9].ca, p[2].ca);
  // renumbered
  for (std::size_t i = 0; i < r.size(); ++i)
    EXPECT_EQ(r[i].seq, static_cast<std::int32_t>(i + 1));
}

TEST(RotateChain, ModuloAndIdentity) {
  Rng rng(2);
  const Protein p = bio::make_protein("p", 8, rng);
  EXPECT_EQ(rotate_chain(p, 0)[0].ca, p[0].ca);
  EXPECT_EQ(rotate_chain(p, 8)[0].ca, p[0].ca);   // full wrap
  EXPECT_EQ(rotate_chain(p, -3)[0].ca, p[5].ca);  // negative cut
}

TEST(RotateChain, DoubleRotationComposes) {
  Rng rng(3);
  const Protein p = bio::make_protein("p", 20, rng);
  const Protein once = rotate_chain(rotate_chain(p, 7), 5);
  const Protein direct = rotate_chain(p, 12);
  for (std::size_t i = 0; i < p.size(); ++i) EXPECT_EQ(once[i].ca, direct[i].ca);
}

TEST(CpAlign, SequentialPairNeedsNoRotation) {
  Rng rng(4);
  const Protein a = bio::make_protein("a", 100, rng);
  const Protein b = bio::perturb(a, "b", rng);
  const CpAlignResult r = cp_align(a, b);
  EXPECT_EQ(r.cut, 0);
  EXPECT_FALSE(r.is_circular_permutation);
  EXPECT_NEAR(r.best.tm(), r.tm_sequential, 1e-12);
}

TEST(CpAlign, DetectsConstructedPermutant) {
  // b is a circularly permuted copy of a (cut at 40% of the chain, plus a
  // rigid motion). Plain TM-align should degrade; cp_align should recover.
  Rng rng(5);
  const Protein a = bio::make_protein("a", 120, rng);
  Protein b = rotate_chain(a, 48);
  b.apply(bio::random_transform(rng));

  CpAlignOptions opts;
  opts.rotation_stride = 8;
  const CpAlignResult r = cp_align(a, b, opts);
  EXPECT_GT(r.best.tm(), 0.8);
  EXPECT_GT(r.best.tm(), r.tm_sequential + 0.05);
  EXPECT_TRUE(r.is_circular_permutation);
  // The winning cut should be near the constructed one (within one stride).
  EXPECT_NEAR(r.cut, 48, opts.rotation_stride);
}

TEST(CpAlign, UnrelatedChainsStayUnrelated) {
  Rng rng(6);
  const Protein a = bio::make_protein("a", 90, rng);
  const Protein b = bio::make_protein("b", 90, rng);
  CpAlignOptions opts;
  opts.rotation_stride = 20;
  const CpAlignResult r = cp_align(a, b, opts);
  EXPECT_LT(r.best.tm(), 0.5);
  EXPECT_FALSE(r.is_circular_permutation);
}

TEST(CpAlign, StatsAccumulateAcrossRotations) {
  Rng rng(7);
  const Protein a = bio::make_protein("a", 60, rng);
  const Protein b = bio::make_protein("b", 60, rng);
  const TmAlignResult plain = tmalign(a, b);
  CpAlignOptions opts;
  opts.rotation_stride = 15;
  const CpAlignResult r = cp_align(a, b, opts);
  // 4 rotations total (0, 15, 30, 45): total work must exceed one run's.
  EXPECT_GT(r.best.stats.dp_cells, 2 * plain.stats.dp_cells);
}

TEST(CpAlign, Deterministic) {
  Rng rng(8);
  const Protein a = bio::make_protein("a", 70, rng);
  const Protein b = rotate_chain(a, 30);
  const CpAlignResult r1 = cp_align(a, b);
  const CpAlignResult r2 = cp_align(a, b);
  EXPECT_EQ(r1.cut, r2.cut);
  EXPECT_DOUBLE_EQ(r1.best.tm(), r2.best.tm());
}

}  // namespace
}  // namespace rck::core
