// End-to-end integration: the full stack (synthetic data -> TM-align ->
// cost cache -> SPMD simulation -> rckskel FARM -> results) on a small
// dataset, checking cross-layer consistency that no unit test can see.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "rck/bio/dataset.hpp"
#include "rck/core/tmalign.hpp"
#include "rck/rckalign/app.hpp"
#include "rck/rckalign/distributed.hpp"
#include "rck/rckalign/extensions.hpp"

namespace rck {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new std::vector<bio::Protein>(bio::build_dataset(bio::tiny_spec()));
    cache_ = new rckalign::PairCache(rckalign::PairCache::build(*dataset_));
  }
  static void TearDownTestSuite() {
    delete cache_;
    delete dataset_;
    cache_ = nullptr;
    dataset_ = nullptr;
  }
  static std::vector<bio::Protein>* dataset_;
  static rckalign::PairCache* cache_;
};

std::vector<bio::Protein>* EndToEnd::dataset_ = nullptr;
rckalign::PairCache* EndToEnd::cache_ = nullptr;

TEST_F(EndToEnd, SimulatedResultsEqualDirectAlignment) {
  // Scores coming back over the simulated mesh must equal running TM-align
  // directly on the host — the simulator must not perturb the science.
  rckalign::RckAlignOptions opts;
  opts.slave_count = 5;
  opts.cache = cache_;
  const rckalign::RckAlignRun run = rckalign::run_rckalign(*dataset_, opts);
  ASSERT_EQ(run.results.size(), 28u);
  for (const rckalign::PairRow& row : run.results) {
    const core::TmAlignResult direct =
        core::tmalign((*dataset_)[row.i], (*dataset_)[row.j]);
    EXPECT_DOUBLE_EQ(row.tm_norm_a, direct.tm_norm_a) << row.i << "," << row.j;
    EXPECT_DOUBLE_EQ(row.rmsd, direct.rmsd);
  }
}

TEST_F(EndToEnd, MakespanDecomposition) {
  // makespan >= serial_compute / slaves (work conservation) and
  // makespan <= serial_compute (no slowdown from parallelism).
  const scc::CoreTimingModel model = scc::CoreTimingModel::p54c_800();
  const noc::SimTime serial_compute = model.cycles_to_time(cache_->total_cycles(model));
  for (int n : {2, 4, 7}) {
    rckalign::RckAlignOptions opts;
    opts.slave_count = n;
    opts.cache = cache_;
    const noc::SimTime t = rckalign::run_rckalign(*dataset_, opts).makespan;
    EXPECT_GE(t, serial_compute / static_cast<unsigned>(n));
    EXPECT_LE(t, serial_compute + noc::kPsPerSec);
  }
}

TEST_F(EndToEnd, SlaveComputeCyclesSumToCacheTotal) {
  rckalign::RckAlignOptions opts;
  opts.slave_count = 4;
  opts.cache = cache_;
  const rckalign::RckAlignRun run = rckalign::run_rckalign(*dataset_, opts);
  std::uint64_t slave_cycles = 0;
  for (std::size_t s = 1; s < run.core_reports.size(); ++s)
    slave_cycles += run.core_reports[s].compute_cycles;
  EXPECT_EQ(slave_cycles,
            cache_->total_cycles(scc::CoreTimingModel::p54c_800()));
}

TEST_F(EndToEnd, FamilyBlockStructureSurvivesTheStack) {
  // All-vs-all TM matrix from the simulated run must show families:
  // tiny = 3 families (a: 0-2, b: 3-5, c: 6-7).
  rckalign::RckAlignOptions opts;
  opts.slave_count = 3;
  opts.cache = cache_;
  const rckalign::RckAlignRun run = rckalign::run_rckalign(*dataset_, opts);
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> tm;
  for (const rckalign::PairRow& r : run.results)
    tm[{r.i, r.j}] = std::max(r.tm_norm_a, r.tm_norm_b);
  auto family = [](std::uint32_t idx) { return idx < 3 ? 0 : idx < 6 ? 1 : 2; };
  double min_within = 1.0, max_cross = 0.0;
  for (const auto& [key, score] : tm) {
    if (family(key.first) == family(key.second))
      min_within = std::min(min_within, score);
    else
      max_cross = std::max(max_cross, score);
  }
  EXPECT_GT(min_within, max_cross);
}

TEST_F(EndToEnd, AllOrchestrationsAgreeOnScience) {
  // Flat farm, MC-PSC (TM half) and hierarchy must produce identical
  // TM-scores for every pair — only timing differs.
  rckalign::RckAlignOptions flat;
  flat.slave_count = 6;
  flat.cache = cache_;
  const auto flat_run = rckalign::run_rckalign(*dataset_, flat);

  rckalign::McPscOptions mc;
  mc.tmalign_slaves = 4;
  mc.rmsd_slaves = 2;
  mc.cache = cache_;
  const auto mc_run = rckalign::run_mcpsc(*dataset_, mc);

  rckalign::HierarchyOptions h;
  h.group_count = 2;
  h.slave_count = 4;
  h.cache = cache_;
  const auto h_run = rckalign::run_hierarchical(*dataset_, h);

  auto index = [](const std::vector<rckalign::PairRow>& rows) {
    std::map<std::pair<std::uint32_t, std::uint32_t>, double> m;
    for (const auto& r : rows) m[{r.i, r.j}] = r.tm_norm_a;
    return m;
  };
  const auto a = index(flat_run.results);
  const auto b = index(mc_run.tmalign_results);
  const auto c = index(h_run.results);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST_F(EndToEnd, DeterministicAcrossWholeStack) {
  auto run_once = [&] {
    rckalign::RckAlignOptions opts;
    opts.slave_count = 6;
    opts.cache = cache_;
    const auto run = rckalign::run_rckalign(*dataset_, opts);
    return std::tuple{run.makespan, run.events, run.network.total_bytes,
                      run.results.size()};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(EndToEnd, RebuildingEverythingFromSeedsIsIdentical) {
  // Dataset seeds fully determine the simulated makespan.
  auto full_pipeline = [] {
    const auto ds = bio::build_dataset(bio::tiny_spec());
    const auto cache = rckalign::PairCache::build(ds);
    rckalign::RckAlignOptions opts;
    opts.slave_count = 4;
    opts.cache = &cache;
    return rckalign::run_rckalign(ds, opts).makespan;
  };
  EXPECT_EQ(full_pipeline(), full_pipeline());
}

}  // namespace
}  // namespace rck
