// Seeded chaos campaigns (PR 6): randomized-but-deterministic fault plans
// composing master crashes (timed and event-indexed), slave crashes and
// restarts, message drops/corruption, and DRAM stalls — driven through the
// consolidated rck:: API with master_ft on, so every campaign survives the
// death of the coordinator itself.
//
// The contract asserted per campaign:
//   * the final all-vs-all matrix (scores keyed by (i, j), worker excluded)
//     is byte-identical to the fault-free run's matrix;
//   * the same seed replays bit-identically (makespan, results, FarmReport),
//     under both the serial scheduler and --host-threads N;
//   * the documented degraded-completion contract: when every slave allowed
//     to run the remaining jobs is dead, the run throws FarmFailedError
//     ("rck.skel.farm_failed") rather than returning a partial matrix.
//
// Campaign generation is a pure function of the seed (hand-rolled draws, no
// std::shuffle / distributions whose mappings vary across standard
// libraries), so a failing seed printed by CI replays everywhere.
#include "rck/rck.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <tuple>
#include <vector>

#include "rck/bio/dataset.hpp"
#include "rck/obs/sink.hpp"

namespace rck {
namespace {

using rckalign::PairCache;
using rckalign::PairRow;

/// Score matrix row with the worker rank removed: retries and failover move
/// jobs between slaves, but must never change what the pair scored.
using ScoreRow = std::tuple<std::uint32_t, std::uint32_t, double, double,
                            double, double, std::uint32_t>;

std::vector<ScoreRow> matrix_of(const RunResult& run) {
  std::vector<ScoreRow> m;
  m.reserve(run.results.size());
  for (const PairRow& r : run.results)
    m.emplace_back(r.i, r.j, r.tm_norm_a, r.tm_norm_b, r.rmsd, r.seq_identity,
                   r.aligned_length);
  std::sort(m.begin(), m.end());
  return m;
}

/// One randomized fault campaign. `horizon` is the fault-free makespan, so
/// crash/stall times land inside the run at any timing-model scale.
scc::FaultPlan make_campaign(std::uint64_t seed, int nslaves,
                             noc::SimTime horizon) {
  std::mt19937_64 rng(seed);
  scc::FaultPlan plan;
  const auto frac = [&](std::uint64_t lo_pct, std::uint64_t hi_pct) {
    const std::uint64_t pct = lo_pct + rng() % (hi_pct - lo_pct);
    return static_cast<noc::SimTime>(horizon / 100 * pct);
  };

  // The master's fate: survive, die at a simulated time, or die at the K-th
  // scheduler event (pinned to a protocol step).
  switch (rng() % 3) {
    case 1:
      plan.crashes.push_back({0, frac(5, 90)});
      break;
    case 2:
      plan.event_crashes.push_back({0, rng() % 512});
      break;
    default:
      break;
  }

  // Up to nslaves-1 slave crashes (at least one survivor keeps the
  // completion contract in force); some victims are later restarted.
  const std::size_t ncrash = rng() % static_cast<std::size_t>(nslaves);
  std::vector<int> ranks;
  for (int s = 1; s <= nslaves; ++s) ranks.push_back(s);
  for (std::size_t i = ranks.size() - 1; i > 0; --i)  // Fisher-Yates
    std::swap(ranks[i], ranks[rng() % (i + 1)]);
  for (std::size_t k = 0; k < ncrash; ++k) {
    const noc::SimTime at = frac(0, 80);
    plan.crashes.push_back({ranks[k], at});
    if (rng() % 2 == 0)
      plan.restarts.push_back({ranks[k], at + frac(10, 30)});
  }

  // Message faults on random flows touching the master or standby.
  const int standby = nslaves + 1;
  const std::size_t nmsg = rng() % 4;
  for (std::size_t k = 0; k < nmsg; ++k) {
    const int slave = 1 + static_cast<int>(rng() % nslaves);
    const bool to_master = rng() % 2 == 0;
    const int hub = rng() % 4 == 0 ? standby : 0;
    plan.messages.push_back(
        {rng() % 2 == 0 ? scc::FaultPlan::MessageFault::Kind::Drop
                        : scc::FaultPlan::MessageFault::Kind::Corrupt,
         to_master ? slave : hub, to_master ? hub : slave, rng() % 4});
  }

  // Transient DRAM stalls.
  const std::size_t nstall = rng() % 3;
  for (std::size_t k = 0; k < nstall; ++k) {
    const noc::SimTime from = frac(0, 60);
    plan.stalls.push_back({rng() % 2 == 0 ? -1
                                          : static_cast<int>(rng() % nslaves) + 1,
                           from, from + frac(10, 40),
                           1.5 + static_cast<double>(rng() % 5)});
  }
  return plan;
}

class TinyChaos : public ::testing::Test {
 protected:
  static constexpr int kSlaves = 4;

  static void SetUpTestSuite() {
    dataset_ = new std::vector<bio::Protein>(
        bio::build_dataset(bio::tiny_spec()));
    cache_ = new PairCache(PairCache::build(*dataset_));
    const RunResult ref = rck::run(*dataset_, config(1));
    reference_ = new std::vector<ScoreRow>(matrix_of(ref));
    horizon_ = ref.makespan;
  }
  static void TearDownTestSuite() {
    delete reference_;
    delete cache_;
    delete dataset_;
    reference_ = nullptr;
    cache_ = nullptr;
    dataset_ = nullptr;
  }

  static RunConfig config(int host_threads) {
    RunConfig cfg;
    cfg.with_slaves(kSlaves)
        .with_cache(cache_)
        .with_master_ft()
        .with_host_threads(host_threads);
    // Timeouts co-tuned to the tiny dataset's ~250 ms simulated jobs so a
    // campaign's recovery happens mid-run, not after it.
    cfg.ft.lease = 600 * noc::kPsPerMs;
    cfg.ft.master_silence_timeout = 300 * noc::kPsPerMs;
    cfg.mft.checkpoint_every = 4;
    cfg.mft.heartbeat_period = 50 * noc::kPsPerMs;
    cfg.mft.heartbeat_timeout = 200 * noc::kPsPerMs;
    return cfg;
  }

  static RunResult run_campaign(std::uint64_t seed, int host_threads) {
    RunConfig cfg = config(host_threads);
    cfg.with_faults(make_campaign(seed, kSlaves, horizon_));
    return rck::run(*dataset_, cfg);
  }

  static std::vector<bio::Protein>* dataset_;
  static PairCache* cache_;
  static std::vector<ScoreRow>* reference_;
  static noc::SimTime horizon_;
};

std::vector<bio::Protein>* TinyChaos::dataset_ = nullptr;
PairCache* TinyChaos::cache_ = nullptr;
std::vector<ScoreRow>* TinyChaos::reference_ = nullptr;
noc::SimTime TinyChaos::horizon_ = 0;

TEST_F(TinyChaos, CampaignsPreserveTheMatrix) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RunResult run = run_campaign(seed, 1);
    EXPECT_EQ(matrix_of(run), *reference_) << "seed " << seed;
  }
}

TEST_F(TinyChaos, EverySeedReplaysBitIdentically) {
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    const RunResult a = run_campaign(seed, 1);
    const RunResult b = run_campaign(seed, 1);
    EXPECT_EQ(a.makespan, b.makespan) << "seed " << seed;
    EXPECT_TRUE(a.farm_report == b.farm_report) << "seed " << seed;
    ASSERT_EQ(a.results.size(), b.results.size()) << "seed " << seed;
    for (std::size_t k = 0; k < a.results.size(); ++k)
      EXPECT_TRUE(a.results[k] == b.results[k])
          << "seed " << seed << " row " << k;
  }
}

TEST_F(TinyChaos, HostParallelReplayMatchesSerial) {
  for (const std::uint64_t seed : {21ull, 22ull}) {
    const RunResult serial = run_campaign(seed, 1);
    const RunResult parallel = run_campaign(seed, 4);
    EXPECT_EQ(serial.makespan, parallel.makespan) << "seed " << seed;
    EXPECT_TRUE(serial.farm_report == parallel.farm_report) << "seed " << seed;
    EXPECT_EQ(matrix_of(serial), matrix_of(parallel)) << "seed " << seed;
  }
}

TEST_F(TinyChaos, CleanMasterFtRunIsBitIdenticalAcrossSchedulers) {
  // No faults at all: the checkpoint/heartbeat machinery itself must be
  // deterministic down to the obs byte stream, serial vs host-parallel.
  RunConfig serial_cfg = config(1);
  RunConfig parallel_cfg = config(4);
  serial_cfg.with_collect();
  parallel_cfg.with_collect();
  const RunResult a = rck::run(*dataset_, serial_cfg);
  const RunResult b = rck::run(*dataset_, parallel_cfg);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(matrix_of(a), matrix_of(b));
  ASSERT_NE(a.obs, nullptr);
  ASSERT_NE(b.obs, nullptr);
  EXPECT_EQ(obs::chrome_trace_json(*a.obs), obs::chrome_trace_json(*b.obs));
  EXPECT_EQ(a.obs->snapshot().to_json(), b.obs->snapshot().to_json());
}

TEST_F(TinyChaos, AllSlavesDeadIsTheDocumentedDegradedCompletion) {
  // Past the survivable envelope the farm fails loudly (FarmFailedError,
  // "rck.skel.farm_failed") instead of returning a partial matrix — the
  // degraded-completion contract in DESIGN.md ("Master failover").
  RunConfig cfg = config(1);
  scc::FaultPlan plan;
  for (int s = 1; s <= kSlaves; ++s) plan.crashes.push_back({s, 0});
  cfg.with_faults(plan);
  try {
    (void)rck::run(*dataset_, cfg);
    FAIL() << "expected FarmFailedError";
  } catch (const rckskel::FarmFailedError& e) {
    EXPECT_EQ(e.code(), "rck.skel.farm_failed");
  }
}

// The paper-scale assertion: a CK34 all-vs-all run with the master killed
// mid-farm finishes via standby failover with a matrix byte-identical to the
// fault-free run's. Heavier than the tiny campaigns (561 pairs), so it gets
// one deliberate composition instead of a seed sweep.
class Ck34Chaos : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new std::vector<bio::Protein>(
        bio::build_dataset(bio::ck34_spec()));
    cache_ = new PairCache(PairCache::build(*dataset_));
  }
  static void TearDownTestSuite() {
    delete cache_;
    delete dataset_;
    cache_ = nullptr;
    dataset_ = nullptr;
  }
  static RunConfig config() {
    RunConfig cfg;
    cfg.with_slaves(8).with_cache(cache_).with_master_ft();
    return cfg;
  }
  static std::vector<bio::Protein>* dataset_;
  static PairCache* cache_;
};

std::vector<bio::Protein>* Ck34Chaos::dataset_ = nullptr;
PairCache* Ck34Chaos::cache_ = nullptr;

TEST_F(Ck34Chaos, MasterCrashMidFarmPreservesTheMatrix) {
  const RunResult ref = rck::run(*dataset_, config());
  ASSERT_EQ(ref.results.size(), 561u);  // C(34,2)

  RunConfig cfg = config();
  scc::FaultPlan plan;
  plan.crashes.push_back({0, ref.makespan / 2});   // master, mid-farm
  plan.crashes.push_back({3, ref.makespan / 4});   // plus a slave
  cfg.with_faults(plan);
  const RunResult a = rck::run(*dataset_, cfg);
  EXPECT_EQ(a.farm_report.failovers, 1u);
  EXPECT_GT(a.farm_report.resumed_jobs, 0u);
  EXPECT_EQ(matrix_of(a), matrix_of(ref));

  // Replay-twice determinism at paper scale, host-parallel included.
  RunConfig par = cfg;
  par.with_host_threads(4);
  const RunResult b = rck::run(*dataset_, par);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_TRUE(a.farm_report == b.farm_report);
  EXPECT_EQ(matrix_of(a), matrix_of(b));
}

}  // namespace
}  // namespace rck
