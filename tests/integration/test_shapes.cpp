// Shape tests: assert the paper's qualitative claims hold on the real CK34
// workload (561 pairs). These are the acceptance tests of the reproduction;
// the bench binaries print the full tables.
#include <gtest/gtest.h>

#include <cmath>

#include "rck/harness/experiments.hpp"
#include "rck/harness/paper_data.hpp"

namespace rck {
namespace {

class Shapes : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ctx_ = new harness::ExperimentContext(harness::ExperimentContext::load_ck34_only());
  }
  static void TearDownTestSuite() {
    delete ctx_;
    ctx_ = nullptr;
  }
  static harness::ExperimentContext* ctx_;
};

harness::ExperimentContext* Shapes::ctx_ = nullptr;

TEST_F(Shapes, Table3SerialBaselinesWithinTolerance) {
  const harness::BaselineTimes t = harness::run_baselines(*ctx_);
  // Calibrated against the paper; assert we stay within 10%.
  EXPECT_NEAR(t.p54c_ck34, harness::kPaperTable3.p54c_ck34,
              0.10 * harness::kPaperTable3.p54c_ck34);
  EXPECT_NEAR(t.amd_ck34, harness::kPaperTable3.amd_ck34,
              0.10 * harness::kPaperTable3.amd_ck34);
}

TEST_F(Shapes, Experiment1RckAlignAlwaysBeatsDistributed) {
  const int counts[] = {1, 5, 17, 33, 47};
  const auto rows = harness::run_experiment1(*ctx_, counts);
  for (const harness::Exp1Row& r : rows) {
    EXPECT_LT(r.rckalign_s, r.distributed_s) << r.slave_cores << " slaves";
    // The advantage is at least ~1.8x everywhere (paper: 2.1x-2.6x).
    EXPECT_GT(r.distributed_s / r.rckalign_s, 1.6) << r.slave_cores;
  }
}

TEST_F(Shapes, Experiment1EndpointsNearPaper) {
  const int counts[] = {1, 47};
  const auto rows = harness::run_experiment1(*ctx_, counts);
  // 1 slave: paper 2027 / 5212. 47 slaves: 56 / 120. Within 15%.
  EXPECT_NEAR(rows[0].rckalign_s, 2027.0, 0.15 * 2027.0);
  EXPECT_NEAR(rows[0].distributed_s, 5212.0, 0.15 * 5212.0);
  EXPECT_NEAR(rows[1].rckalign_s, 56.0, 0.15 * 56.0);
  EXPECT_NEAR(rows[1].distributed_s, 120.0, 0.20 * 120.0);
}

TEST_F(Shapes, Experiment2NearLinearSpeedup) {
  const int counts[] = {1, 3, 9, 23, 47};
  const auto rows = harness::run_experiment2(*ctx_, counts);
  for (const harness::Exp2Row& r : rows) {
    // Paper Figure 6: CK34 speedup stays within ~[0.72, 1.0] of ideal.
    const double efficiency = r.ck34_speedup / r.slave_cores;
    EXPECT_GT(efficiency, 0.70) << r.slave_cores;
    EXPECT_LE(efficiency, 1.001) << r.slave_cores;
  }
  // Monotone increasing speedup.
  for (std::size_t k = 1; k < rows.size(); ++k)
    EXPECT_GT(rows[k].ck34_speedup, rows[k - 1].ck34_speedup);
}

TEST_F(Shapes, Ck34SpeedupAt47NearPaper) {
  const int counts[] = {1, 47};
  const auto rows = harness::run_experiment2(*ctx_, counts);
  EXPECT_NEAR(rows[1].ck34_speedup, 36.17, 5.0);  // paper: 36.17
}

TEST_F(Shapes, MasterIsNotTheBottleneck) {
  // The paper's explanation for linear scaling: cheap on-chip transfers keep
  // the single master far from saturation. Check the master's busy time is
  // a small fraction of the makespan at 47 slaves.
  rckalign::RckAlignOptions opts;
  opts.slave_count = 47;
  opts.runtime = harness::default_runtime();
  opts.cache = &ctx_->ck34_cache;
  const rckalign::RckAlignRun run = rckalign::run_rckalign(ctx_->ck34, opts);
  const double master_busy = noc::to_seconds(run.core_reports[0].busy);
  const double makespan = noc::to_seconds(run.makespan);
  EXPECT_LT(master_busy / makespan, 0.25);
}

TEST_F(Shapes, LptImprovesTail) {
  // The paper suggests load balancing could improve performance; verify our
  // LPT option does not hurt and typically trims the straggler tail.
  const double fifo = harness::rckalign_seconds(ctx_->ck34, ctx_->ck34_cache, 47, false);
  const double lpt = harness::rckalign_seconds(ctx_->ck34, ctx_->ck34_cache, 47, true);
  EXPECT_LE(lpt, fifo * 1.02);
}

TEST_F(Shapes, DistributedBaselineShowsNfsSaturation) {
  // The paper's cause (a): the shared MCPC disk serializes NFS reads. At 47
  // slaves the disk must be near-critical (high utilization over the run),
  // while at 1 slave it is almost idle — the bottleneck emerges with scale.
  const scc::CoreTimingModel p54c = scc::CoreTimingModel::p54c_800();
  const auto at1 = rckalign::run_distributed(ctx_->ck34, ctx_->ck34_cache, 1, p54c);
  const auto at47 = rckalign::run_distributed(ctx_->ck34, ctx_->ck34_cache, 47, p54c);
  const double util1 =
      static_cast<double>(at1.disk_busy) / static_cast<double>(at1.makespan);
  const double util47 =
      static_cast<double>(at47.disk_busy) / static_cast<double>(at47.makespan);
  EXPECT_LT(util1, 0.10);
  EXPECT_GT(util47, 0.60);
}

TEST_F(Shapes, FaultTolerantFarmNoFaultParityOnCk34) {
  // The lease/checksum machinery must be free when nothing fails: the
  // fault-tolerant farm's CK34 makespan matches the plain farm within 1%.
  rckalign::RckAlignOptions plain;
  plain.slave_count = 47;
  plain.runtime = harness::default_runtime();
  plain.cache = &ctx_->ck34_cache;
  rckalign::RckAlignOptions ft = plain;
  ft.fault_tolerant = true;
  const rckalign::RckAlignRun a = rckalign::run_rckalign(ctx_->ck34, plain);
  const rckalign::RckAlignRun b = rckalign::run_rckalign(ctx_->ck34, ft);
  ASSERT_EQ(a.results.size(), b.results.size());
  EXPECT_EQ(b.farm_report.retries, 0u);
  EXPECT_EQ(b.farm_report.lease_expiries, 0u);
  const double pa = noc::to_seconds(a.makespan);
  const double pb = noc::to_seconds(b.makespan);
  EXPECT_LE(std::abs(pb - pa) / pa, 0.01) << "plain " << pa << "s vs ft " << pb << "s";
}

}  // namespace
}  // namespace rck
