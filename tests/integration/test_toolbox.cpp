// Cross-cutting integration of the PSC toolbox: the alignment methods,
// quality metrics and CP search must tell one consistent story about the
// same structures, and the simulated platform variants (torus fabric,
// DVFS) must never change the science.
#include <gtest/gtest.h>

#include "rck/bio/dataset.hpp"
#include "rck/core/ce_align.hpp"
#include "rck/core/cp_align.hpp"
#include "rck/core/quality.hpp"
#include "rck/core/tmalign.hpp"
#include "rck/rckalign/app.hpp"
#include "rck/rckalign/one_vs_all.hpp"

namespace rck {
namespace {

TEST(Toolbox, MethodsAgreeOnModelQualityOrdering) {
  // Build a native and two models of decreasing quality; TM-align,
  // CE and score_model must all rank them the same way.
  bio::Rng rng(1);
  const bio::Protein native = bio::make_protein("native", 110, rng);
  auto degrade = [&](double sigma) {
    bio::Protein m = native;
    std::normal_distribution<double> n(0.0, sigma);
    for (bio::Residue& r : m.residues()) r.ca += {n(rng), n(rng), n(rng)};
    return m;
  };
  const bio::Protein good = degrade(0.5);
  const bio::Protein bad = degrade(3.0);

  EXPECT_GT(core::tmalign(good, native).tm(), core::tmalign(bad, native).tm());
  EXPECT_GT(core::ce_align(good, native).tm, core::ce_align(bad, native).tm);
  EXPECT_GT(core::score_model_by_index(good, native).gdt_ts,
            core::score_model_by_index(bad, native).gdt_ts);
}

TEST(Toolbox, QualityTmMatchesTmAlignOnTrivialCorrespondence) {
  // For a rigidly moved copy, the fixed index pairing IS the optimal
  // alignment; score_model's TM must essentially equal tmalign's.
  bio::Rng rng(2);
  const bio::Protein p = bio::make_protein("p", 90, rng);
  const bio::Protein q = p.transformed(bio::random_transform(rng));
  const double fixed_tm = core::score_model_by_index(q, p).tm;
  const double searched_tm = core::tmalign(q, p).tm_norm_b;
  EXPECT_NEAR(fixed_tm, searched_tm, 0.01);
}

TEST(Toolbox, CpAlignConsistentWithCeOnPermutant) {
  // A circular permutant: sequential TM-align and CE both degrade; cp_align
  // recovers. CE's rigid core should at least match the permutant's larger
  // contiguous segment.
  bio::Rng rng(3);
  const bio::Protein a = bio::make_protein("a", 100, rng);
  bio::Protein b = core::rotate_chain(a, 40);
  b.apply(bio::random_transform(rng));

  const double tm_seq = core::tmalign(a, b).tm();
  core::CpAlignOptions cp_opts;
  cp_opts.rotation_stride = 10;
  const core::CpAlignResult cp = core::cp_align(a, b, cp_opts);
  EXPECT_GT(cp.best.tm(), tm_seq);
  EXPECT_TRUE(cp.is_circular_permutation);

  // CE (sequential, fragment-based) finds the bigger contiguous piece:
  // 60 residues of the 100 stay in order.
  const core::CeResult ce = core::ce_align(a, b);
  EXPECT_GE(ce.aligned_length, 40);
  EXPECT_LT(ce.aligned_length, 90);
}

TEST(Toolbox, OneVsAllSeqNwRanksFamilyFirst) {
  const auto db = bio::build_dataset(bio::tiny_spec());
  bio::Rng rng(4);
  const bio::Protein query = bio::perturb(db[0], "q", rng);  // family a
  rckalign::OneVsAllOptions opts;
  opts.slave_count = 3;
  opts.methods = {rckalign::Method::SeqNw};
  const rckalign::OneVsAllRun run = rckalign::run_one_vs_all(query, db, opts);
  ASSERT_EQ(run.ranked.size(), 1u);
  const auto& hits = run.ranked[0];
  // Descending identity; top hits are family a (indices 0-2).
  for (std::size_t k = 1; k < hits.size(); ++k)
    EXPECT_GE(hits[k - 1].seq_identity, hits[k].seq_identity);
  EXPECT_LE(hits[0].entry, 2u);
  EXPECT_GT(hits[0].seq_identity, 0.6);
}

TEST(Toolbox, TorusFabricChangesTimingNotScience) {
  const auto ds = bio::build_dataset(bio::tiny_spec());
  const rckalign::PairCache cache = rckalign::PairCache::build(ds);
  rckalign::RckAlignOptions mesh_opts;
  mesh_opts.slave_count = 5;
  mesh_opts.cache = &cache;
  rckalign::RckAlignOptions torus_opts = mesh_opts;
  torus_opts.runtime.chip.torus_mesh = true;

  const auto mesh_run = rckalign::run_rckalign(ds, mesh_opts);
  const auto torus_run = rckalign::run_rckalign(ds, torus_opts);
  // Identical science...
  ASSERT_EQ(mesh_run.results.size(), torus_run.results.size());
  auto key = [](const rckalign::PairRow& r) {
    return std::tuple{r.i, r.j, r.tm_norm_a, r.rmsd};
  };
  auto a = mesh_run.results, b = torus_run.results;
  auto by_pair = [&](const auto& x, const auto& y) { return key(x) < key(y); };
  std::sort(a.begin(), a.end(), by_pair);
  std::sort(b.begin(), b.end(), by_pair);
  for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(key(a[k]), key(b[k]));
  // ...and (at most) marginally different timing: comm is negligible here.
  const double ratio = static_cast<double>(torus_run.makespan) /
                       static_cast<double>(mesh_run.makespan);
  EXPECT_NEAR(ratio, 1.0, 0.01);
}

TEST(Toolbox, DvfsChangesTimingNotScience) {
  const auto ds = bio::build_dataset(bio::tiny_spec());
  const rckalign::PairCache cache = rckalign::PairCache::build(ds);
  rckalign::RckAlignOptions slow;
  slow.slave_count = 4;
  slow.cache = &cache;
  slow.runtime.core_freq_scale = std::vector<double>(5, 0.5);
  rckalign::RckAlignOptions normal = slow;
  normal.runtime.core_freq_scale.clear();

  const auto slow_run = rckalign::run_rckalign(ds, slow);
  const auto normal_run = rckalign::run_rckalign(ds, normal);
  EXPECT_GT(slow_run.makespan, normal_run.makespan);
  ASSERT_EQ(slow_run.results.size(), normal_run.results.size());
  // Half-speed slaves: compute-dominated makespan about doubles.
  const double ratio = static_cast<double>(slow_run.makespan) /
                       static_cast<double>(normal_run.makespan);
  EXPECT_NEAR(ratio, 2.0, 0.1);
}

TEST(Toolbox, FastOptionsPreserveFamilyStructure) {
  // Fast TM-align must classify the tiny dataset identically to the full
  // search at the fold threshold.
  const auto ds = bio::build_dataset(bio::tiny_spec());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (std::size_t j = i + 1; j < ds.size(); ++j) {
      const bool full = core::tmalign(ds[i], ds[j]).tm() > 0.5;
      const bool fast =
          core::tmalign(ds[i], ds[j], core::fast_tmalign_options()).tm() > 0.5;
      EXPECT_EQ(full, fast) << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace rck
