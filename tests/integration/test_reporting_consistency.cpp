// Reporting-path consistency: every number a TmAlignResult carries must be
// recomputable from its own transform and mapping. Swept over all pairs of
// the tiny dataset (28 structurally diverse pairs).
#include <gtest/gtest.h>

#include <cmath>

#include "rck/bio/dataset.hpp"
#include "rck/core/tmalign.hpp"
#include "rck/core/tmscore.hpp"

namespace rck {
namespace {

class ReportingConsistency
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new std::vector<bio::Protein>(bio::build_dataset(bio::tiny_spec()));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static std::vector<bio::Protein>* dataset_;
};

std::vector<bio::Protein>* ReportingConsistency::dataset_ = nullptr;

TEST_P(ReportingConsistency, EveryReportedNumberRecomputes) {
  const auto [i, j] = GetParam();
  const bio::Protein& a = (*dataset_)[i];
  const bio::Protein& b = (*dataset_)[j];
  const core::TmAlignResult r = core::tmalign(a, b);

  // Gather aligned pairs from the mapping.
  std::vector<bio::Vec3> xa, ya;
  int identical = 0;
  for (std::size_t y = 0; y < r.y2x.size(); ++y) {
    if (r.y2x[y] < 0) continue;
    const std::size_t x = static_cast<std::size_t>(r.y2x[y]);
    xa.push_back(a[x].ca);
    ya.push_back(b[y].ca);
    identical += a[x].aa == b[y].aa;
  }
  ASSERT_EQ(static_cast<int>(xa.size()), r.aligned_length);

  // RMSD recomputes from the transform.
  double ss = 0.0;
  for (std::size_t k = 0; k < xa.size(); ++k)
    ss += distance2(r.transform.apply(xa[k]), ya[k]);
  EXPECT_NEAR(std::sqrt(ss / static_cast<double>(xa.size())), r.rmsd, 1e-9);

  // Both TM normalizations recompute from the transform.
  const int la = static_cast<int>(a.size());
  const int lb = static_cast<int>(b.size());
  EXPECT_NEAR(core::tm_of_transform(xa, ya, r.transform, la, core::d0_of_length(la)),
              r.tm_norm_a, 1e-9);
  EXPECT_NEAR(core::tm_of_transform(xa, ya, r.transform, lb, core::d0_of_length(lb)),
              r.tm_norm_b, 1e-9);

  // Sequence identity recomputes from the mapping.
  EXPECT_NEAR(static_cast<double>(identical) / static_cast<double>(xa.size()),
              r.seq_identity, 1e-12);

  // The transform is a proper rigid motion.
  EXPECT_TRUE(bio::is_rotation(r.transform.rot, 1e-8));
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> all_tiny_pairs() {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (std::uint32_t i = 0; i < 8; ++i)
    for (std::uint32_t j = i + 1; j < 8; ++j) pairs.push_back({i, j});
  return pairs;
}

INSTANTIATE_TEST_SUITE_P(TinyAllPairs, ReportingConsistency,
                         ::testing::ValuesIn(all_tiny_pairs()));

}  // namespace
}  // namespace rck
