#include "rck/scc/timing.hpp"

#include <gtest/gtest.h>

namespace rck::scc {
namespace {

core::AlignStats some_work() {
  core::AlignStats s;
  s.dp_cells = 100000;
  s.matrix_cells = 110000;
  s.scored_pairs = 60000;
  s.kabsch_points = 40000;
  s.kabsch_calls = 500;
  s.iterations = 8;
  return s;
}

TEST(Timing, CyclesAreDeterministic) {
  const CoreTimingModel m = CoreTimingModel::p54c_800();
  EXPECT_EQ(m.cycles(some_work()), m.cycles(some_work()));
}

TEST(Timing, CyclesScaleWithWork) {
  const CoreTimingModel m = CoreTimingModel::p54c_800();
  core::AlignStats one = some_work();
  core::AlignStats two = one + one;
  const std::uint64_t c1 = m.cycles(one);
  const std::uint64_t c2 = m.cycles(two);
  // Doubling the counted work roughly doubles cycles (fixed per-job part
  // stays constant, so strictly less than 2x).
  EXPECT_GT(c2, c1);
  EXPECT_LT(c2, 2 * c1);
  EXPECT_GT(c2, 2 * c1 - 10'000'000);
}

TEST(Timing, CyclesToTimeUsesFrequency) {
  const CoreTimingModel p54c = CoreTimingModel::p54c_800();
  const CoreTimingModel amd = CoreTimingModel::amd_athlon_2400();
  // 800 million cycles at 800 MHz = 1 second.
  EXPECT_EQ(p54c.cycles_to_time(800'000'000), noc::kPsPerSec);
  // Same cycles at 2.4 GHz = 1/3 second.
  EXPECT_NEAR(noc::to_seconds(amd.cycles_to_time(800'000'000)), 1.0 / 3.0, 1e-9);
}

TEST(Timing, ProfileNames) {
  EXPECT_EQ(CoreTimingModel::p54c_800().name(), "P54C@800MHz");
  EXPECT_EQ(CoreTimingModel::amd_athlon_2400().name(), "AMD-AthlonIIX2@2.4GHz");
}

TEST(Timing, AmdFasterThanP54cOnSameWork) {
  const CoreTimingModel p54c = CoreTimingModel::p54c_800();
  const CoreTimingModel amd = CoreTimingModel::amd_athlon_2400();
  const core::AlignStats w = some_work();
  const double ratio = static_cast<double>(p54c.time(w)) / static_cast<double>(amd.time(w));
  // Table III: the AMD is ~4-5x faster per core on cache-resident work.
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 7.0);
}

TEST(Timing, CachePressureSlowsAmdMore) {
  // The calibrated story for Table III's dataset-dependent AMD advantage:
  // the fast core pays relatively more once the working set spills.
  const CoreTimingModel p54c = CoreTimingModel::p54c_800();
  const CoreTimingModel amd = CoreTimingModel::amd_athlon_2400();
  const core::AlignStats w = some_work();
  const std::uint64_t small_fp = 100 * 1024;         // fits both caches
  const std::uint64_t large_fp = 16 * 1024 * 1024;   // spills both
  const double p54c_slowdown = static_cast<double>(p54c.cycles(w, large_fp)) /
                               static_cast<double>(p54c.cycles(w, small_fp));
  const double amd_slowdown = static_cast<double>(amd.cycles(w, large_fp)) /
                              static_cast<double>(amd.cycles(w, small_fp));
  EXPECT_GT(amd_slowdown, p54c_slowdown);
}

TEST(Timing, FootprintBelowCacheHasNoPenalty) {
  const CoreTimingModel amd = CoreTimingModel::amd_athlon_2400();
  const core::AlignStats w = some_work();
  EXPECT_EQ(amd.cycles(w, 0), amd.cycles(w, 512 * 1024));
}

TEST(Timing, FootprintRampSaturates) {
  const CoreTimingModel amd = CoreTimingModel::amd_athlon_2400();
  const core::AlignStats w = some_work();
  // Beyond 4x the cache size the ramp is flat.
  EXPECT_EQ(amd.cycles(w, 8 * 1024 * 1024), amd.cycles(w, 64 * 1024 * 1024));
}

TEST(Timing, AlignmentFootprintFormula) {
  // (L1+1)(L2+1)*9 + L1*L2*8 + (L1+L2)*24
  EXPECT_EQ(CoreTimingModel::alignment_footprint(10, 20),
            11u * 21u * 9u + 10u * 20u * 8u + 30u * 24u);
  EXPECT_GT(CoreTimingModel::alignment_footprint(500, 500),
            CoreTimingModel::alignment_footprint(100, 100));
}

TEST(Timing, EmptyStatsStillChargeFixedCost) {
  const CoreTimingModel m = CoreTimingModel::p54c_800();
  EXPECT_GT(m.cycles(core::AlignStats{}), 0u);  // per-job fixed cycles
}

TEST(AlignStats, Arithmetic) {
  core::AlignStats a;
  a.dp_cells = 5;
  a.kabsch_calls = 1;
  core::AlignStats b;
  b.dp_cells = 7;
  b.iterations = 2;
  const core::AlignStats c = a + b;
  EXPECT_EQ(c.dp_cells, 12u);
  EXPECT_EQ(c.kabsch_calls, 1u);
  EXPECT_EQ(c.iterations, 2u);
  EXPECT_EQ(c.total_ops(), 12u);
}

}  // namespace
}  // namespace rck::scc
