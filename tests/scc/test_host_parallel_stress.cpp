// Randomized cross-check of the host-parallel scheduler.
//
// Generates small deadlock-free SPMD programs — barrier-separated rounds of
// random compute, ring exchanges, and master gathers — and runs each one
// under the serial and the host-parallel scheduler, asserting every
// simulated observable is identical. The program *shape* is drawn from a
// seeded RNG before the run, so both executions interpret the same plan.
//
// This file doubles as the TSan workload: built with RCK_SANITIZE=thread it
// exercises the parked-thread handoff, window release/join, and per-core
// trace buffers under real host concurrency.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "rck/noc/network.hpp"
#include "rck/scc/runtime.hpp"

namespace rck::scc {
namespace {

struct RoundPlan {
  int shift = 1;                        ///< ring offset for the exchange
  bool gather = false;                  ///< slaves report to rank 0 after
  std::vector<std::uint64_t> cycles;    ///< per-rank compute this round
  std::vector<std::uint32_t> dram;      ///< per-rank DRAM bytes (0 = skip)
  std::vector<std::uint32_t> payload;   ///< per-rank ring payload size
};

struct ProgramPlan {
  int nranks = 2;
  std::vector<RoundPlan> rounds;
};

ProgramPlan make_plan(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  ProgramPlan plan;
  plan.nranks = 2 + static_cast<int>(rng() % 7);  // 2..8 cores
  const int nrounds = 2 + static_cast<int>(rng() % 4);
  for (int r = 0; r < nrounds; ++r) {
    RoundPlan round;
    round.shift = 1 + static_cast<int>(rng() % static_cast<std::uint64_t>(
                                                   plan.nranks - 1));
    round.gather = (rng() % 3) == 0;
    for (int k = 0; k < plan.nranks; ++k) {
      round.cycles.push_back(10'000 + rng() % 200'000);
      round.dram.push_back((rng() % 2) ? static_cast<std::uint32_t>(
                                             256 + rng() % 65536)
                                       : 0u);
      round.payload.push_back(static_cast<std::uint32_t>(1 + rng() % 512));
    }
    plan.rounds.push_back(std::move(round));
  }
  return plan;
}

// Interpret the plan as an SPMD program. Sends precede receives within a
// round (send is asynchronous), so every ring exchange is deadlock-free.
Program interpret(const ProgramPlan& plan) {
  return [plan](CoreCtx& ctx) {
    const int n = ctx.nranks();
    const int me = ctx.rank();
    for (const RoundPlan& round : plan.rounds) {
      ctx.charge_cycles(round.cycles[static_cast<std::size_t>(me)]);
      if (const auto bytes = round.dram[static_cast<std::size_t>(me)])
        ctx.dram_read(bytes);

      const int dst = (me + round.shift) % n;
      const int src = (me - round.shift % n + n) % n;
      bio::Bytes payload(round.payload[static_cast<std::size_t>(me)],
                         static_cast<std::byte>(me));
      ctx.send(dst, payload);
      const bio::Bytes got = ctx.recv(src);
      ASSERT_EQ(got.size(), round.payload[static_cast<std::size_t>(src)]);
      ctx.charge_cycles(500 * got.size());

      if (round.gather) {
        if (me == 0) {
          std::vector<int> srcs;
          for (int k = 1; k < n; ++k) srcs.push_back(k);
          for (int k = 1; k < n; ++k) {
            const int who = ctx.wait_any(srcs);
            (void)ctx.recv(who);
          }
        } else {
          ctx.send(0, bio::Bytes{static_cast<std::byte>(me)});
        }
      }
      ctx.barrier();
    }
  };
}

struct RunSnapshot {
  noc::SimTime makespan = 0;
  std::vector<CoreReport> reports;
  std::vector<TraceEvent> trace;
  noc::NetworkStats net;
  std::uint64_t events = 0;

  bool operator==(const RunSnapshot&) const = default;
};

RunSnapshot execute(const ProgramPlan& plan, int host_threads) {
  RuntimeConfig cfg;
  cfg.enable_trace = true;
  cfg.host.threads = host_threads;
  SpmdRuntime rt(cfg);
  RunSnapshot s;
  s.makespan = rt.run(plan.nranks, interpret(plan));
  s.reports = rt.core_reports();
  s.trace = rt.trace();
  s.net = rt.network_stats();
  s.events = rt.events_fired();
  return s;
}

TEST(HostParallelStress, RandomProgramsMatchSerial) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const ProgramPlan plan = make_plan(seed);
    const RunSnapshot serial = execute(plan, 1);
    const RunSnapshot parallel = execute(plan, 4);
    EXPECT_EQ(serial, parallel) << "seed " << seed << " nranks " << plan.nranks;
  }
}

TEST(HostParallelStress, WiderThreadCountsAgreeToo) {
  // The window cap must not change results: 2, 4, and 16 host threads all
  // reproduce the serial execution.
  const ProgramPlan plan = make_plan(99);
  const RunSnapshot serial = execute(plan, 1);
  for (const int threads : {2, 4, 16})
    EXPECT_EQ(serial, execute(plan, threads)) << threads << " host threads";
}

TEST(HostParallelStress, HardwareConvenienceMatchesSerial) {
  const ProgramPlan plan = make_plan(7);
  RuntimeConfig cfg;
  cfg.enable_trace = true;
  cfg.host = HostParallelism::hardware();
  SpmdRuntime rt(cfg);
  const noc::SimTime makespan = rt.run(plan.nranks, interpret(plan));
  EXPECT_EQ(makespan, execute(plan, 1).makespan);
  EXPECT_GE(HostParallelism::hardware().threads, 1);
}

TEST(HostParallelStress, RepeatedRunsUnderParallelAreStable) {
  // Same plan, many parallel runs: host thread scheduling noise must never
  // leak into simulated results.
  const ProgramPlan plan = make_plan(1234);
  const RunSnapshot first = execute(plan, 4);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(first, execute(plan, 4)) << "run " << i;
}

// ---------------------------------------------------------------------------
// Steal-heavy workload: many tiny compute sections with heavily skewed
// per-core durations, punctuated by rare communication. Fast cores burn
// through their sections and park long before the skewed stragglers, so the
// scheduler's handoff/steal path (a parking core passing its host slot to
// the next granted core) churns constantly. Under TSan this is the prime
// workload for races in slot handoff and per-core trace buffers.

Program steal_heavy(std::uint64_t seed, int sections) {
  return [seed, sections](CoreCtx& ctx) {
    const int n = ctx.nranks();
    const int me = ctx.rank();
    // Deterministic per-core skew: cores 0, 3, 6, ... get 32x sections.
    const std::uint64_t skew = (me % 3 == 0) ? 32 : 1;
    std::mt19937_64 rng(seed * 1000003u + static_cast<std::uint64_t>(me));
    for (int s = 0; s < sections; ++s) {
      // Tiny sections: a few hundred cycles each, so the released fast path
      // commits (and can exhaust its horizon) thousands of times per run.
      ctx.charge_cycles(200 + rng() % 800 * skew);
      if (rng() % 16 == 0) ctx.dram_read(64 + rng() % 4096);
      // Rare ring traffic keeps events in flight so horizons stay finite.
      if (s % (sections / 4 + 1) == (me % (sections / 4 + 1))) {
        ctx.send((me + 1) % n, bio::Bytes{static_cast<std::byte>(me)});
        (void)ctx.recv((me - 1 + n) % n);
      }
    }
    ctx.barrier();
  };
}

RunSnapshot execute_program(int nranks, const Program& program,
                            int host_threads) {
  RuntimeConfig cfg;
  cfg.enable_trace = true;
  cfg.host.threads = host_threads;
  SpmdRuntime rt(cfg);
  RunSnapshot s;
  s.makespan = rt.run(nranks, program);
  s.reports = rt.core_reports();
  s.trace = rt.trace();
  s.net = rt.network_stats();
  s.events = rt.events_fired();
  return s;
}

TEST(HostParallelStress, StealHeavyTinySectionsMatchSerial) {
  for (const std::uint64_t seed : {3u, 17u, 451u}) {
    const Program program = steal_heavy(seed, 96);
    const RunSnapshot serial = execute_program(9, program, 1);
    for (const int threads : {2, 4, 8})
      EXPECT_EQ(serial, execute_program(9, program, threads))
          << "seed " << seed << " threads " << threads;
  }
}

TEST(HostParallelStress, StealHeavyRepeatedRunsAreStable) {
  // The skewed workload again, hammered repeatedly at one width: slot
  // handoff order is wall-clock nondeterministic, simulated bytes are not.
  const Program program = steal_heavy(29, 128);
  const RunSnapshot first = execute_program(12, program, 4);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(first, execute_program(12, program, 4)) << "run " << i;
}

}  // namespace
}  // namespace rck::scc
