// Deterministic fault injection: crashes, message loss/corruption, storage
// stalls, and the timed-wait primitives built for surviving them.
#include "rck/scc/runtime.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rck::scc {
namespace {

using bio::Bytes;
using bio::WireReader;
using bio::WireWriter;

Bytes u32_msg(std::uint32_t v) {
  WireWriter w;
  w.u32(v);
  return w.take();
}

std::uint32_t u32_of(Bytes b) {
  WireReader r(std::move(b));
  return r.u32();
}

RuntimeConfig with_faults(FaultPlan plan) {
  RuntimeConfig cfg;
  cfg.faults = std::move(plan);
  return cfg;
}

TEST(Faults, CrashSurfacesInCoreReport) {
  FaultPlan plan;
  plan.crashes.push_back({1, 3500 * noc::kPsPerUs});
  SpmdRuntime rt(with_faults(plan));
  const noc::SimTime t = rt.run(2, [](CoreCtx& c) {
    for (int k = 0; k < 10; ++k) c.charge(noc::kPsPerMs);
  });
  // The survivor finishes its 10 ms of work; the victim is dead.
  EXPECT_EQ(t, 10 * noc::kPsPerMs);
  EXPECT_FALSE(rt.core_reports()[0].crashed);
  EXPECT_TRUE(rt.core_reports()[1].crashed);
  EXPECT_EQ(rt.core_reports()[1].crashed_at, 3500 * noc::kPsPerUs);
  // The victim stopped at an operation boundary at or after the trigger.
  EXPECT_LT(rt.core_reports()[1].finish, 10 * noc::kPsPerMs);
  EXPECT_GE(rt.core_reports()[1].finish, 3500 * noc::kPsPerUs);
}

TEST(Faults, CrashAtTimeZeroPreventsAnyExecution) {
  FaultPlan plan;
  plan.crashes.push_back({1, 0});
  SpmdRuntime rt(with_faults(plan));
  bool victim_ran = false;
  rt.run(2, [&](CoreCtx& c) {
    if (c.rank() == 1) victim_ran = true;
    c.charge(noc::kPsPerUs);
  });
  EXPECT_FALSE(victim_ran);
  EXPECT_TRUE(rt.core_reports()[1].crashed);
}

TEST(Faults, StallOnDeadPeerIsFaultStallNotDeadlock) {
  FaultPlan plan;
  plan.crashes.push_back({1, noc::kPsPerMs});
  SpmdRuntime rt(with_faults(plan));
  try {
    rt.run(2, [](CoreCtx& c) {
      if (c.rank() == 0) (void)c.recv(1);  // the sender dies first
      else {
        c.charge(2 * noc::kPsPerMs);
        c.send(0, u32_msg(1));
      }
    });
    FAIL() << "expected FaultStallError";
  } catch (const FaultStallError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("crashed core(s) 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rank 0: blocked"), std::string::npos) << msg;
  }
}

TEST(Faults, BarrierStallAfterCrashIsFaultStall) {
  FaultPlan plan;
  plan.crashes.push_back({2, noc::kPsPerUs});
  SpmdRuntime rt(with_faults(plan));
  EXPECT_THROW(rt.run(3,
                      [](CoreCtx& c) {
                        c.charge(noc::kPsPerMs);
                        c.barrier();
                      }),
               FaultStallError);
}

TEST(Faults, GenuineDeadlockStillNamesBlockedRanks) {
  SpmdRuntime rt{RuntimeConfig{}};
  try {
    rt.run(2, [](CoreCtx& c) {
      (void)c.recv(1 - c.rank());  // mutual recv, nobody sends
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank 0: blocked"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rank 1: blocked"), std::string::npos) << msg;
    EXPECT_NE(msg.find("wait-src=1"), std::string::npos) << msg;
  }
}

TEST(Faults, DroppedMessageNeverArrives) {
  FaultPlan plan;
  plan.messages.push_back({FaultPlan::MessageFault::Kind::Drop, 0, 1, 0});
  SpmdRuntime rt(with_faults(plan));
  rt.run(2, [](CoreCtx& c) {
    if (c.rank() == 0) {
      c.send(1, u32_msg(7));   // dropped
      c.send(1, u32_msg(8));   // delivered
    } else {
      EXPECT_EQ(u32_of(c.recv(0)), 8u);
      EXPECT_EQ(c.recv_timeout(0, 5 * noc::kPsPerMs), std::nullopt);
    }
  });
  EXPECT_EQ(rt.network_stats().dropped, 1u);
}

TEST(Faults, CorruptedMessageArrivesMangledSameSize) {
  FaultPlan plan;
  plan.messages.push_back({FaultPlan::MessageFault::Kind::Corrupt, 0, 1, 0});
  SpmdRuntime rt(with_faults(plan));
  rt.run(2, [](CoreCtx& c) {
    if (c.rank() == 0) {
      c.send(1, u32_msg(7));
    } else {
      const Bytes got = c.recv(0);
      ASSERT_EQ(got.size(), 4u);
      EXPECT_NE(u32_of(got), 7u);  // deterministically flipped bits
    }
  });
}

TEST(Faults, DramStallMultipliesReadTime) {
  const auto read_time = [](FaultPlan plan) {
    SpmdRuntime rt(with_faults(std::move(plan)));
    return rt.run(1, [](CoreCtx& c) { c.dram_read(1 << 20); });
  };
  const noc::SimTime nominal = read_time({});
  FaultPlan stalled;
  stalled.stalls.push_back({-1, 0, noc::kPsPerSec, 4.0});
  EXPECT_EQ(read_time(stalled), 4 * nominal);
  // A window that starts after the read leaves it untouched.
  FaultPlan later;
  later.stalls.push_back({-1, noc::kPsPerSec, 2 * noc::kPsPerSec, 4.0});
  EXPECT_EQ(read_time(later), nominal);
}

TEST(Faults, RecvTimeoutExpiresAtDeadline) {
  SpmdRuntime rt{RuntimeConfig{}};
  rt.run(2, [](CoreCtx& c) {
    if (c.rank() == 0) {
      EXPECT_EQ(c.recv_timeout(1, 7 * noc::kPsPerMs), std::nullopt);
      EXPECT_EQ(c.now(), 7 * noc::kPsPerMs);
    }
    // rank 1 exits immediately without sending.
  });
}

TEST(Faults, RecvTimeoutDeliversWhenMessageBeatsDeadline) {
  SpmdRuntime rt{RuntimeConfig{}};
  rt.run(2, [](CoreCtx& c) {
    if (c.rank() == 0) {
      const auto got = c.recv_timeout(1, 100 * noc::kPsPerMs);
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(u32_of(*got), 42u);
      EXPECT_LT(c.now(), 100 * noc::kPsPerMs);
    } else {
      c.charge(noc::kPsPerMs);
      c.send(0, u32_msg(42));
    }
  });
}

TEST(Faults, WaitAnyTimeoutReturnsMinusOneOnSilence) {
  SpmdRuntime rt{RuntimeConfig{}};
  rt.run(3, [](CoreCtx& c) {
    if (c.rank() == 0) {
      const std::vector<int> srcs{1, 2};
      EXPECT_EQ(c.wait_any_timeout(srcs, 3 * noc::kPsPerMs), -1);
      EXPECT_EQ(c.now(), 3 * noc::kPsPerMs);
    }
  });
}

TEST(Faults, WaitAnyTimeoutReturnsSenderWhenMessagePending) {
  SpmdRuntime rt{RuntimeConfig{}};
  rt.run(3, [](CoreCtx& c) {
    if (c.rank() == 0) {
      const std::vector<int> srcs{1, 2};
      EXPECT_EQ(c.wait_any_timeout(srcs, 100 * noc::kPsPerMs), 2);
      EXPECT_EQ(u32_of(c.recv(2)), 9u);
    } else if (c.rank() == 2) {
      c.send(0, u32_msg(9));
    }
  });
}

TEST(Faults, EmptyWaitAnyThrows) {
  SpmdRuntime rt{RuntimeConfig{}};
  EXPECT_THROW(rt.run(1,
                      [](CoreCtx& c) {
                        (void)c.wait_any(std::span<const int>{});
                      }),
               SimError);
  SpmdRuntime rt2{RuntimeConfig{}};
  EXPECT_THROW(rt2.run(1,
                       [](CoreCtx& c) {
                         (void)c.wait_any_timeout(std::span<const int>{},
                                                  noc::kPsPerMs);
                       }),
               SimError);
}

TEST(Faults, PeerAliveTracksCrash) {
  FaultPlan plan;
  plan.crashes.push_back({1, 5 * noc::kPsPerMs});
  SpmdRuntime rt(with_faults(plan));
  rt.run(2, [](CoreCtx& c) {
    if (c.rank() == 0) {
      EXPECT_TRUE(c.peer_alive(1));
      c.charge(10 * noc::kPsPerMs);
      EXPECT_FALSE(c.peer_alive(1));
    } else {
      c.charge(20 * noc::kPsPerMs);  // still mid-run when the crash lands
    }
  });
}

TEST(Faults, EventCrashFiresAfterExactEventCount) {
  // Two identical runs: the event-indexed crash must land at the same
  // simulated instant both times — that is the whole point of pinning a
  // crash to a protocol step rather than a wall-clock time.
  const auto once = [] {
    FaultPlan plan;
    plan.event_crashes.push_back({1, 5});
    SpmdRuntime rt(with_faults(plan));
    rt.run(2, [](CoreCtx& c) {
      if (c.rank() == 0) {
        for (std::uint32_t k = 0; k < 10; ++k) {
          c.charge(noc::kPsPerMs);
          c.send(1, u32_msg(k));
        }
      } else {
        for (std::uint32_t k = 0; k < 10; ++k) (void)c.recv(0);
      }
    });
    EXPECT_TRUE(rt.core_reports()[1].crashed);
    return rt.core_reports()[1].crashed_at;
  };
  const noc::SimTime a = once();
  const noc::SimTime b = once();
  EXPECT_EQ(a, b);
}

TEST(Faults, EventCrashAtZeroEventsKillsBeforeAnyWork) {
  FaultPlan plan;
  plan.event_crashes.push_back({1, 0});
  SpmdRuntime rt(with_faults(plan));
  bool victim_ran = false;
  rt.run(2, [&](CoreCtx& c) {
    if (c.rank() == 1) victim_ran = true;
    c.charge(noc::kPsPerUs);
  });
  EXPECT_FALSE(victim_ran);
  EXPECT_TRUE(rt.core_reports()[1].crashed);
}

TEST(Faults, RestartRevivesACrashedCore) {
  FaultPlan plan;
  plan.crashes.push_back({1, noc::kPsPerMs});
  plan.restarts.push_back({1, 5 * noc::kPsPerMs});
  SpmdRuntime rt(with_faults(plan));
  int runs_on_rank1 = 0;
  rt.run(2, [&](CoreCtx& c) {
    if (c.rank() == 1) ++runs_on_rank1;
    c.charge(10 * noc::kPsPerMs);
  });
  // The program re-executes from the top on the revived core.
  EXPECT_EQ(runs_on_rank1, 2);
  const CoreReport& r = rt.core_reports()[1];
  EXPECT_EQ(r.restarts, 1u);
  EXPECT_TRUE(r.crashed);  // the crash stays on record
  // Restarted at 5 ms, then 10 ms of work: the core finished this time.
  EXPECT_GE(r.finish, 15 * noc::kPsPerMs);
}

TEST(Faults, RestartWithoutACrashIsANoOp) {
  FaultPlan plan;
  plan.restarts.push_back({1, noc::kPsPerMs});
  SpmdRuntime rt(with_faults(plan));
  int runs_on_rank1 = 0;
  rt.run(2, [&](CoreCtx& c) {
    if (c.rank() == 1) ++runs_on_rank1;
    c.charge(5 * noc::kPsPerMs);
  });
  EXPECT_EQ(runs_on_rank1, 1);
  EXPECT_EQ(rt.core_reports()[1].restarts, 0u);
}

TEST(Faults, RestartedCoreStartsWithAFreshInbox) {
  FaultPlan plan;
  plan.crashes.push_back({1, noc::kPsPerMs});
  plan.restarts.push_back({1, 5 * noc::kPsPerMs});
  SpmdRuntime rt(with_faults(plan));
  rt.run(2, [](CoreCtx& c) {
    if (c.rank() == 0) {
      c.send(1, u32_msg(7));  // lands while rank 1 is dead: wiped on restart
      c.charge(20 * noc::kPsPerMs);
      c.send(1, u32_msg(9));
    } else {
      c.charge(2 * noc::kPsPerMs);  // first life dies at 1 ms mid-charge
      EXPECT_EQ(u32_of(c.recv(0)), 9u);
    }
  });
}

TEST(Faults, InvalidPlansAreRejected) {
  {
    FaultPlan plan;
    plan.crashes.push_back({5, 0});
    SpmdRuntime rt(with_faults(plan));
    EXPECT_THROW(rt.run(2, [](CoreCtx&) {}), SimError);
  }
  {
    FaultPlan plan;
    plan.stalls.push_back({0, noc::kPsPerMs, 0, 2.0});  // ends before start
    SpmdRuntime rt(with_faults(plan));
    EXPECT_THROW(rt.run(1, [](CoreCtx&) {}), SimError);
  }
  {
    FaultPlan plan;
    plan.messages.push_back({FaultPlan::MessageFault::Kind::Drop, 0, 9, 0});
    SpmdRuntime rt(with_faults(plan));
    EXPECT_THROW(rt.run(2, [](CoreCtx&) {}), SimError);
  }
}

// The acceptance criterion: the same FaultPlan + program replays
// bit-for-bit, including every recovery decision visible in the reports.
TEST(Faults, DeterministicReplay) {
  const auto once = [](noc::SimTime* makespan, std::vector<CoreReport>* reports,
                       noc::NetworkStats* net) {
    FaultPlan plan;
    plan.crashes.push_back({3, 2 * noc::kPsPerMs});
    plan.messages.push_back({FaultPlan::MessageFault::Kind::Drop, 1, 0, 0});
    plan.messages.push_back({FaultPlan::MessageFault::Kind::Corrupt, 2, 0, 1});
    plan.stalls.push_back({0, 0, noc::kPsPerMs, 3.0});
    SpmdRuntime rt(with_faults(plan));
    *makespan = rt.run(4, [](CoreCtx& c) {
      if (c.rank() == 0) {
        c.dram_read(1 << 16);
        std::size_t got = 0;
        const std::vector<int> srcs{1, 2, 3};
        while (c.wait_any_timeout(srcs, 10 * noc::kPsPerMs) >= 0) {
          for (int s : srcs)
            while (c.probe(s)) {
              (void)c.recv(s);
              ++got;
            }
        }
        EXPECT_GT(got, 0u);
      } else {
        for (std::uint32_t k = 0; k < 3; ++k) {
          c.charge(noc::kPsPerMs);
          c.send(0, u32_msg(k));
        }
      }
    });
    *reports = rt.core_reports();
    *net = rt.network_stats();
  };

  noc::SimTime m1 = 0, m2 = 0;
  std::vector<CoreReport> r1, r2;
  noc::NetworkStats n1, n2;
  once(&m1, &r1, &n1);
  once(&m2, &r2, &n2);
  EXPECT_EQ(m1, m2);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].finish, r2[i].finish) << "rank " << i;
    EXPECT_EQ(r1[i].busy, r2[i].busy) << "rank " << i;
    EXPECT_EQ(r1[i].blocked, r2[i].blocked) << "rank " << i;
    EXPECT_EQ(r1[i].crashed, r2[i].crashed) << "rank " << i;
    EXPECT_EQ(r1[i].crashed_at, r2[i].crashed_at) << "rank " << i;
    EXPECT_EQ(r1[i].messages_sent, r2[i].messages_sent) << "rank " << i;
    EXPECT_EQ(r1[i].messages_received, r2[i].messages_received) << "rank " << i;
  }
  EXPECT_EQ(n1.messages, n2.messages);
  EXPECT_EQ(n1.dropped, n2.dropped);
  EXPECT_EQ(n1.total_queueing, n2.total_queueing);
}

}  // namespace
}  // namespace rck::scc
