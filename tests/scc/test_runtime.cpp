#include "rck/scc/runtime.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace rck::scc {
namespace {

using bio::Bytes;
using bio::WireReader;
using bio::WireWriter;

Bytes u32_msg(std::uint32_t v) {
  WireWriter w;
  w.u32(v);
  return w.take();
}

std::uint32_t u32_of(Bytes b) {
  WireReader r(std::move(b));
  return r.u32();
}

TEST(Runtime, SingleCoreChargesTime) {
  SpmdRuntime rt{RuntimeConfig{}};
  const noc::SimTime t = rt.run(1, [](CoreCtx& c) {
    c.charge(5 * noc::kPsPerMs);
    c.charge(3 * noc::kPsPerMs);
  });
  EXPECT_EQ(t, 8 * noc::kPsPerMs);
  EXPECT_EQ(rt.core_reports()[0].busy, 8 * noc::kPsPerMs);
}

TEST(Runtime, ChargeCyclesUsesCoreModel) {
  RuntimeConfig cfg;  // P54C at 800 MHz
  SpmdRuntime rt(cfg);
  const noc::SimTime t = rt.run(1, [](CoreCtx& c) { c.charge_cycles(800'000'000); });
  EXPECT_EQ(t, noc::kPsPerSec);
  EXPECT_EQ(rt.core_reports()[0].compute_cycles, 800'000'000u);
}

TEST(Runtime, PingPong) {
  SpmdRuntime rt{RuntimeConfig{}};
  rt.run(2, [](CoreCtx& c) {
    if (c.rank() == 0) {
      c.send(1, u32_msg(41));
      EXPECT_EQ(u32_of(c.recv(1)), 42u);
    } else {
      const std::uint32_t v = u32_of(c.recv(0));
      c.send(0, u32_msg(v + 1));
    }
  });
}

TEST(Runtime, MessageLatencyAdvancesReceiverClock) {
  SpmdRuntime rt{RuntimeConfig{}};
  noc::SimTime recv_done = 0;
  rt.run(2, [&](CoreCtx& c) {
    if (c.rank() == 0) {
      c.charge(noc::kPsPerMs);  // send at t = 1 ms
      c.send(1, u32_msg(1));
    } else {
      (void)c.recv(0);
      recv_done = c.now();
    }
  });
  EXPECT_GT(recv_done, noc::kPsPerMs);  // can't receive before it was sent
}

TEST(Runtime, FifoPerSenderOrdering) {
  SpmdRuntime rt{RuntimeConfig{}};
  rt.run(2, [](CoreCtx& c) {
    if (c.rank() == 0) {
      for (std::uint32_t k = 0; k < 10; ++k) c.send(1, u32_msg(k));
    } else {
      for (std::uint32_t k = 0; k < 10; ++k) EXPECT_EQ(u32_of(c.recv(0)), k);
    }
  });
}

TEST(Runtime, ProbeSeesPendingMessage) {
  SpmdRuntime rt{RuntimeConfig{}};
  rt.run(2, [](CoreCtx& c) {
    if (c.rank() == 0) {
      c.charge(noc::kPsPerMs);  // send only at t = 1 ms
      c.send(1, u32_msg(7));
    } else {
      EXPECT_FALSE(c.probe(0));  // probes land well before 1 ms
      c.charge(2 * noc::kPsPerMs);  // let the message arrive
      EXPECT_TRUE(c.probe(0));
      (void)c.recv(0);
      EXPECT_FALSE(c.probe(0));
    }
  });
}

TEST(Runtime, WaitAnyRoundRobinFairness) {
  // Three senders each send one message "simultaneously"; a master calling
  // wait_any repeatedly must drain all three, each exactly once.
  SpmdRuntime rt{RuntimeConfig{}};
  std::vector<int> served;
  rt.run(4, [&](CoreCtx& c) {
    if (c.rank() == 0) {
      const std::vector<int> srcs{1, 2, 3};
      for (int k = 0; k < 3; ++k) {
        const int who = c.wait_any(srcs);
        (void)c.recv(who);
        served.push_back(who);
      }
    } else {
      c.send(0, u32_msg(static_cast<std::uint32_t>(c.rank())));
    }
  });
  std::vector<int> sorted = served;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{1, 2, 3}));
}

TEST(Runtime, BarrierSynchronizesClocks) {
  SpmdRuntime rt{RuntimeConfig{}};
  std::vector<noc::SimTime> after(3);
  rt.run(3, [&](CoreCtx& c) {
    c.charge(static_cast<noc::SimTime>(c.rank() + 1) * noc::kPsPerMs);
    c.barrier();
    after[static_cast<std::size_t>(c.rank())] = c.now();
  });
  // Everyone leaves the barrier at the same instant: the slowest arrival
  // (3 ms) plus the barrier cost.
  EXPECT_EQ(after[0], after[1]);
  EXPECT_EQ(after[1], after[2]);
  EXPECT_GE(after[0], 3 * noc::kPsPerMs);
}

TEST(Runtime, TwoBarriersInARow) {
  SpmdRuntime rt{RuntimeConfig{}};
  rt.run(4, [](CoreCtx& c) {
    c.charge(static_cast<noc::SimTime>(c.rank()) * noc::kPsPerUs);
    c.barrier();
    const noc::SimTime t1 = c.now();
    c.barrier();
    EXPECT_GT(c.now(), t1);
  });
}

TEST(Runtime, DeadlockDetected) {
  SpmdRuntime rt{RuntimeConfig{}};
  EXPECT_THROW(rt.run(2,
                      [](CoreCtx& c) {
                        if (c.rank() == 1) (void)c.recv(0);  // never sent
                      }),
               DeadlockError);
}

TEST(Runtime, DeadlockMessageNamesBlockedCore) {
  SpmdRuntime rt{RuntimeConfig{}};
  try {
    rt.run(2, [](CoreCtx& c) {
      if (c.rank() == 1) (void)c.recv(0);
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank 1"), std::string::npos);
    EXPECT_NE(msg.find("wait-src=0"), std::string::npos);
  }
}

TEST(Runtime, ProgramExceptionPropagates) {
  SpmdRuntime rt{RuntimeConfig{}};
  EXPECT_THROW(rt.run(3,
                      [](CoreCtx& c) {
                        if (c.rank() == 2) throw std::runtime_error("boom");
                        if (c.rank() == 1) (void)c.recv(0);  // would deadlock
                      }),
               std::runtime_error);
}

TEST(Runtime, SingleUse) {
  SpmdRuntime rt{RuntimeConfig{}};
  rt.run(1, [](CoreCtx&) {});
  EXPECT_THROW(rt.run(1, [](CoreCtx&) {}), SimError);
}

TEST(Runtime, RankValidation) {
  SpmdRuntime rt{RuntimeConfig{}};
  EXPECT_THROW(rt.run(0, [](CoreCtx&) {}), SimError);
  SpmdRuntime rt2{RuntimeConfig{}};
  EXPECT_THROW(rt2.run(49, [](CoreCtx&) {}), SimError);  // 48-core chip
}

TEST(Runtime, SendToBadRankThrows) {
  SpmdRuntime rt{RuntimeConfig{}};
  EXPECT_THROW(rt.run(2,
                      [](CoreCtx& c) {
                        if (c.rank() == 0) c.send(5, {});
                        else (void)c.recv(0);
                      }),
               SimError);
}

TEST(Runtime, DeterministicMakespanAndReports) {
  auto run_once = [] {
    SpmdRuntime rt{RuntimeConfig{}};
    const noc::SimTime t = rt.run(8, [](CoreCtx& c) {
      if (c.rank() == 0) {
        std::vector<int> slaves(7);
        std::iota(slaves.begin(), slaves.end(), 1);
        for (int s : slaves) c.send(s, u32_msg(static_cast<std::uint32_t>(s)));
        for (int k = 0; k < 7; ++k) {
          const int who = c.wait_any(slaves);
          (void)c.recv(who);
        }
      } else {
        const std::uint32_t v = u32_of(c.recv(0));
        c.charge(static_cast<noc::SimTime>(v) * noc::kPsPerMs);
        c.send(0, u32_msg(v));
      }
    });
    return t;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Runtime, FortyEightCores) {
  // Full chip: everyone barriers then reports to rank 0.
  SpmdRuntime rt{RuntimeConfig{}};
  int received = 0;
  rt.run(48, [&](CoreCtx& c) {
    c.barrier();
    if (c.rank() == 0) {
      std::vector<int> others(47);
      std::iota(others.begin(), others.end(), 1);
      for (int k = 0; k < 47; ++k) {
        const int who = c.wait_any(others);
        (void)c.recv(who);
        ++received;
      }
    } else {
      c.send(0, u32_msg(1));
    }
  });
  EXPECT_EQ(received, 47);
}

TEST(Runtime, BlockedTimeAccounted) {
  SpmdRuntime rt{RuntimeConfig{}};
  rt.run(2, [](CoreCtx& c) {
    if (c.rank() == 0) {
      c.charge(10 * noc::kPsPerMs);
      c.send(1, u32_msg(0));
    } else {
      (void)c.recv(0);  // blocked ~10 ms
    }
  });
  EXPECT_GE(rt.core_reports()[1].blocked, 9 * noc::kPsPerMs);
}

TEST(Runtime, DramReadChargesTime) {
  SpmdRuntime rt{RuntimeConfig{}};
  const noc::SimTime t = rt.run(1, [](CoreCtx& c) { c.dram_read(1 << 20); });
  EXPECT_GT(t, 0u);
}

TEST(Runtime, NetworkStatsExposed) {
  SpmdRuntime rt{RuntimeConfig{}};
  rt.run(2, [](CoreCtx& c) {
    if (c.rank() == 0) c.send(1, Bytes(100));
    else (void)c.recv(0);
  });
  EXPECT_EQ(rt.network_stats().messages, 1u);
  EXPECT_GT(rt.network_stats().total_bytes, 100u);  // payload + header
}

}  // namespace
}  // namespace rck::scc
