#include "rck/scc/chip.hpp"

#include <gtest/gtest.h>

namespace rck::scc {
namespace {

TEST(Chip, PaperTable1Geometry) {
  const SccConfig c = default_scc();
  EXPECT_EQ(c.tile_count(), 24);
  EXPECT_EQ(c.core_count(), 48);
  EXPECT_EQ(c.cores_per_tile, 2);
  EXPECT_EQ(c.mesh_cols, 6);
  EXPECT_EQ(c.mesh_rows, 4);
  EXPECT_DOUBLE_EQ(c.core_freq_hz, 800e6);
  EXPECT_EQ(c.mpb_bytes_per_core, 8192u);  // 16 KB per tile / 2 cores
}

TEST(Chip, CoreToTileMapping) {
  const SccConfig c = default_scc();
  EXPECT_EQ(c.tile_of_core(0), 0);
  EXPECT_EQ(c.tile_of_core(1), 0);
  EXPECT_EQ(c.tile_of_core(2), 1);
  EXPECT_EQ(c.tile_of_core(47), 23);
  EXPECT_EQ(c.router_of_core(46), 23);
  EXPECT_THROW(c.tile_of_core(48), rck::scc::ChipError);
  EXPECT_THROW(c.tile_of_core(-1), rck::scc::ChipError);
}

TEST(Chip, SccCoreNames) {
  const SccConfig c = default_scc();
  EXPECT_EQ(c.core_name(0), "rck00");
  EXPECT_EQ(c.core_name(7), "rck07");
  EXPECT_EQ(c.core_name(47), "rck47");
  EXPECT_THROW(c.core_name(48), rck::scc::ChipError);
}

TEST(Chip, FourMemoryControllersAtEdges) {
  const SccConfig c = default_scc();
  const auto mcs = c.memory_controller_routers();
  ASSERT_EQ(mcs.size(), 4u);
  const noc::Mesh m = c.make_mesh();
  for (int mc : mcs) {
    const noc::MeshCoord pos = m.coord(mc);
    EXPECT_TRUE(pos.x == 0 || pos.x == 5);
    EXPECT_TRUE(pos.y == 0 || pos.y == 3);
  }
}

TEST(Chip, NearestMcIsActuallyNearest) {
  const SccConfig c = default_scc();
  const noc::Mesh m = c.make_mesh();
  for (int core = 0; core < c.core_count(); ++core) {
    const int chosen = c.nearest_memory_controller(core);
    const int router = c.router_of_core(core);
    for (int mc : c.memory_controller_routers())
      EXPECT_LE(m.hops(router, chosen), m.hops(router, mc));
  }
}

TEST(Chip, DramReadTimeGrowsWithSizeAndDistance) {
  const SccConfig c = default_scc();
  const noc::SimTime hop = 8 * noc::kPsPerNs;
  // Core 0 sits on a corner tile next to an iMC; core 14/15 (tile 7 = (1,1))
  // is further away.
  EXPECT_GT(c.dram_read_time(0, 1 << 20, hop), c.dram_read_time(0, 1 << 10, hop));
  EXPECT_GT(c.dram_read_time(14, 1024, hop), c.dram_read_time(0, 1024, hop));
}

TEST(Chip, CustomGeometry) {
  SccConfig c;
  c.mesh_cols = 8;
  c.mesh_rows = 8;
  c.cores_per_tile = 2;
  EXPECT_EQ(c.core_count(), 128);
  EXPECT_EQ(c.tile_of_core(127), 63);
}

}  // namespace
}  // namespace rck::scc
