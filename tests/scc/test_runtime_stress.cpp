// Randomized stress / property tests of the SPMD runtime: deterministic
// pseudo-random communication patterns checked for delivery conservation,
// causality, and bit-identical replay. TEST_P sweeps seeds and core counts.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <random>

#include "rck/scc/runtime.hpp"

namespace rck::scc {
namespace {

using bio::Bytes;
using bio::WireReader;
using bio::WireWriter;

struct PatternParam {
  std::uint64_t seed;
  int ncores;
  int rounds;
};

class RuntimeStress : public ::testing::TestWithParam<PatternParam> {};

/// Each core runs `rounds` steps: derived deterministically from (seed,
/// rank, round), it either computes, sends a stamped message to a derived
/// peer, or drains its expected inbox. The pattern is constructed so every
/// sent message is eventually received: core r sends round k to peer
/// (r + k + 1) % n, and receives from (r - k - 1) mod n in the same round.
struct StressOutcome {
  noc::SimTime makespan = 0;
  std::uint64_t checksum = 0;
  std::uint64_t messages = 0;
};

StressOutcome run_pattern(const PatternParam& p) {
  StressOutcome out;
  std::atomic<std::uint64_t> checksum{0};

  SpmdRuntime rt{RuntimeConfig{}};
  out.makespan = rt.run(p.ncores, [&](CoreCtx& c) {
    const int n = c.nranks();
    const int r = c.rank();
    for (int k = 0; k < p.rounds; ++k) {
      // Deterministic per-(rank, round) draw.
      std::mt19937_64 rng(p.seed ^ (static_cast<std::uint64_t>(r) << 32) ^
                          static_cast<std::uint64_t>(k));
      const std::uint64_t work = rng() % (100 * noc::kPsPerUs);
      c.charge(work);

      const int to = (r + k + 1) % n;
      const int from = ((r - k - 1) % n + n) % n;
      WireWriter w;
      w.u64(p.seed + static_cast<std::uint64_t>(r) * 1000003ull +
            static_cast<std::uint64_t>(k));
      if (to != r) c.send(to, w.take());
      if (from != r) {
        WireReader reader(c.recv(from));
        checksum.fetch_add(reader.u64(), std::memory_order_relaxed);
      }
    }
  });
  out.checksum = checksum.load();
  out.messages = rt.network_stats().messages;
  return out;
}

TEST_P(RuntimeStress, CompletesWithConservation) {
  const PatternParam p = GetParam();
  const StressOutcome out = run_pattern(p);
  // Every core sends one message per round except self-sends; self-sends
  // happen when (r + k + 1) % n == r, i.e. (k + 1) % n == 0.
  std::uint64_t expected_msgs = 0;
  for (int r = 0; r < p.ncores; ++r)
    for (int k = 0; k < p.rounds; ++k)
      if ((k + 1) % p.ncores != 0) ++expected_msgs;
  EXPECT_EQ(out.messages, expected_msgs);
  EXPECT_GT(out.makespan, 0u);
}

TEST_P(RuntimeStress, BitIdenticalReplay) {
  const PatternParam p = GetParam();
  const StressOutcome a = run_pattern(p);
  const StressOutcome b = run_pattern(p);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.messages, b.messages);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, RuntimeStress,
    ::testing::Values(PatternParam{1, 2, 8}, PatternParam{2, 3, 12},
                      PatternParam{3, 8, 10}, PatternParam{4, 16, 6},
                      PatternParam{5, 48, 4}, PatternParam{99, 5, 25}));

TEST(RuntimeStressExtra, ChecksumDependsOnSeed) {
  const StressOutcome a = run_pattern({10, 6, 6});
  const StressOutcome b = run_pattern({11, 6, 6});
  EXPECT_NE(a.checksum, b.checksum);
}

TEST(RuntimeStressExtra, AllToAllBarrieredRounds) {
  // n cores, every round everyone sends to everyone then barriers; checks
  // the runtime under bursty congestion with barriers interleaved.
  constexpr int n = 12;
  SpmdRuntime rt{RuntimeConfig{}};
  rt.run(n, [](CoreCtx& c) {
    for (int round = 0; round < 3; ++round) {
      for (int to = 0; to < c.nranks(); ++to)
        if (to != c.rank()) c.send(to, Bytes(128));
      for (int from = 0; from < c.nranks(); ++from)
        if (from != c.rank()) (void)c.recv(from);
      c.barrier();
    }
  });
  // 3 rounds * n * (n-1) messages
  EXPECT_EQ(rt.network_stats().messages, 3u * n * (n - 1));
}

TEST(RuntimeStressExtra, ManySmallMessagesThroughOneHotspot) {
  // Everyone hammers rank 0; FIFO per sender and wait_any fairness keep it
  // live. Also exercises link contention into one router.
  constexpr int n = 16;
  constexpr int per_sender = 50;
  SpmdRuntime rt{RuntimeConfig{}};
  std::uint64_t received = 0;
  rt.run(n, [&](CoreCtx& c) {
    if (c.rank() == 0) {
      std::vector<int> sources(n - 1);
      std::iota(sources.begin(), sources.end(), 1);
      for (int k = 0; k < per_sender * (n - 1); ++k) {
        const int who = c.wait_any(sources);
        (void)c.recv(who);
        ++received;
      }
    } else {
      for (int k = 0; k < per_sender; ++k) c.send(0, Bytes(64));
    }
  });
  EXPECT_EQ(received, static_cast<std::uint64_t>(per_sender) * (n - 1));
  EXPECT_GT(rt.network_stats().total_queueing, 0u);
}

}  // namespace
}  // namespace rck::scc
