// Property tests for the release-horizon module (rck/scc/horizon.hpp).
//
// The horizon is the parallel scheduler's entire safety argument, so it is
// tested two ways. First, as pure math against a brute-force reference:
// random core snapshots (phases, clocks, pending events, crash flags) must
// produce exactly the reference fixed point, respect every event and peer
// bound, and be monotone under peer progress — including the defining
// property in the form the scheduler consumes it: a core is *releasable*
// (clock strictly below its horizon) iff no event and no possible peer
// effect precedes its clock. Second, end to end: randomized compute/comm
// mixes with timers, probes and DVFS must replay bit-identically under the
// serial and the horizon scheduler at every thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "rck/noc/sim_time.hpp"
#include "rck/scc/horizon.hpp"
#include "rck/scc/runtime.hpp"

namespace rck::scc {
namespace {

using noc::SimTime;
using noc::kTimeInfinity;

// ---- Random snapshot generation --------------------------------------------

std::vector<HorizonCore> random_cores(std::mt19937_64& rng, std::size_t n) {
  std::vector<HorizonCore> cores(n);
  for (HorizonCore& c : cores) {
    switch (rng() % 8) {
      case 0: c.phase = HorizonCore::Phase::Done; break;
      case 1: c.phase = HorizonCore::Phase::Dead; break;
      case 2:
      case 3: c.phase = HorizonCore::Phase::Blocked; break;
      case 4: c.phase = HorizonCore::Phase::BarrierBlocked; break;
      default: c.phase = HorizonCore::Phase::Runnable; break;
    }
    c.vtime = rng() % 1'000'000;
    c.earliest_event = (rng() % 3 == 0) ? kTimeInfinity : rng() % 2'000'000;
    c.event_crash_pending = rng() % 8 == 0;
  }
  return cores;
}

HorizonModel random_model(std::mt19937_64& rng,
                          const std::vector<HorizonCore>& cores) {
  HorizonModel m;
  m.min_send_latency = 1 + rng() % 5'000;
  m.barrier_cost = 1 + rng() % 50'000;
  // The global lookahead is by definition <= every per-core event bound.
  m.earliest_any_event = kTimeInfinity;
  for (const HorizonCore& c : cores)
    m.earliest_any_event = std::min(m.earliest_any_event, c.earliest_event);
  if (m.earliest_any_event != kTimeInfinity && rng() % 2 == 0)
    m.earliest_any_event -= std::min<SimTime>(m.earliest_any_event, rng() % 1'000);
  return m;
}

// ---- Brute-force reference --------------------------------------------------
// Same definition as the production code, written as naively as possible:
// iterate the relaxation to an honest fixed point with O(n^2) scans.

SimTime ref_unblock_latency(const HorizonCore& c, const HorizonModel& m) {
  return c.phase == HorizonCore::Phase::BarrierBlocked ? m.barrier_cost
                                                       : m.min_send_latency;
}

std::vector<SimTime> ref_bounds(const std::vector<HorizonCore>& cores,
                                const HorizonModel& m) {
  const std::size_t n = cores.size();
  std::vector<SimTime> b(n, kTimeInfinity);
  for (std::size_t r = 0; r < n; ++r) {
    switch (cores[r].phase) {
      case HorizonCore::Phase::Runnable: b[r] = cores[r].vtime; break;
      case HorizonCore::Phase::Done: b[r] = kTimeInfinity; break;
      default: b[r] = horizon_event_bound(cores[r], m); break;
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t r = 0; r < n; ++r) {
      const HorizonCore::Phase p = cores[r].phase;
      if (p != HorizonCore::Phase::Blocked &&
          p != HorizonCore::Phase::BarrierBlocked)
        continue;
      SimTime best = kTimeInfinity;
      for (std::size_t o = 0; o < n; ++o)
        if (o != r) best = std::min(best, b[o]);
      const SimTime cand = sat_add(best, ref_unblock_latency(cores[r], m));
      if (cand < b[r]) {
        b[r] = cand;
        changed = true;
      }
    }
  }
  return b;
}

SimTime ref_horizon(const std::vector<HorizonCore>& cores, const HorizonModel& m,
                    std::size_t c, const std::vector<SimTime>& b) {
  SimTime peers = kTimeInfinity;
  for (std::size_t o = 0; o < cores.size(); ++o)
    if (o != c) peers = std::min(peers, sat_add(b[o], m.min_send_latency));
  return std::min(horizon_event_bound(cores[c], m), peers);
}

// ---- Pure-model properties --------------------------------------------------

TEST(HorizonProperty, MatchesBruteForceReference) {
  std::mt19937_64 rng(0xB10C5EEDu);
  std::vector<SimTime> bounds, horizons;
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t n = 1 + rng() % 12;
    const auto cores = random_cores(rng, n);
    const auto model = random_model(rng, cores);
    initiation_bounds(cores, model, bounds);
    release_horizons(cores, model, bounds, horizons);
    const auto rb = ref_bounds(cores, model);
    ASSERT_EQ(bounds, rb) << "trial " << trial;
    for (std::size_t c = 0; c < n; ++c)
      ASSERT_EQ(horizons[c], ref_horizon(cores, model, c, rb))
          << "trial " << trial << " core " << c;
  }
}

TEST(HorizonProperty, SingleCoreConvenienceAgreesWithBatch) {
  std::mt19937_64 rng(42);
  std::vector<SimTime> bounds, horizons, scratch;
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng() % 10;
    const auto cores = random_cores(rng, n);
    const auto model = random_model(rng, cores);
    initiation_bounds(cores, model, bounds);
    release_horizons(cores, model, bounds, horizons);
    for (std::size_t c = 0; c < n; ++c)
      ASSERT_EQ(release_horizon(cores, model, c, scratch), horizons[c])
          << "trial " << trial << " core " << c;
  }
}

TEST(HorizonProperty, NeverExceedsEventOrRunnablePeerBounds) {
  std::mt19937_64 rng(7);
  std::vector<SimTime> bounds, horizons;
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t n = 2 + rng() % 10;
    const auto cores = random_cores(rng, n);
    const auto model = random_model(rng, cores);
    initiation_bounds(cores, model, bounds);
    release_horizons(cores, model, bounds, horizons);
    for (std::size_t c = 0; c < n; ++c) {
      // H(c) <= E(c): no pending event that can touch c precedes the horizon.
      EXPECT_LE(horizons[c], horizon_event_bound(cores[c], model));
      // H(c) <= vtime(r) + L for every runnable peer: a peer's very next
      // send cannot deliver below the horizon.
      for (std::size_t r = 0; r < n; ++r) {
        if (r == c || cores[r].phase != HorizonCore::Phase::Runnable) continue;
        EXPECT_LE(horizons[c], sat_add(cores[r].vtime, model.min_send_latency))
            << "trial " << trial << " core " << c << " peer " << r;
      }
    }
  }
}

TEST(HorizonProperty, ReleasableIffNoAffectingActionPrecedesClock) {
  // The property the scheduler consumes, spelled out: core c may be released
  // (vtime < H) iff no event that can touch it and no peer-initiated effect
  // can land at or before its committed clock.
  std::mt19937_64 rng(0xCAFE);
  std::vector<SimTime> bounds, horizons;
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t n = 2 + rng() % 10;
    const auto cores = random_cores(rng, n);
    const auto model = random_model(rng, cores);
    initiation_bounds(cores, model, bounds);
    release_horizons(cores, model, bounds, horizons);
    for (std::size_t c = 0; c < n; ++c) {
      bool affecting_precedes =
          horizon_event_bound(cores[c], model) <= cores[c].vtime;
      for (std::size_t r = 0; r < n && !affecting_precedes; ++r)
        if (r != c &&
            sat_add(bounds[r], model.min_send_latency) <= cores[c].vtime)
          affecting_precedes = true;
      EXPECT_EQ(cores[c].vtime < horizons[c], !affecting_precedes)
          << "trial " << trial << " core " << c;
    }
  }
}

TEST(HorizonProperty, MonotoneUnderPeerProgress) {
  // Peers only ever move forward (clocks grow, blocked cores finish): no
  // such step may shrink anyone's horizon, or an already-granted release
  // would retroactively become unsafe.
  std::mt19937_64 rng(99);
  std::vector<SimTime> bounds, before, after;
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t n = 2 + rng() % 10;
    auto cores = random_cores(rng, n);
    const auto model = random_model(rng, cores);
    initiation_bounds(cores, model, bounds);
    release_horizons(cores, model, bounds, before);

    const std::size_t who = rng() % n;
    HorizonCore& w = cores[who];
    if (w.phase == HorizonCore::Phase::Runnable && rng() % 2 == 0)
      w.vtime += 1 + rng() % 100'000;  // commits more compute
    else
      w.phase = HorizonCore::Phase::Done;  // finishes outright
    initiation_bounds(cores, model, bounds);
    release_horizons(cores, model, bounds, after);
    for (std::size_t c = 0; c < n; ++c) {
      if (c == who) continue;
      EXPECT_GE(after[c], before[c]) << "trial " << trial << " core " << c;
    }
  }
}

TEST(HorizonProperty, EventCrashPendingPessimizesToGlobalLookahead) {
  std::vector<HorizonCore> cores(2);
  cores[0].phase = HorizonCore::Phase::Runnable;
  cores[0].vtime = 100;
  cores[0].earliest_event = kTimeInfinity;  // nothing targets core 0
  cores[1].phase = HorizonCore::Phase::Runnable;
  cores[1].vtime = 500;
  cores[1].earliest_event = 700;
  HorizonModel m{/*min_send_latency=*/50, /*barrier_cost=*/10,
                 /*earliest_any_event=*/700};

  EXPECT_EQ(horizon_event_bound(cores[0], m), kTimeInfinity);
  cores[0].event_crash_pending = true;  // any fired event may now kill it
  EXPECT_EQ(horizon_event_bound(cores[0], m), 700);
}

TEST(HorizonProperty, SaturatingAddClampsAtInfinity) {
  EXPECT_EQ(sat_add(kTimeInfinity, 5), kTimeInfinity);
  EXPECT_EQ(sat_add(5, kTimeInfinity), kTimeInfinity);
  EXPECT_EQ(sat_add(kTimeInfinity - 1, 2), kTimeInfinity);  // overflow clamps
  EXPECT_EQ(sat_add(3, 4), SimTime{7});
}

TEST(HorizonProperty, QuiescentFarmHasInfiniteHorizons) {
  // Everyone Done, no events: nothing can ever touch anyone.
  std::vector<HorizonCore> cores(4);
  for (HorizonCore& c : cores) c.phase = HorizonCore::Phase::Done;
  HorizonModel m{100, 1000, kTimeInfinity};
  std::vector<SimTime> bounds, horizons;
  initiation_bounds(cores, m, bounds);
  release_horizons(cores, m, bounds, horizons);
  for (const SimTime h : horizons) EXPECT_EQ(h, kTimeInfinity);
}

// ---- End-to-end serial replay identity --------------------------------------
// Randomized compute/comm mixes exercising the op classes the horizon must
// reason about indirectly: timed waits (timer events targeting their own
// core), probes, DVFS transitions, and master/slave gathers.

struct RunSnapshot {
  noc::SimTime makespan = 0;
  std::vector<CoreReport> reports;
  std::vector<TraceEvent> trace;
  noc::NetworkStats net;
  std::uint64_t events = 0;

  bool operator==(const RunSnapshot&) const = default;
};

Program timed_mix(std::uint64_t seed, int rounds) {
  return [seed, rounds](CoreCtx& ctx) {
    const int n = ctx.nranks();
    const int me = ctx.rank();
    std::mt19937_64 rng(seed ^ (0x9E3779B97F4A7C15ULL *
                                static_cast<std::uint64_t>(me + 1)));
    for (int r = 0; r < rounds; ++r) {
      ctx.charge_cycles(1'000 + rng() % 50'000);
      if (rng() % 4 == 0)
        ctx.set_freq_scale(0.5 + static_cast<double>(rng() % 150) / 100.0);
      if (me == 0) {
        std::vector<int> srcs;
        for (int k = 1; k < n; ++k) srcs.push_back(k);
        int got = 0;
        while (got < n - 1) {
          const int who = ctx.wait_any_timeout(srcs, 50 * noc::kPsPerUs);
          if (who < 0) {  // deadline fired: spin a little and re-arm
            ctx.charge_cycles(500);
            continue;
          }
          (void)ctx.recv(who);
          ++got;
        }
      } else {
        ctx.charge_cycles(rng() % 100'000);
        (void)ctx.probe(0);
        ctx.send(0, bio::Bytes(1 + rng() % 64, std::byte{0x5A}));
        // The master never sends back: this always rides the timer path.
        EXPECT_FALSE(
            ctx.recv_timeout(0, (5 + rng() % 20) * noc::kPsPerUs).has_value());
      }
      ctx.barrier();
    }
  };
}

RunSnapshot execute(int nranks, const Program& program, int host_threads) {
  RuntimeConfig cfg;
  cfg.enable_trace = true;
  cfg.host.threads = host_threads;
  SpmdRuntime rt(cfg);
  RunSnapshot s;
  s.makespan = rt.run(nranks, program);
  s.reports = rt.core_reports();
  s.trace = rt.trace();
  s.net = rt.network_stats();
  s.events = rt.events_fired();
  return s;
}

TEST(HorizonProperty, TimedCommMixesReplayIdenticallyAtEveryWidth) {
  for (const std::uint64_t seed : {11u, 202u, 3003u}) {
    const int nranks = 3 + static_cast<int>(seed % 6);
    const Program program = timed_mix(seed, 4);
    const RunSnapshot serial = execute(nranks, program, 1);
    for (const int threads : {2, 4, 8})
      EXPECT_EQ(serial, execute(nranks, program, threads))
          << "seed " << seed << " threads " << threads;
  }
}

}  // namespace
}  // namespace rck::scc
