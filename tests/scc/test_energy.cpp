#include "rck/scc/energy.hpp"

#include <gtest/gtest.h>

namespace rck::scc {
namespace {

CoreReport busy_for(noc::SimTime busy, noc::SimTime finish) {
  CoreReport r;
  r.busy = busy;
  r.finish = finish;
  return r;
}

TEST(Energy, KnownValues) {
  EnergyParams p;
  p.static_w_per_core = 1.0;
  p.dynamic_w_per_core = 2.0;
  p.uncore_w = 10.0;
  // Two cores, 10 s run; core 0 busy 10 s, core 1 busy 5 s.
  std::vector<CoreReport> reports{busy_for(10 * noc::kPsPerSec, 10 * noc::kPsPerSec),
                                  busy_for(5 * noc::kPsPerSec, 8 * noc::kPsPerSec)};
  const EnergyReport e = estimate_energy(reports, 10 * noc::kPsPerSec, {}, p);
  EXPECT_DOUBLE_EQ(e.uncore_j, 100.0);
  EXPECT_DOUBLE_EQ(e.static_j, 20.0);            // 2 cores x 1 W x 10 s
  EXPECT_DOUBLE_EQ(e.dynamic_j, 2.0 * 10 + 2.0 * 5);
  EXPECT_DOUBLE_EQ(e.total_j, 100.0 + 20.0 + 30.0);
  ASSERT_EQ(e.per_core_j.size(), 2u);
  EXPECT_DOUBLE_EQ(e.per_core_j[0], 10.0 + 20.0);
  EXPECT_DOUBLE_EQ(e.per_core_j[1], 10.0 + 10.0);
}

TEST(Energy, DvfsCubicLaw) {
  EnergyParams p;
  p.static_w_per_core = 0.0;
  p.dynamic_w_per_core = 1.0;
  p.uncore_w = 0.0;
  std::vector<CoreReport> reports{busy_for(noc::kPsPerSec, noc::kPsPerSec)};
  const std::vector<double> half{0.5};
  const std::vector<double> twice{2.0};
  const double nominal = estimate_energy(reports, noc::kPsPerSec, {}, p).total_j;
  const double at_half = estimate_energy(reports, noc::kPsPerSec, half, p).total_j;
  const double at_twice = estimate_energy(reports, noc::kPsPerSec, twice, p).total_j;
  EXPECT_DOUBLE_EQ(nominal, 1.0);
  EXPECT_DOUBLE_EQ(at_half, 0.125);  // (1/2)^3
  EXPECT_DOUBLE_EQ(at_twice, 8.0);   // 2^3
}

TEST(Energy, DownclockedIdleCoreSavesEnergy) {
  // Same busy time, half clock: the busy *duration* in a real run would
  // double, but per fixed reports the dynamic draw drops 8x — callers pass
  // the actual reports of the scaled run, so both effects compose there.
  EnergyParams p;
  std::vector<CoreReport> reports{busy_for(2 * noc::kPsPerSec, 2 * noc::kPsPerSec)};
  const std::vector<double> half{0.5};
  const double scaled = estimate_energy(reports, 2 * noc::kPsPerSec, half, p).total_j;
  const double nominal = estimate_energy(reports, 2 * noc::kPsPerSec, {}, p).total_j;
  EXPECT_LT(scaled, nominal);
}

TEST(Energy, ShortScaleVectorDefaultsToUnity) {
  EnergyParams p;
  p.static_w_per_core = 0.0;
  p.dynamic_w_per_core = 1.0;
  p.uncore_w = 0.0;
  std::vector<CoreReport> reports{busy_for(noc::kPsPerSec, noc::kPsPerSec),
                                  busy_for(noc::kPsPerSec, noc::kPsPerSec)};
  const std::vector<double> only_first{0.5};
  const EnergyReport e =
      estimate_energy(reports, noc::kPsPerSec, only_first, p);
  EXPECT_DOUBLE_EQ(e.per_core_j[0], 0.125);
  EXPECT_DOUBLE_EQ(e.per_core_j[1], 1.0);
}

TEST(Energy, EmptyRun) {
  const EnergyReport e = estimate_energy({}, 0, {}, {});
  EXPECT_DOUBLE_EQ(e.total_j, 0.0);
  EXPECT_TRUE(e.per_core_j.empty());
}

}  // namespace
}  // namespace rck::scc
