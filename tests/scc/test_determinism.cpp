// Determinism regression suite for host-parallel execution.
//
// The contract under test (see DESIGN.md, "Host-parallel execution"): with
// RuntimeConfig::host.threads > 1 the scheduler may release several program
// threads at once, but every *simulated* observable — makespan, traces,
// CoreReports, network statistics, event counts, farm bookkeeping, fault
// replays — must be byte-identical to the serial scheduler. These tests run
// the same workloads in both modes and compare everything we can observe,
// including the paper's CK34 dataset end-to-end and fault-plan replays.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "rck/bio/dataset.hpp"
#include "rck/noc/network.hpp"
#include "rck/obs/sink.hpp"
#include "rck/rckalign/app.hpp"
#include "rck/rckalign/cost_cache.hpp"
#include "rck/scc/runtime.hpp"

namespace rck::scc {
namespace {

constexpr int kHostThreads = 4;  // parallel-mode width used throughout

// ---------------------------------------------------------------------------
// Runtime-level fixture: a synthetic farm-shaped program (mixed compute,
// send/recv, wait_any, barrier) whose every observable is snapshotted.

struct RunSnapshot {
  noc::SimTime makespan = 0;
  std::vector<CoreReport> reports;
  std::vector<TraceEvent> trace;
  noc::NetworkStats net;
  std::uint64_t events = 0;

  bool operator==(const RunSnapshot&) const = default;
};

RunSnapshot run_program(int nranks, const Program& program, RuntimeConfig cfg) {
  cfg.enable_trace = true;
  SpmdRuntime rt(cfg);
  RunSnapshot s;
  s.makespan = rt.run(nranks, program);
  s.reports = rt.core_reports();
  s.trace = rt.trace();
  s.net = rt.network_stats();
  s.events = rt.events_fired();
  return s;
}

// A little master-slaves round: rank 0 hands each slave `rounds` payloads,
// slaves "compute" an amount derived from the payload and answer; a barrier
// closes each round. Compute dominates, so parallel windows actually open.
Program mini_farm(int rounds) {
  return [rounds](CoreCtx& ctx) {
    const int n = ctx.nranks();
    for (int r = 0; r < rounds; ++r) {
      if (ctx.rank() == 0) {
        for (int dst = 1; dst < n; ++dst) {
          bio::Bytes job{static_cast<std::byte>(dst), static_cast<std::byte>(r)};
          ctx.send(dst, job);
        }
        std::vector<int> srcs;
        for (int src = 1; src < n; ++src) srcs.push_back(src);
        for (int k = 1; k < n; ++k) {
          const int who = ctx.wait_any(srcs);
          (void)ctx.recv(who);
        }
      } else {
        const bio::Bytes job = ctx.recv(0);
        // Uneven compute so cores drift apart in virtual time.
        const std::uint64_t work =
            50'000 + 20'000 * static_cast<std::uint64_t>(job[0]) +
            7'000 * static_cast<std::uint64_t>(job[1]);
        ctx.charge_cycles(work);
        ctx.dram_read(4096 * static_cast<std::uint64_t>(ctx.rank()));
        ctx.send(0, bio::Bytes{job[0]});
      }
      ctx.barrier();
    }
  };
}

RuntimeConfig parallel_cfg() {
  RuntimeConfig cfg;
  cfg.host.threads = kHostThreads;
  return cfg;
}

TEST(HostParallelDeterminism, MiniFarmMatchesSerialBitForBit) {
  const RunSnapshot serial = run_program(6, mini_farm(4), RuntimeConfig{});
  const RunSnapshot parallel = run_program(6, mini_farm(4), parallel_cfg());
  EXPECT_EQ(serial, parallel);
}

TEST(HostParallelDeterminism, ParallelWindowsActuallyOpen) {
  RuntimeConfig cfg = parallel_cfg();
  cfg.enable_trace = true;
  SpmdRuntime rt(cfg);
  rt.run(6, mini_farm(4));
  const HostParallelStats& hp = rt.host_parallel_stats();
  EXPECT_GT(hp.windows, 0u);
  EXPECT_GT(hp.local_ops, 0u);
  EXPECT_GE(hp.max_width, 2u);
  EXPECT_GE(hp.releases, hp.windows);
}

TEST(HostParallelDeterminism, SerialModeKeepsStatsZero) {
  SpmdRuntime rt(RuntimeConfig{});
  rt.run(4, mini_farm(2));
  EXPECT_EQ(rt.host_parallel_stats(), HostParallelStats{});
}

TEST(HostParallelDeterminism, ReplayTwiceIsIdenticalInEachMode) {
  for (const bool par : {false, true}) {
    RuntimeConfig cfg;
    if (par) cfg.host.threads = kHostThreads;
    const RunSnapshot a = run_program(5, mini_farm(3), cfg);
    const RunSnapshot b = run_program(5, mini_farm(3), cfg);
    EXPECT_EQ(a, b) << (par ? "parallel" : "serial") << " replay diverged";
  }
}

TEST(HostParallelDeterminism, FaultPlanReplaysIdentically) {
  // Crash one slave mid-run, corrupt a frame, stall DRAM on another: the
  // fault triggers bound the lookahead horizon, so the parallel scheduler
  // must reproduce the exact same degraded execution.
  RuntimeConfig base;
  base.faults.crashes.push_back({3, noc::kPsPerMs / 2});
  base.faults.stalls.push_back({2, 0, noc::kPsPerMs, 8.0});

  // The program must survive a dead peer: timeouts instead of blocking recv.
  const Program program = [](CoreCtx& ctx) {
    const int n = ctx.nranks();
    if (ctx.rank() == 0) {
      for (int r = 0; r < 6; ++r) {
        for (int dst = 1; dst < n; ++dst) {
          if (!ctx.peer_alive(dst)) continue;
          ctx.send(dst, bio::Bytes{static_cast<std::byte>(r)});
        }
        for (int src = 1; src < n; ++src) {
          if (!ctx.peer_alive(src)) continue;
          (void)ctx.recv_timeout(src, 2 * noc::kPsPerMs);
        }
      }
    } else {
      for (int r = 0; r < 6; ++r) {
        const auto job = ctx.recv_timeout(0, 4 * noc::kPsPerMs);
        if (!job) return;
        ctx.charge_cycles(80'000 + 11'000 * static_cast<std::uint64_t>(ctx.rank()));
        ctx.dram_read(32768);
        ctx.send(0, bio::Bytes{(*job)[0]});
      }
    }
  };

  RuntimeConfig par = base;
  par.host.threads = kHostThreads;
  const RunSnapshot serial = run_program(5, program, base);
  const RunSnapshot parallel = run_program(5, program, par);
  EXPECT_EQ(serial, parallel);
  ASSERT_GE(serial.reports.size(), 4u);
  EXPECT_TRUE(serial.reports[3].crashed);  // the fault actually fired
}

// ---------------------------------------------------------------------------
// Application-level fixture: the paper's CK34 all-vs-all, end to end.

class Ck34Determinism : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new std::vector<bio::Protein>(bio::build_dataset(bio::ck34_spec()));
    cache_ = new rckalign::PairCache(rckalign::PairCache::build(*dataset_));
  }
  static void TearDownTestSuite() {
    delete cache_;
    delete dataset_;
    cache_ = nullptr;
    dataset_ = nullptr;
  }

  static rckalign::RckAlignOptions options(int slaves, int host_threads) {
    rckalign::RckAlignOptions o;
    o.slave_count = slaves;
    o.cache = cache_;
    o.runtime.enable_trace = true;
    o.runtime.host.threads = host_threads;
    return o;
  }

  static void expect_identical(const rckalign::RckAlignRun& a,
                               const rckalign::RckAlignRun& b) {
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.results, b.results);
    EXPECT_EQ(a.core_reports, b.core_reports);
    EXPECT_EQ(a.network, b.network);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_TRUE(a.farm_report == b.farm_report);
  }

  static std::vector<bio::Protein>* dataset_;
  static rckalign::PairCache* cache_;
};

std::vector<bio::Protein>* Ck34Determinism::dataset_ = nullptr;
rckalign::PairCache* Ck34Determinism::cache_ = nullptr;

TEST_F(Ck34Determinism, AllVsAllBitIdenticalAcrossSlaveCounts) {
  for (const int slaves : {4, 12}) {
    const auto serial = rckalign::run_rckalign(*dataset_, options(slaves, 1));
    const auto parallel =
        rckalign::run_rckalign(*dataset_, options(slaves, kHostThreads));
    expect_identical(serial, parallel);
    EXPECT_EQ(serial.results.size(), 34u * 33u / 2u);
  }
}

TEST_F(Ck34Determinism, ReplayTwiceInEachMode) {
  for (const int threads : {1, kHostThreads}) {
    const auto a = rckalign::run_rckalign(*dataset_, options(8, threads));
    const auto b = rckalign::run_rckalign(*dataset_, options(8, threads));
    expect_identical(a, b);
  }
}

TEST_F(Ck34Determinism, FaultPlanEndToEndBitIdentical) {
  // Calibrate crash times off the clean makespan so faults land mid-run.
  const noc::SimTime base =
      rckalign::run_rckalign(*dataset_, options(6, 1)).makespan;
  auto faulty = [&](int threads) {
    rckalign::RckAlignOptions o = options(6, threads);
    o.fault_tolerant = true;
    o.runtime.faults.crashes.push_back({2, base / 4});
    o.runtime.faults.crashes.push_back({5, base / 2});
    o.runtime.faults.messages.push_back(
        {FaultPlan::MessageFault::Kind::Corrupt, 3, 0, 2});
    return rckalign::run_rckalign(*dataset_, o);
  };
  const auto serial = faulty(1);
  const auto parallel = faulty(kHostThreads);
  expect_identical(serial, parallel);
  EXPECT_EQ(serial.farm_report.dead_ues.size(), 2u);
  EXPECT_EQ(serial.results.size(), 34u * 33u / 2u);
}

// Thread-count matrix: serial-vs-parallel and replay-twice byte-identity at
// {2, 4, 8} host threads, composed with everything that constrains the
// scheduler at once — a chaos FaultPlan (timed master crash under master_ft,
// slave crash + restart, an event-indexed crash, message corruption, a DRAM
// stall) and obs sinks enabled. The obs recorder bytes (Chrome trace JSON +
// metrics snapshot) are compared verbatim: any scheduler that reorders a
// simulated observable shows up as a byte diff here before it ships.
TEST_F(Ck34Determinism, ThreadMatrixChaosMasterFtObsBitIdentical) {
  constexpr int kSlaves = 6;

  // Calibrate fault times off the clean master-ft makespan so every fault
  // lands mid-run regardless of timing-model drift.
  auto base_opts = [&](int threads) {
    rckalign::RckAlignOptions o = options(kSlaves, threads);
    o.fault_tolerant = true;
    o.master_ft = true;
    o.runtime.obs.enable = true;
    return o;
  };
  const noc::SimTime base =
      rckalign::run_rckalign(*dataset_, base_opts(1)).makespan;

  auto chaotic = [&](int threads) {
    rckalign::RckAlignOptions o = base_opts(threads);
    o.runtime.faults.crashes.push_back({0, base / 3});  // master, mid-farm
    o.runtime.faults.crashes.push_back({3, base / 4});  // plus a slave ...
    o.runtime.faults.restarts.push_back({3, base / 2});  // ... that revives
    o.runtime.faults.event_crashes.push_back({4, 400});
    o.runtime.faults.messages.push_back(
        {FaultPlan::MessageFault::Kind::Corrupt, 2, 0, 1});
    o.runtime.faults.stalls.push_back({5, 0, base / 2, 8.0});
    return rckalign::run_rckalign(*dataset_, o);
  };

  auto obs_bytes = [](const rckalign::RckAlignRun& run) {
    EXPECT_NE(run.obs, nullptr);
    return std::pair<std::string, std::string>{
        obs::chrome_trace_json(*run.obs), run.obs->snapshot().to_json()};
  };

  const auto serial = chaotic(1);
  const auto serial_obs = obs_bytes(serial);
  EXPECT_EQ(serial.results.size(), 34u * 33u / 2u);
  EXPECT_TRUE(serial.core_reports.at(0).crashed);  // failover actually ran
  EXPECT_TRUE(serial.core_reports.at(4).crashed);  // event-crash fired

  for (const int threads : {2, 4, 8}) {
    SCOPED_TRACE("host threads = " + std::to_string(threads));
    const auto a = chaotic(threads);
    const auto b = chaotic(threads);  // replay-twice at this width
    expect_identical(serial, a);
    expect_identical(a, b);
    EXPECT_EQ(serial_obs, obs_bytes(a));
    EXPECT_EQ(serial_obs, obs_bytes(b));
  }
}

TEST_F(Ck34Determinism, SeedSweepStaysBitIdentical) {
  // Several seeds, small scaled datasets so the sweep stays fast: the
  // determinism contract must hold regardless of the generated workload.
  for (const std::uint64_t seed : {1u, 77u, 4242u}) {
    const auto ds = bio::build_dataset(bio::scaled_spec("det", 10, seed));
    const auto cache = rckalign::PairCache::build(ds);
    rckalign::RckAlignOptions o;
    o.slave_count = 5;
    o.cache = &cache;
    o.runtime.enable_trace = true;
    const auto serial = rckalign::run_rckalign(ds, o);
    o.runtime.host.threads = kHostThreads;
    const auto parallel = rckalign::run_rckalign(ds, o);
    expect_identical(serial, parallel);
  }
}

}  // namespace
}  // namespace rck::scc
