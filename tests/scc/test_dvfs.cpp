// Tests for the voltage/frequency-island model (per-core clock scaling).
#include <gtest/gtest.h>

#include "rck/scc/runtime.hpp"

namespace rck::scc {
namespace {

TEST(Dvfs, DefaultScaleIsUnity) {
  SpmdRuntime rt{RuntimeConfig{}};
  rt.run(2, [](CoreCtx& c) { EXPECT_DOUBLE_EQ(c.freq_scale(), 1.0); });
}

TEST(Dvfs, ScaledCoreTakesProportionallyLonger) {
  RuntimeConfig cfg;
  cfg.core_freq_scale = {1.0, 0.5};  // rank 1 at half clock
  SpmdRuntime rt(cfg);
  std::array<noc::SimTime, 2> finish{};
  rt.run(2, [&](CoreCtx& c) {
    c.charge_cycles(800'000'000);  // 1 s at nominal 800 MHz
    finish[static_cast<std::size_t>(c.rank())] = c.now();
  });
  EXPECT_EQ(finish[0], noc::kPsPerSec);
  EXPECT_EQ(finish[1], 2 * noc::kPsPerSec);
}

TEST(Dvfs, FasterThanNominalAllowed) {
  RuntimeConfig cfg;
  cfg.core_freq_scale = {2.0};
  SpmdRuntime rt(cfg);
  const noc::SimTime t = rt.run(1, [](CoreCtx& c) { c.charge_cycles(800'000'000); });
  EXPECT_EQ(t, noc::kPsPerSec / 2);
}

TEST(Dvfs, RanksBeyondVectorGetUnity) {
  RuntimeConfig cfg;
  cfg.core_freq_scale = {0.5};  // only rank 0 specified
  SpmdRuntime rt(cfg);
  rt.run(3, [](CoreCtx& c) {
    if (c.rank() == 0)
      EXPECT_DOUBLE_EQ(c.freq_scale(), 0.5);
    else
      EXPECT_DOUBLE_EQ(c.freq_scale(), 1.0);
  });
}

TEST(Dvfs, ZeroOrNegativeScaleTreatedAsUnity) {
  RuntimeConfig cfg;
  cfg.core_freq_scale = {0.0, -1.0};
  SpmdRuntime rt(cfg);
  rt.run(2, [](CoreCtx& c) { EXPECT_DOUBLE_EQ(c.freq_scale(), 1.0); });
}

TEST(Dvfs, ChargeTimeUnaffectedByScale) {
  // Explicit-duration charges (I/O, fixed delays) are not clock-scaled.
  RuntimeConfig cfg;
  cfg.core_freq_scale = {0.25};
  SpmdRuntime rt(cfg);
  const noc::SimTime t = rt.run(1, [](CoreCtx& c) { c.charge(noc::kPsPerMs); });
  EXPECT_EQ(t, noc::kPsPerMs);
}

TEST(Dvfs, DynamicReclockTakesEffect) {
  SpmdRuntime rt{RuntimeConfig{}};
  const noc::SimTime t = rt.run(1, [](CoreCtx& c) {
    c.charge_cycles(800'000'000);  // 1 s at nominal
    const noc::SimTime before = c.now();
    c.set_freq_scale(2.0);
    EXPECT_DOUBLE_EQ(c.freq_scale(), 2.0);
    EXPECT_GT(c.now(), before);  // transition stall charged
    c.charge_cycles(800'000'000);  // 0.5 s at 2x
  });
  EXPECT_GE(t, noc::kPsPerSec + noc::kPsPerSec / 2);
  EXPECT_LT(t, noc::kPsPerSec + noc::kPsPerSec / 2 + noc::kPsPerMs);
}

TEST(Dvfs, DynamicOverridesConfig) {
  RuntimeConfig cfg;
  cfg.core_freq_scale = {0.5};
  SpmdRuntime rt(cfg);
  rt.run(1, [](CoreCtx& c) {
    EXPECT_DOUBLE_EQ(c.freq_scale(), 0.5);
    c.set_freq_scale(4.0);
    EXPECT_DOUBLE_EQ(c.freq_scale(), 4.0);
  });
}

TEST(Dvfs, BadScaleThrows) {
  SpmdRuntime rt{RuntimeConfig{}};
  EXPECT_THROW(rt.run(1, [](CoreCtx& c) { c.set_freq_scale(0.0); }), SimError);
}

TEST(Dvfs, HeterogeneousFarmStillCompletes) {
  RuntimeConfig cfg;
  cfg.core_freq_scale = {1.0, 1.0, 0.25, 4.0};
  SpmdRuntime rt(cfg);
  int done = 0;
  rt.run(4, [&](CoreCtx& c) {
    if (c.rank() == 0) {
      for (int s = 1; s <= 3; ++s) c.send(s, bio::Bytes(8));
      std::vector<int> slaves{1, 2, 3};
      for (int k = 0; k < 3; ++k) {
        const int who = c.wait_any(slaves);
        (void)c.recv(who);
        ++done;
      }
    } else {
      (void)c.recv(0);
      c.charge_cycles(1'000'000);
      c.send(0, bio::Bytes(8));
    }
  });
  EXPECT_EQ(done, 3);
}

}  // namespace
}  // namespace rck::scc
