#include <gtest/gtest.h>

#include <array>
#include <set>

#include "rck/scc/gantt.hpp"
#include "rck/scc/runtime.hpp"

namespace rck::scc {
namespace {

RuntimeConfig traced_config() {
  RuntimeConfig cfg;
  cfg.enable_trace = true;
  return cfg;
}

TEST(Trace, DisabledByDefault) {
  SpmdRuntime rt{RuntimeConfig{}};
  rt.run(2, [](CoreCtx& c) {
    if (c.rank() == 0) c.send(1, bio::Bytes(8));
    else (void)c.recv(0);
  });
  EXPECT_TRUE(rt.trace().empty());
}

TEST(Trace, RecordsAllKinds) {
  SpmdRuntime rt(traced_config());
  rt.run(2, [](CoreCtx& c) {
    if (c.rank() == 0) {
      c.dram_read(1024);
      c.charge(noc::kPsPerMs);
      c.send(1, bio::Bytes(64));
      (void)c.probe(1);
    } else {
      (void)c.recv(0);  // blocks first
    }
  });
  bool has[6] = {};
  for (const TraceEvent& ev : rt.trace())
    has[static_cast<std::size_t>(ev.kind)] = true;
  EXPECT_TRUE(has[static_cast<std::size_t>(TraceEvent::Kind::Compute)]);
  EXPECT_TRUE(has[static_cast<std::size_t>(TraceEvent::Kind::Send)]);
  EXPECT_TRUE(has[static_cast<std::size_t>(TraceEvent::Kind::Recv)]);
  EXPECT_TRUE(has[static_cast<std::size_t>(TraceEvent::Kind::Poll)]);
  EXPECT_TRUE(has[static_cast<std::size_t>(TraceEvent::Kind::Dram)]);
  EXPECT_TRUE(has[static_cast<std::size_t>(TraceEvent::Kind::Blocked)]);
}

TEST(Trace, IntervalsAreWellFormed) {
  SpmdRuntime rt(traced_config());
  const noc::SimTime makespan = rt.run(3, [](CoreCtx& c) {
    if (c.rank() == 0) {
      for (int s : {1, 2}) c.send(s, bio::Bytes(32));
      for (int s : {1, 2}) (void)c.recv(s);
    } else {
      (void)c.recv(0);
      c.charge(noc::kPsPerMs);
      c.send(0, bio::Bytes(8));
    }
  });
  ASSERT_FALSE(rt.trace().empty());
  for (const TraceEvent& ev : rt.trace()) {
    EXPECT_LT(ev.start, ev.end);
    EXPECT_LE(ev.end, makespan);
    EXPECT_GE(ev.rank, 0);
    EXPECT_LT(ev.rank, 3);
  }
}

TEST(Trace, PerCoreIntervalsDoNotOverlap) {
  SpmdRuntime rt(traced_config());
  rt.run(2, [](CoreCtx& c) {
    if (c.rank() == 0) {
      c.charge(noc::kPsPerUs);
      c.send(1, bio::Bytes(16));
      (void)c.recv(1);
    } else {
      (void)c.recv(0);
      c.charge(2 * noc::kPsPerUs);
      c.send(0, bio::Bytes(16));
    }
  });
  // Events for one rank, in recorded order, must be non-overlapping.
  std::array<noc::SimTime, 2> last_end{0, 0};
  for (const TraceEvent& ev : rt.trace()) {
    EXPECT_GE(ev.start, last_end[static_cast<std::size_t>(ev.rank)]);
    last_end[static_cast<std::size_t>(ev.rank)] = ev.end;
  }
}

TEST(Trace, BusyTimeMatchesReports) {
  SpmdRuntime rt(traced_config());
  rt.run(1, [](CoreCtx& c) {
    c.charge(3 * noc::kPsPerMs);
    c.charge(noc::kPsPerMs);
  });
  noc::SimTime traced_busy = 0;
  for (const TraceEvent& ev : rt.trace())
    if (ev.kind != TraceEvent::Kind::Blocked) traced_busy += ev.end - ev.start;
  EXPECT_EQ(traced_busy, rt.core_reports()[0].busy);
}

TEST(Gantt, RendersOneRowPerCore) {
  SpmdRuntime rt(traced_config());
  const noc::SimTime makespan = rt.run(3, [](CoreCtx& c) {
    c.charge((static_cast<noc::SimTime>(c.rank()) + 1) * noc::kPsPerMs);
  });
  GanttOptions opts;
  opts.width = 40;
  const std::string chart = render_gantt(rt.trace(), 3, makespan, opts);
  EXPECT_NE(chart.find("rck00 |"), std::string::npos);
  EXPECT_NE(chart.find("rck02 |"), std::string::npos);
  EXPECT_NE(chart.find("master"), std::string::npos);
  EXPECT_NE(chart.find("legend") == std::string::npos ? chart.find("C compute")
                                                      : chart.find("C compute"),
            std::string::npos);
  // Core 2 computed for the whole makespan: its row is all 'C'.
  const std::size_t row2 = chart.find("rck02 |") + 7;
  for (std::size_t c = 0; c < 40; ++c) EXPECT_EQ(chart[row2 + c], 'C');
  // Core 0 computed for a third: its row has idle columns.
  const std::size_t row0 = chart.find("rck00 |") + 7;
  EXPECT_EQ(chart[row0 + 39], '.');
}

TEST(Gantt, KindCharactersDistinct) {
  std::set<char> chars;
  chars.insert(gantt_char(TraceEvent::Kind::Compute));
  chars.insert(gantt_char(TraceEvent::Kind::Send));
  chars.insert(gantt_char(TraceEvent::Kind::Recv));
  chars.insert(gantt_char(TraceEvent::Kind::Poll));
  chars.insert(gantt_char(TraceEvent::Kind::Dram));
  chars.insert(gantt_char(TraceEvent::Kind::Blocked));
  EXPECT_EQ(chars.size(), 6u);
}

TEST(Gantt, RejectsBadDimensions) {
  EXPECT_THROW(render_gantt({}, 0, 100), rck::scc::ChipError);
  GanttOptions bad;
  bad.width = 0;
  EXPECT_THROW(render_gantt({}, 1, 100, bad), rck::scc::ChipError);
}

}  // namespace
}  // namespace rck::scc
