#include <gtest/gtest.h>

#include "rck/rckskel/skeletons.hpp"

namespace rck::rckskel {
namespace {

using bio::Bytes;
using bio::WireReader;
using bio::WireWriter;

Bytes u32_payload(std::uint32_t v) {
  WireWriter w;
  w.u32(v);
  return w.take();
}

std::uint32_t u32_of(const Bytes& b) {
  WireReader r(b);
  return r.u32();
}

std::vector<Job> numbered_items(std::uint32_t n) {
  std::vector<Job> items;
  for (std::uint32_t k = 0; k < n; ++k) {
    Job j;
    j.id = k;
    j.payload = u32_payload(k);
    items.push_back(std::move(j));
  }
  return items;
}

/// Stage worker: add `delta` to the u32 payload after `cost` of simulated
/// compute.
Worker adder(std::uint32_t delta, noc::SimTime cost) {
  return [delta, cost](rcce::Comm& comm, const Bytes& payload) {
    comm.charge_time(cost);
    return u32_payload(u32_of(payload) + delta);
  };
}

TEST(Pipe, ThreeStageTransformChain) {
  // master -> +1 -> +10 -> +100 -> master
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  std::vector<JobResult> results;
  rt.run(4, [&](scc::CoreCtx& ctx) {
    rcce::Comm comm(ctx);
    switch (comm.ue()) {
      case 0: {
        const std::vector<int> stages{1, 2, 3};
        results = pipe(comm, stages, numbered_items(8));
        break;
      }
      case 1: pipe_stage(comm, 0, 2, adder(1, 0)); break;
      case 2: pipe_stage(comm, 1, 3, adder(10, 0)); break;
      case 3: pipe_stage(comm, 2, 0, adder(100, 0)); break;
    }
  });
  ASSERT_EQ(results.size(), 8u);
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_EQ(results[k].id, k);  // FIFO end-to-end order
    EXPECT_EQ(u32_of(results[k].payload), k + 111);
  }
}

TEST(Pipe, SingleStage) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  std::vector<JobResult> results;
  rt.run(2, [&](scc::CoreCtx& ctx) {
    rcce::Comm comm(ctx);
    if (comm.ue() == 0) {
      const std::vector<int> stages{1};
      results = pipe(comm, stages, numbered_items(3));
    } else {
      pipe_stage(comm, 0, 0, adder(5, 0));
    }
  });
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(u32_of(results[2].payload), 7u);
}

TEST(Pipe, FillDrainThroughputLaw) {
  // S equal stages of cost T, N items: makespan ~= (N + S - 1) * T.
  constexpr int kStages = 4;
  constexpr std::uint32_t kItems = 16;
  const noc::SimTime T = noc::kPsPerMs;

  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  const noc::SimTime makespan = rt.run(kStages + 1, [&](scc::CoreCtx& ctx) {
    rcce::Comm comm(ctx);
    if (comm.ue() == 0) {
      std::vector<int> stages;
      for (int s = 1; s <= kStages; ++s) stages.push_back(s);
      (void)pipe(comm, stages, numbered_items(kItems));
    } else {
      const int down = comm.ue() == kStages ? 0 : comm.ue() + 1;
      pipe_stage(comm, comm.ue() - 1, down, adder(0, T));
    }
  });
  const double ideal = static_cast<double>(kItems + kStages - 1) *
                       static_cast<double>(T);
  const double measured = static_cast<double>(makespan);
  EXPECT_GT(measured, ideal);                 // comms add strictly positive time
  EXPECT_LT(measured, ideal * 1.05);          // but only a little
}

TEST(Pipe, EmptyItemListStillTerminatesCleanly) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  std::size_t count = 99;
  rt.run(2, [&](scc::CoreCtx& ctx) {
    rcce::Comm comm(ctx);
    if (comm.ue() == 0) {
      const std::vector<int> stages{1};
      count = pipe(comm, stages, {}).size();
    } else {
      pipe_stage(comm, 0, 0, adder(1, 0));
    }
  });
  EXPECT_EQ(count, 0u);
}

TEST(Pipe, MasterCannotBeStage) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  EXPECT_THROW(rt.run(1,
                      [&](scc::CoreCtx& ctx) {
                        rcce::Comm comm(ctx);
                        const std::vector<int> stages{0};
                        (void)pipe(comm, stages, {});
                      }),
               rck::rckskel::SkelError);
}

TEST(Pipe, NoStagesRejected) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  EXPECT_THROW(rt.run(1,
                      [&](scc::CoreCtx& ctx) {
                        rcce::Comm comm(ctx);
                        (void)pipe(comm, {}, {});
                      }),
               rck::rckskel::SkelError);
}

TEST(Pipe, PipelineParallelismBeatsSerialExecution) {
  // The whole point of PIPE: N items through S stages of cost T take
  // ~(N+S-1)T instead of N*S*T.
  constexpr int kStages = 3;
  constexpr std::uint32_t kItems = 12;
  const noc::SimTime T = noc::kPsPerMs;
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  const noc::SimTime makespan = rt.run(kStages + 1, [&](scc::CoreCtx& ctx) {
    rcce::Comm comm(ctx);
    if (comm.ue() == 0) {
      std::vector<int> stages;
      for (int s = 1; s <= kStages; ++s) stages.push_back(s);
      (void)pipe(comm, stages, numbered_items(kItems));
    } else {
      const int down = comm.ue() == kStages ? 0 : comm.ue() + 1;
      pipe_stage(comm, comm.ue() - 1, down, adder(0, T));
    }
  });
  const double serial = static_cast<double>(kItems) * kStages * static_cast<double>(T);
  EXPECT_LT(static_cast<double>(makespan), 0.5 * serial);
}

}  // namespace
}  // namespace rck::rckskel
