#include "rck/rckskel/skeletons.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "rck/scc/runtime.hpp"

namespace rck::rckskel {
namespace {

using bio::Bytes;
using bio::WireReader;
using bio::WireWriter;

/// Worker used across tests: reads a u32 n, charges n microseconds, returns
/// 2*n.
Bytes doubling_worker(rcce::Comm& comm, const Bytes& payload) {
  WireReader r(payload);
  const std::uint32_t n = r.u32();
  comm.charge_time(static_cast<noc::SimTime>(n) * noc::kPsPerUs);
  WireWriter w;
  w.u32(2 * n);
  return w.take();
}

std::vector<Job> numbered_jobs(std::uint32_t count, std::uint64_t id_base = 0) {
  std::vector<Job> jobs;
  for (std::uint32_t k = 0; k < count; ++k) {
    Job j;
    j.id = id_base + k;
    WireWriter w;
    w.u32(k + 1);
    j.payload = w.take();
    j.cost_hint = k + 1;
    jobs.push_back(std::move(j));
  }
  return jobs;
}

std::uint32_t result_value(const JobResult& r) {
  WireReader rd(r.payload);
  return rd.u32();
}

TEST(Farm, AllJobsProcessedOnce) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  std::vector<JobResult> results;
  rt.run(5, [&](scc::CoreCtx& ctx) {
    rcce::Comm comm(ctx);
    if (comm.ue() == 0) {
      const std::vector<int> slaves{1, 2, 3, 4};
      const Task task = Task::make_par(slaves, numbered_jobs(20));
      results = farm(comm, task);
    } else {
      farm_slave(comm, 0, doubling_worker);
    }
  });
  ASSERT_EQ(results.size(), 20u);
  std::set<std::uint64_t> ids;
  for (const JobResult& r : results) {
    ids.insert(r.id);
    EXPECT_EQ(result_value(r), 2 * (static_cast<std::uint32_t>(r.id) + 1));
    EXPECT_GE(r.worker, 1);
    EXPECT_LE(r.worker, 4);
  }
  EXPECT_EQ(ids.size(), 20u);  // no duplicates, none missing
}

TEST(Farm, UsesAllSlaves) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  std::set<int> workers;
  rt.run(5, [&](scc::CoreCtx& ctx) {
    rcce::Comm comm(ctx);
    if (comm.ue() == 0) {
      for (const JobResult& r : farm(comm, Task::make_par({1, 2, 3, 4}, numbered_jobs(40))))
        workers.insert(r.worker);
    } else {
      farm_slave(comm, 0, doubling_worker);
    }
  });
  EXPECT_EQ(workers.size(), 4u);
}

TEST(Farm, MoreSlavesThanJobs) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  std::size_t count = 0;
  rt.run(7, [&](scc::CoreCtx& ctx) {
    rcce::Comm comm(ctx);
    if (comm.ue() == 0) {
      count = farm(comm, Task::make_par({1, 2, 3, 4, 5, 6}, numbered_jobs(2))).size();
    } else {
      farm_slave(comm, 0, doubling_worker);
    }
  });
  EXPECT_EQ(count, 2u);  // idle slaves still get TERMINATE and exit cleanly
}

// The plain farm assumes a reliable master; an orphaned slave must fail
// loudly (classified by whether the master is dead or just silent) instead
// of hanging the simulation in a blocking recv forever.
TEST(Farm, OrphanedSlaveRaisesFaultStallWhenMasterCrashed) {
  scc::RuntimeConfig cfg;
  cfg.faults.crashes.push_back({0, 1 * noc::kPsPerMs});
  scc::SpmdRuntime rt(cfg);
  FarmOptions opts;
  opts.slave_idle_timeout = 5 * noc::kPsPerMs;
  EXPECT_THROW(rt.run(2,
                      [&](scc::CoreCtx& ctx) {
                        rcce::Comm comm(ctx);
                        if (comm.ue() == 0)
                          comm.charge_time(10 * noc::kPsPerMs);  // dies at 1ms
                        else
                          farm_slave(comm, 0, doubling_worker, opts);
                      }),
               scc::FaultStallError);
}

TEST(Farm, OrphanedSlaveRaisesDeadlockWhenMasterIsAliveButSilent) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  FarmOptions opts;
  opts.slave_idle_timeout = 5 * noc::kPsPerMs;
  EXPECT_THROW(rt.run(2,
                      [&](scc::CoreCtx& ctx) {
                        rcce::Comm comm(ctx);
                        if (comm.ue() == 0)
                          comm.charge_time(100 * noc::kPsPerMs);  // never farms
                        else
                          farm_slave(comm, 0, doubling_worker, opts);
                      }),
               scc::DeadlockError);
}

TEST(Farm, SingleSlave) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  std::size_t count = 0;
  rt.run(2, [&](scc::CoreCtx& ctx) {
    rcce::Comm comm(ctx);
    if (comm.ue() == 0)
      count = farm(comm, Task::make_par({1}, numbered_jobs(5))).size();
    else
      farm_slave(comm, 0, doubling_worker);
  });
  EXPECT_EQ(count, 5u);
}

TEST(Farm, DynamicDispatchBalancesHeterogeneousJobs) {
  // One huge job plus many small ones: with greedy dispatch the slave that
  // gets the huge job must not also hold small ones hostage.
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  noc::SimTime makespan = 0;
  rt.run(3, [&](scc::CoreCtx& ctx) {
    rcce::Comm comm(ctx);
    if (comm.ue() == 0) {
      std::vector<Job> jobs;
      {
        Job big;
        big.id = 0;
        WireWriter w;
        w.u32(10000);  // 10 ms
        big.payload = w.take();
        jobs.push_back(std::move(big));
      }
      for (int k = 0; k < 10; ++k) {
        Job small;
        small.id = static_cast<std::uint64_t>(k + 1);
        WireWriter w;
        w.u32(1000);  // 1 ms each
        small.payload = w.take();
        jobs.push_back(std::move(small));
      }
      farm(comm, Task::make_par({1, 2}, std::move(jobs)));
    } else {
      farm_slave(comm, 0, doubling_worker);
    }
    makespan = std::max(makespan, ctx.now());
  });
  // Ideal: slave A runs the 10 ms job, slave B runs 10 x 1 ms => ~10 ms.
  // Static round-robin would give ~15 ms. Allow overheads.
  EXPECT_LT(noc::to_seconds(makespan), 0.012);
}

TEST(Farm, LptOrderRunsBigJobsFirst) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  std::vector<std::uint64_t> completion_order;
  rt.run(2, [&](scc::CoreCtx& ctx) {
    rcce::Comm comm(ctx);
    if (comm.ue() == 0) {
      FarmOptions opts;
      opts.lpt_order = true;
      // cost hints 1..6; LPT must dispatch 6 first on the single slave.
      for (const JobResult& r :
           farm(comm, Task::make_par({1}, numbered_jobs(6)), opts))
        completion_order.push_back(r.id);
    } else {
      farm_slave(comm, 0, doubling_worker);
    }
  });
  ASSERT_EQ(completion_order.size(), 6u);
  EXPECT_EQ(completion_order.front(), 5u);  // highest hint = id 5
  EXPECT_EQ(completion_order.back(), 0u);
}

TEST(Farm, SeqTaskPreservesOrder) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  std::vector<std::uint64_t> order;
  rt.run(4, [&](scc::CoreCtx& ctx) {
    rcce::Comm comm(ctx);
    if (comm.ue() == 0) {
      for (const JobResult& r : farm(comm, Task::make_seq({1, 2, 3}, numbered_jobs(9))))
        order.push_back(r.id);
    } else {
      farm_slave(comm, 0, doubling_worker);
    }
  });
  ASSERT_EQ(order.size(), 9u);
  for (std::size_t k = 0; k < 9; ++k) EXPECT_EQ(order[k], k);
}

TEST(Farm, GroupWithUeRestrictions) {
  // Two Par children with disjoint UE sets: jobs must only run on their
  // own group's UEs (the MC-PSC partitioning mechanism).
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  std::vector<JobResult> results;
  rt.run(5, [&](scc::CoreCtx& ctx) {
    rcce::Comm comm(ctx);
    if (comm.ue() == 0) {
      std::vector<Task> children;
      children.push_back(Task::make_par({1, 2}, numbered_jobs(8, 0)));
      children.push_back(Task::make_par({3, 4}, numbered_jobs(8, 100)));
      results = farm(comm, Task::make_group(Task::Mode::Par, {}, std::move(children)));
    } else {
      farm_slave(comm, 0, doubling_worker);
    }
  });
  ASSERT_EQ(results.size(), 16u);
  for (const JobResult& r : results) {
    if (r.id < 100)
      EXPECT_TRUE(r.worker == 1 || r.worker == 2) << "job " << r.id;
    else
      EXPECT_TRUE(r.worker == 3 || r.worker == 4) << "job " << r.id;
  }
}

TEST(Farm, SeqGroupOrdersChildren) {
  // Seq group: all jobs of child 0 complete before any of child 1 starts.
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  std::vector<std::uint64_t> order;
  rt.run(3, [&](scc::CoreCtx& ctx) {
    rcce::Comm comm(ctx);
    if (comm.ue() == 0) {
      std::vector<Task> children;
      children.push_back(Task::make_par({1, 2}, numbered_jobs(6, 0)));
      children.push_back(Task::make_par({1, 2}, numbered_jobs(6, 100)));
      for (const JobResult& r :
           farm(comm, Task::make_group(Task::Mode::Seq, {}, std::move(children))))
        order.push_back(r.id);
    } else {
      farm_slave(comm, 0, doubling_worker);
    }
  });
  ASSERT_EQ(order.size(), 12u);
  for (std::size_t k = 0; k < 6; ++k) EXPECT_LT(order[k], 100u);
  for (std::size_t k = 6; k < 12; ++k) EXPECT_GE(order[k], 100u);
}

TEST(Farm, MasterCannotBeSlave) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  EXPECT_THROW(rt.run(2,
                      [&](scc::CoreCtx& ctx) {
                        rcce::Comm comm(ctx);
                        if (comm.ue() == 0)
                          farm(comm, Task::make_par({0, 1}, numbered_jobs(2)));
                        else
                          farm_slave(comm, 0, doubling_worker);
                      }),
               rck::rckskel::SkelError);
}

TEST(Farm, EmptyUeSetRejected) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  EXPECT_THROW(rt.run(1,
                      [&](scc::CoreCtx& ctx) {
                        rcce::Comm comm(ctx);
                        farm(comm, Task::make_par({}, numbered_jobs(2)));
                      }),
               rck::rckskel::SkelError);
}

TEST(ParCollect, RoundTrip) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  std::vector<JobResult> results;
  rt.run(3, [&](scc::CoreCtx& ctx) {
    rcce::Comm comm(ctx);
    if (comm.ue() == 0) {
      const std::vector<int> ues{1, 2};
      const std::vector<Job> jobs = numbered_jobs(6);
      par(comm, ues, jobs);
      results = collect(comm, ues, jobs.size());
      terminate(comm, ues);
    } else {
      FarmOptions opts;
      opts.wait_ready = false;  // par/collect have no handshake
      farm_slave(comm, 0, doubling_worker, opts);
    }
  });
  ASSERT_EQ(results.size(), 6u);
}

TEST(Seq, OneAtATime) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  std::vector<JobResult> results;
  rt.run(3, [&](scc::CoreCtx& ctx) {
    rcce::Comm comm(ctx);
    if (comm.ue() == 0) {
      const std::vector<int> ues{1, 2};
      results = seq(comm, ues, numbered_jobs(5));
      terminate(comm, ues);
    } else {
      FarmOptions opts;
      opts.wait_ready = false;
      farm_slave(comm, 0, doubling_worker, opts);
    }
  });
  ASSERT_EQ(results.size(), 5u);
  for (std::size_t k = 0; k < 5; ++k) EXPECT_EQ(results[k].id, k);
}

TEST(TaskTree, JobCount) {
  std::vector<Task> children;
  children.push_back(Task::make_par({1}, numbered_jobs(3)));
  children.push_back(Task::make_par({2}, numbered_jobs(4)));
  Task group = Task::make_group(Task::Mode::Par, {}, std::move(children));
  group.jobs = numbered_jobs(2);
  EXPECT_EQ(group.job_count(), 9u);
}

TEST(Env, DebugLevelsAndHelpers) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  rt.run(2, [](scc::CoreCtx& ctx) {
    rcce::Comm comm(ctx);
    Env env(comm);
    EXPECT_EQ(env.available_cores(), 2);
    EXPECT_EQ(env.is_master(), comm.ue() == 0);
    env.set_debug_level(0);
    env.log(1, "suppressed");  // must not crash; level 1 > 0
    EXPECT_EQ(env.debug_level(), 0);
  });
}

}  // namespace
}  // namespace rck::rckskel
