// Fault-tolerant FARM: leases, retries, blacklisting, checksum rejection,
// duplicate dedup, and graceful degradation under injected faults.
#include "rck/rckskel/skeletons.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "rck/scc/runtime.hpp"

namespace rck::rckskel {
namespace {

using bio::Bytes;
using bio::WireReader;
using bio::WireWriter;

// Worker that doubles a u32 after charging n milliseconds of compute —
// slow enough that mid-job crashes and lease expiries actually land mid-job.
Bytes slow_doubling_worker(rcce::Comm& comm, const Bytes& payload) {
  WireReader r(payload);
  const std::uint32_t n = r.u32();
  comm.charge_time(static_cast<noc::SimTime>(n % 5 + 1) * noc::kPsPerMs);
  WireWriter w;
  w.u32(2 * n);
  return w.take();
}

std::vector<Job> numbered_jobs(std::uint32_t count) {
  std::vector<Job> jobs;
  for (std::uint32_t k = 0; k < count; ++k) {
    Job j;
    j.id = k;
    WireWriter w;
    w.u32(k + 1);
    j.payload = w.take();
    j.cost_hint = k + 1;
    jobs.push_back(std::move(j));
  }
  return jobs;
}

std::uint32_t result_value(const JobResult& r) {
  WireReader rd(r.payload);
  return rd.u32();
}

FaultTolerantFarmOptions test_ft_options() {
  FaultTolerantFarmOptions o;
  o.ready_timeout = 10 * noc::kPsPerMs;
  o.lease = 20 * noc::kPsPerMs;
  return o;
}

struct FtRun {
  noc::SimTime makespan = 0;
  std::vector<JobResult> results;
  FarmReport report;
};

FtRun run_ft(const scc::FaultPlan& plan, std::uint32_t njobs, int nslaves,
             const FaultTolerantFarmOptions& opts) {
  scc::RuntimeConfig cfg;
  cfg.faults = plan;
  scc::SpmdRuntime rt(cfg);
  FtRun out;
  out.makespan = rt.run(nslaves + 1, [&](scc::CoreCtx& ctx) {
    rcce::Comm comm(ctx);
    if (comm.ue() == 0) {
      std::vector<int> slaves;
      for (int s = 1; s <= nslaves; ++s) slaves.push_back(s);
      const Task task = Task::make_par(slaves, numbered_jobs(njobs));
      out.results = farm_ft(comm, task, opts, &out.report);
    } else {
      farm_slave_ft(comm, 0, slow_doubling_worker, opts);
    }
  });
  return out;
}

void expect_all_jobs_done(const FtRun& run, std::uint32_t njobs) {
  ASSERT_EQ(run.results.size(), njobs);
  std::set<std::uint64_t> ids;
  for (const JobResult& r : run.results) {
    ids.insert(r.id);
    EXPECT_EQ(result_value(r), 2 * (static_cast<std::uint32_t>(r.id) + 1));
  }
  EXPECT_EQ(ids.size(), njobs);  // every job exactly once, values correct
}

TEST(FtFarm, NoFaultsBehavesLikePlainFarm) {
  const FtRun run = run_ft({}, 20, 4, test_ft_options());
  expect_all_jobs_done(run, 20);
  EXPECT_EQ(run.report.jobs, 20u);
  EXPECT_EQ(run.report.attempts, 20u);
  EXPECT_EQ(run.report.retries, 0u);
  EXPECT_EQ(run.report.reassignments, 0u);
  EXPECT_EQ(run.report.lease_expiries, 0u);
  EXPECT_EQ(run.report.corrupt_frames, 0u);
  EXPECT_TRUE(run.report.dead_ues.empty());
  EXPECT_EQ(run.report.wasted, 0);
}

// The acceptance criterion: all jobs complete with correct results when
// k < nslaves slaves crash, across crash phases — before READY (t = 0),
// mid-job, and late (possibly after the whole farm already finished).
class FtFarmCrash : public ::testing::TestWithParam<noc::SimTime> {};

TEST_P(FtFarmCrash, AllJobsCompleteDespiteCrash) {
  scc::FaultPlan plan;
  plan.crashes.push_back({2, GetParam()});
  const FtRun run = run_ft(plan, 20, 4, test_ft_options());
  expect_all_jobs_done(run, 20);
}

INSTANTIATE_TEST_SUITE_P(CrashPhases, FtFarmCrash,
                         ::testing::Values(noc::SimTime{0},          // pre-READY
                                           2 * noc::kPsPerMs,        // mid-job
                                           8 * noc::kPsPerMs));      // mid-run

TEST(FtFarm, PreReadyCrashIsBlacklistedUpFront) {
  scc::FaultPlan plan;
  plan.crashes.push_back({2, 0});
  const FtRun run = run_ft(plan, 20, 4, test_ft_options());
  expect_all_jobs_done(run, 20);
  ASSERT_EQ(run.report.dead_ues.size(), 1u);
  EXPECT_EQ(run.report.dead_ues[0], 2);
  // Blacklisted before any dispatch: no job was ever risked on it.
  EXPECT_EQ(run.report.lease_expiries, 0u);
}

TEST(FtFarm, MidJobCrashExpiresLeaseAndReassigns) {
  scc::FaultPlan plan;
  plan.crashes.push_back({2, 2 * noc::kPsPerMs});
  const FtRun run = run_ft(plan, 20, 4, test_ft_options());
  expect_all_jobs_done(run, 20);
  ASSERT_EQ(run.report.dead_ues.size(), 1u);
  EXPECT_EQ(run.report.dead_ues[0], 2);
  EXPECT_GE(run.report.lease_expiries, 1u);
  EXPECT_GE(run.report.retries, 1u);
  EXPECT_GE(run.report.reassignments, 1u);
  EXPECT_GT(run.report.wasted, 0);
}

TEST(FtFarm, TwoOfThreeSlavesCrashStillCompletes) {
  scc::FaultPlan plan;
  plan.crashes.push_back({1, 3 * noc::kPsPerMs});
  plan.crashes.push_back({3, 5 * noc::kPsPerMs});
  const FtRun run = run_ft(plan, 15, 3, test_ft_options());
  expect_all_jobs_done(run, 15);
  EXPECT_EQ(run.report.dead_ues.size(), 2u);
  // Everything dispatched after both crashes lands on the lone survivor.
  for (const JobResult& r : run.results) EXPECT_TRUE(r.worker >= 1 && r.worker <= 3);
}

TEST(FtFarm, DroppedJobFrameIsRetriedAfterLease) {
  scc::FaultPlan plan;
  // Flow master->slave1: nth 0 is the first JOB (READY flows the other way).
  plan.messages.push_back({scc::FaultPlan::MessageFault::Kind::Drop, 0, 1, 0});
  const FtRun run = run_ft(plan, 10, 2, test_ft_options());
  expect_all_jobs_done(run, 10);
  EXPECT_GE(run.report.lease_expiries, 1u);
  EXPECT_GE(run.report.retries, 1u);
  EXPECT_TRUE(run.report.dead_ues.empty());  // the slave was never dead
}

TEST(FtFarm, CorruptedResultIsDetectedAndRetriedImmediately) {
  scc::FaultPlan plan;
  // Flow slave1->master: nth 0 is READY, nth 1 the first RESULT.
  plan.messages.push_back({scc::FaultPlan::MessageFault::Kind::Corrupt, 1, 0, 1});
  const FtRun run = run_ft(plan, 10, 2, test_ft_options());
  expect_all_jobs_done(run, 10);
  EXPECT_GE(run.report.corrupt_frames, 1u);
  EXPECT_GE(run.report.retries, 1u);
  // Checksum catches it at once: no lease had to run out.
  EXPECT_EQ(run.report.lease_expiries, 0u);
  EXPECT_TRUE(run.report.dead_ues.empty());
}

TEST(FtFarm, CorruptedReadyStillProvesLiveness) {
  scc::FaultPlan plan;
  plan.messages.push_back({scc::FaultPlan::MessageFault::Kind::Corrupt, 1, 0, 0});
  const FtRun run = run_ft(plan, 10, 2, test_ft_options());
  expect_all_jobs_done(run, 10);
  EXPECT_GE(run.report.corrupt_frames, 1u);
  EXPECT_TRUE(run.report.dead_ues.empty());
}

TEST(FtFarm, SlowSlaveProducesDedupedDuplicate) {
  FaultTolerantFarmOptions opts = test_ft_options();
  opts.lease = noc::kPsPerMs;  // shorter than every job's compute time
  const FtRun run = run_ft({}, 6, 2, opts);
  expect_all_jobs_done(run, 6);
  EXPECT_GE(run.report.lease_expiries, 1u);
  EXPECT_GE(run.report.duplicate_results, 1u);
}

TEST(FtFarm, AllSlavesDeadThrows) {
  scc::FaultPlan plan;
  plan.crashes.push_back({1, 0});
  plan.crashes.push_back({2, 0});
  scc::RuntimeConfig cfg;
  cfg.faults = plan;
  scc::SpmdRuntime rt(cfg);
  EXPECT_THROW(rt.run(3,
                      [&](scc::CoreCtx& ctx) {
                        rcce::Comm comm(ctx);
                        if (comm.ue() == 0) {
                          const Task task =
                              Task::make_par({1, 2}, numbered_jobs(4));
                          (void)farm_ft(comm, task, test_ft_options());
                        } else {
                          farm_slave_ft(comm, 0, slow_doubling_worker,
                                        test_ft_options());
                        }
                      }),
               std::runtime_error);
}

TEST(FtFarm, DuplicateJobIdsRejected) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  EXPECT_THROW(rt.run(2,
                      [&](scc::CoreCtx& ctx) {
                        rcce::Comm comm(ctx);
                        if (comm.ue() == 0) {
                          std::vector<Job> jobs = numbered_jobs(2);
                          jobs[1].id = jobs[0].id;
                          const Task task =
                              Task::make_par({1}, std::move(jobs));
                          (void)farm_ft(comm, task, test_ft_options());
                        }
                        // Slave exits immediately; the master throws before
                        // any protocol traffic.
                      }),
               rck::rckskel::SkelError);
}

TEST(FtFarm, CollectRejectsEmptyUeSet) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  EXPECT_THROW(rt.run(1,
                      [](scc::CoreCtx& ctx) {
                        rcce::Comm comm(ctx);
                        (void)collect(comm, {}, 1);
                      }),
               scc::SimError);
}

// Same FaultPlan, same task: bit-identical makespan, results and FarmReport.
TEST(FtFarm, DeterministicReplay) {
  scc::FaultPlan plan;
  plan.crashes.push_back({2, 2 * noc::kPsPerMs});
  plan.messages.push_back({scc::FaultPlan::MessageFault::Kind::Drop, 0, 1, 1});
  plan.messages.push_back({scc::FaultPlan::MessageFault::Kind::Corrupt, 3, 0, 2});
  const FtRun a = run_ft(plan, 20, 4, test_ft_options());
  const FtRun b = run_ft(plan, 20, 4, test_ft_options());
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_TRUE(a.report == b.report);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].id, b.results[i].id);
    EXPECT_EQ(a.results[i].worker, b.results[i].worker);
    EXPECT_EQ(a.results[i].payload, b.results[i].payload);
  }
}

}  // namespace
}  // namespace rck::rckskel
