// Property tests for the master-failover checkpoint codec.
//
// Mirrors test_job_property.cpp for the snapshot blob: a randomized farm
// state (report, completed results, attempt counts) must survive an
// encode/decode round trip field-for-field, and any single flipped bit —
// checksum, header, or body — must be rejected with CheckpointError, never
// decoded into a plausible-but-wrong recovery state. This is the integrity
// property standby failover rests on: resuming from a corrupted snapshot
// would silently re-run or lose jobs.
#include "rck/rckskel/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

namespace rck::rckskel {
namespace {

bio::Bytes random_payload(std::mt19937_64& rng, std::size_t size) {
  bio::Bytes p(size);
  for (auto& b : p) b = static_cast<std::byte>(rng() & 0xff);
  return p;
}

FarmCheckpoint random_checkpoint(std::mt19937_64& rng) {
  FarmCheckpoint ck;
  ck.seq = rng();
  ck.report.jobs = rng() % 1000;
  ck.report.attempts = rng() % 1000;
  ck.report.retries = rng() % 100;
  ck.report.reassignments = rng() % 100;
  ck.report.lease_expiries = rng() % 100;
  ck.report.corrupt_frames = rng() % 100;
  ck.report.duplicate_results = rng() % 100;
  ck.report.checkpoints = rng() % 100;
  ck.report.failovers = rng() % 4;
  ck.report.resumed_jobs = rng() % 1000;
  const std::size_t ndead = rng() % 4;
  for (std::size_t i = 0; i < ndead; ++i)
    ck.report.dead_ues.push_back(static_cast<int>(rng() % 48));
  ck.report.wasted = static_cast<noc::SimTime>(rng() % (1u << 30));

  const std::size_t ndone = rng() % 16;
  for (std::size_t i = 0; i < ndone; ++i) {
    JobResult r;
    r.id = rng();
    r.worker = static_cast<int>(rng() % 48);
    r.payload = random_payload(rng, rng() % 512);
    ck.done.push_back(std::move(r));
  }
  const std::size_t natt = rng() % 8;
  for (std::size_t i = 0; i < natt; ++i) {
    ck.attempts.push_back(
        {rng(), static_cast<std::uint32_t>(rng() % 10 + 1)});
  }
  return ck;
}

TEST(CheckpointCodecProperty, RandomStatesRoundTrip) {
  std::mt19937_64 rng(20260808);
  for (int iter = 0; iter < 50; ++iter) {
    const FarmCheckpoint ck = random_checkpoint(rng);
    const FarmCheckpoint back =
        decode_checkpoint_state(encode_checkpoint_state(ck));
    EXPECT_EQ(back, ck) << "iter " << iter;
  }
}

TEST(CheckpointCodecProperty, EmptyStateRoundTrips) {
  // The startup baseline the master replicates before any result arrives.
  const FarmCheckpoint back =
      decode_checkpoint_state(encode_checkpoint_state(FarmCheckpoint{}));
  EXPECT_EQ(back, FarmCheckpoint{});
}

TEST(CheckpointCodecProperty, EverySingleBitFlipRejectedInSmallSnapshot) {
  std::mt19937_64 rng(2);
  FarmCheckpoint ck;
  ck.seq = 7;
  ck.report.jobs = 3;
  JobResult r;
  r.id = 1;
  r.worker = 2;
  r.payload = random_payload(rng, 16);
  ck.done.push_back(std::move(r));
  ck.attempts.push_back({2, 1});
  const bio::Bytes blob = encode_checkpoint_state(ck);
  for (std::size_t bit = 0; bit < blob.size() * 8; ++bit) {
    bio::Bytes corrupt = blob;
    corrupt[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    EXPECT_THROW(decode_checkpoint_state(corrupt), CheckpointError)
        << "bit " << bit;
  }
}

TEST(CheckpointCodecProperty, SampledBitFlipsRejectedInLargeSnapshots) {
  std::mt19937_64 rng(77);
  for (int iter = 0; iter < 20; ++iter) {
    const bio::Bytes blob = encode_checkpoint_state(random_checkpoint(rng));
    for (int k = 0; k < 32; ++k) {
      const std::size_t bit = rng() % (blob.size() * 8);
      bio::Bytes corrupt = blob;
      corrupt[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
      EXPECT_THROW(decode_checkpoint_state(corrupt), CheckpointError)
          << "iter " << iter << " bit " << bit;
    }
  }
}

TEST(CheckpointCodecProperty, TruncationsRejected) {
  std::mt19937_64 rng(5);
  const bio::Bytes blob = encode_checkpoint_state(random_checkpoint(rng));
  for (std::size_t len = 0; len < blob.size(); ++len) {
    const bio::Bytes cut(blob.begin(),
                         blob.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(decode_checkpoint_state(cut), CheckpointError) << len;
  }
}

TEST(CheckpointCodecProperty, TrailingGarbageRejected) {
  bio::Bytes blob = encode_checkpoint_state(FarmCheckpoint{});
  blob.push_back(std::byte{0});
  EXPECT_THROW(decode_checkpoint_state(blob), CheckpointError);
}

}  // namespace
}  // namespace rck::rckskel
