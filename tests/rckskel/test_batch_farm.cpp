// Batched-grant farm extension: BATCH/BATCHRESULT codec round trips and the
// farm(batch=K) <-> farm_slave_batch protocol, including interop with
// single-JOB frames, Seq-group singleton grants, and the loud-failure modes
// (wrong result count, batch on the fault-tolerant farms, plain slaves fed
// BATCH frames).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "rck/rckskel/skeletons.hpp"
#include "rck/scc/runtime.hpp"

namespace rck::rckskel {
namespace {

using bio::Bytes;
using bio::WireReader;
using bio::WireWriter;

Bytes doubling_worker(rcce::Comm& comm, const Bytes& payload) {
  WireReader r(payload);
  const std::uint32_t n = r.u32();
  comm.charge_time(static_cast<noc::SimTime>(n) * noc::kPsPerUs);
  WireWriter w;
  w.u32(2 * n);
  return w.take();
}

/// Batch worker applying doubling_worker to every granted job.
void doubling_batch_worker(rcce::Comm& comm, std::span<const Job> jobs,
                           std::vector<Bytes>& out) {
  for (const Job& job : jobs) out.push_back(doubling_worker(comm, job.payload));
}

std::vector<Job> numbered_jobs(std::uint32_t count, std::uint64_t id_base = 0) {
  std::vector<Job> jobs;
  for (std::uint32_t k = 0; k < count; ++k) {
    Job j;
    j.id = id_base + k;
    WireWriter w;
    w.u32(k + 1);
    j.payload = w.take();
    j.cost_hint = k + 1;
    jobs.push_back(std::move(j));
  }
  return jobs;
}

std::uint32_t result_value(const JobResult& r) {
  WireReader rd(r.payload);
  return rd.u32();
}

// ---- Codec -----------------------------------------------------------------

TEST(BatchCodec, GrantRoundTrip) {
  const std::vector<Job> jobs = numbered_jobs(3, 40);
  std::vector<const Job*> ptrs;
  for (const Job& j : jobs) ptrs.push_back(&j);

  const Message m = decode_message(encode_batch(ptrs));
  ASSERT_EQ(m.type, MsgType::Batch);
  std::vector<Job> back;
  decode_batch_jobs(m.payload, back);
  ASSERT_EQ(back.size(), jobs.size());
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    EXPECT_EQ(back[k].id, jobs[k].id);
    EXPECT_EQ(back[k].payload, jobs[k].payload);
    EXPECT_EQ(back[k].cost_hint, 0u);  // scheduling state does not travel
  }
}

TEST(BatchCodec, ResultRoundTrip) {
  const std::vector<Job> jobs = numbered_jobs(4, 7);
  std::vector<Bytes> payloads;
  for (const Job& j : jobs) {
    WireWriter w;
    w.u64(j.id * 2);
    payloads.push_back(w.take());
  }

  const Message m = decode_message(encode_batch_result(jobs, payloads));
  ASSERT_EQ(m.type, MsgType::BatchResult);
  std::vector<JobResult> back;
  decode_batch_results(m.payload, /*worker=*/9, back);
  ASSERT_EQ(back.size(), jobs.size());
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    EXPECT_EQ(back[k].id, jobs[k].id);
    EXPECT_EQ(back[k].worker, 9);
    EXPECT_EQ(back[k].payload, payloads[k]);
  }
}

TEST(BatchCodec, EmptyPayloadsSurvive) {
  std::vector<Job> jobs(2);
  jobs[0].id = 1;
  jobs[1].id = 2;  // both payloads empty
  std::vector<const Job*> ptrs{&jobs[0], &jobs[1]};
  std::vector<Job> back;
  decode_batch_jobs(decode_message(encode_batch(ptrs)).payload, back);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_TRUE(back[0].payload.empty());
  EXPECT_TRUE(back[1].payload.empty());
}

TEST(BatchCodec, RejectsMalformedFrames) {
  EXPECT_THROW(encode_batch({}), bio::WireError);
  const std::vector<Job> jobs = numbered_jobs(2);
  const std::vector<Bytes> one(1);
  EXPECT_THROW(encode_batch_result(jobs, one), bio::WireError);

  // Zero-count and trailing-bytes bodies are rejected at decode time.
  std::vector<Job> sink;
  WireWriter zero;
  zero.u32(0);
  EXPECT_THROW(decode_batch_jobs(zero.take(), sink), bio::WireError);
  std::vector<const Job*> ptrs{&jobs[0]};
  Message m = decode_message(encode_batch(ptrs));
  m.payload.push_back(std::byte{0});
  EXPECT_THROW(decode_batch_jobs(m.payload, sink), bio::WireError);
  std::vector<JobResult> rsink;
  EXPECT_THROW(decode_batch_results(m.payload, 0, rsink), bio::WireError);
}

// ---- Batched farm ----------------------------------------------------------

TEST(BatchFarm, AllJobsProcessedOnceWithBatchedGrants) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  std::vector<JobResult> results;
  FarmOptions opts;
  opts.batch = 4;
  rt.run(4, [&](scc::CoreCtx& ctx) {
    rcce::Comm comm(ctx);
    if (comm.ue() == 0) {
      // 22 jobs over 3 slaves at K=4: several full grants plus ragged tails.
      results = farm(comm, Task::make_par({1, 2, 3}, numbered_jobs(22)), opts);
    } else {
      farm_slave_batch(comm, 0, doubling_batch_worker, opts);
    }
  });
  ASSERT_EQ(results.size(), 22u);
  std::set<std::uint64_t> ids;
  for (const JobResult& r : results) {
    ids.insert(r.id);
    EXPECT_EQ(result_value(r), 2 * (static_cast<std::uint32_t>(r.id) + 1));
  }
  EXPECT_EQ(ids.size(), 22u);
}

TEST(BatchFarm, ResultsMatchUnbatchedFarmPerJob) {
  // The same task at K=1 (classic) and K=3: identical payload per job id —
  // batching is a scheduling knob, not an observable behaviour change.
  std::map<std::uint64_t, Bytes> by_batch[2];
  const std::size_t batch_of[2] = {1, 3};
  for (int round = 0; round < 2; ++round) {
    scc::SpmdRuntime rt{scc::RuntimeConfig{}};
    FarmOptions opts;
    opts.batch = batch_of[round];
    rt.run(3, [&](scc::CoreCtx& ctx) {
      rcce::Comm comm(ctx);
      if (comm.ue() == 0) {
        for (JobResult& r :
             farm(comm, Task::make_par({1, 2}, numbered_jobs(10)), opts))
          by_batch[round][r.id] = std::move(r.payload);
      } else {
        farm_slave_batch(comm, 0, doubling_batch_worker, opts);
      }
    });
  }
  EXPECT_EQ(by_batch[0], by_batch[1]);
}

TEST(BatchFarm, SeqGroupsStaySingletonAndOrdered) {
  // Seq ordering must survive batching: grants to a Seq group carry one job
  // no matter how large opts.batch is.
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  std::vector<std::uint64_t> order;
  FarmOptions opts;
  opts.batch = 4;
  rt.run(3, [&](scc::CoreCtx& ctx) {
    rcce::Comm comm(ctx);
    if (comm.ue() == 0) {
      for (const JobResult& r :
           farm(comm, Task::make_seq({1, 2}, numbered_jobs(6)), opts))
        order.push_back(r.id);
    } else {
      farm_slave_batch(comm, 0, doubling_batch_worker, opts);
    }
  });
  ASSERT_EQ(order.size(), 6u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(BatchFarm, BatchSlaveServesClassicUnbatchedFarm) {
  // A batch-aware slave under a batch=1 master: single JOB frames are served
  // as one-job grants with classic RESULT replies.
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  std::vector<JobResult> results;
  rt.run(2, [&](scc::CoreCtx& ctx) {
    rcce::Comm comm(ctx);
    if (comm.ue() == 0)
      results = farm(comm, Task::make_par({1}, numbered_jobs(5)));
    else
      farm_slave_batch(comm, 0, doubling_batch_worker);
  });
  ASSERT_EQ(results.size(), 5u);
  for (const JobResult& r : results)
    EXPECT_EQ(result_value(r), 2 * (static_cast<std::uint32_t>(r.id) + 1));
}

TEST(BatchFarm, PlainSlaveFailsLoudlyOnBatchFrame) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  FarmOptions opts;
  opts.batch = 2;
  EXPECT_THROW(rt.run(2,
                      [&](scc::CoreCtx& ctx) {
                        rcce::Comm comm(ctx);
                        if (comm.ue() == 0)
                          farm(comm, Task::make_par({1}, numbered_jobs(4)),
                               opts);
                        else
                          farm_slave(comm, 0, doubling_worker, opts);
                      }),
               SkelProtocolError);
}

TEST(BatchFarm, WorkerResultCountMismatchThrows) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  FarmOptions opts;
  opts.batch = 2;
  const auto bad_worker = [](rcce::Comm&, std::span<const Job>,
                             std::vector<Bytes>& out) {
    out.push_back(Bytes{});  // always one result, whatever the grant size
  };
  EXPECT_THROW(rt.run(2,
                      [&](scc::CoreCtx& ctx) {
                        rcce::Comm comm(ctx);
                        if (comm.ue() == 0)
                          farm(comm, Task::make_par({1}, numbered_jobs(4)),
                               opts);
                        else
                          farm_slave_batch(comm, 0, bad_worker, opts);
                      }),
               SkelBatchError);
}

TEST(BatchFarm, ZeroBatchRejected) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  FarmOptions opts;
  opts.batch = 0;
  EXPECT_THROW(rt.run(2,
                      [&](scc::CoreCtx& ctx) {
                        rcce::Comm comm(ctx);
                        if (comm.ue() == 0)
                          farm(comm, Task::make_par({1}, numbered_jobs(2)),
                               opts);
                        else
                          farm_slave_batch(comm, 0, doubling_batch_worker,
                                           opts);
                      }),
               SkelBatchError);
}

TEST(BatchFarm, FaultTolerantFarmsRejectBatching) {
  // The FT farms lease/retry individual jobs; batched grants are explicitly
  // unsupported rather than silently un-batched.
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  FaultTolerantFarmOptions opts;
  opts.base.batch = 2;
  EXPECT_THROW(rt.run(2,
                      [&](scc::CoreCtx& ctx) {
                        rcce::Comm comm(ctx);
                        if (comm.ue() == 0)
                          farm_ft(comm, Task::make_par({1}, numbered_jobs(2)),
                                  opts);
                        else
                          farm_slave_ft(comm, 0, doubling_worker, opts);
                      }),
               SkelBatchError);
}

TEST(BatchFarm, BatchingReducesMasterRoundTrips) {
  // The modeled benefit: K jobs per grant means fewer master<->slave
  // exchanges. With uniform job costs the load balance is identical either
  // way (each slave ends up with the same job count), so the saved frame
  // round trips must show up as a no-worse simulated makespan. (With
  // heterogeneous costs batching can legitimately lose: coarser grants mean
  // coarser greedy balancing — that tradeoff is the caller's to weigh.)
  std::vector<Job> uniform(24);
  for (std::size_t k = 0; k < uniform.size(); ++k) {
    uniform[k].id = k;
    WireWriter w;
    w.u32(50);  // 50 us each
    uniform[k].payload = w.take();
  }
  noc::SimTime makespan[2] = {0, 0};
  const std::size_t batch_of[2] = {1, 4};
  for (int round = 0; round < 2; ++round) {
    scc::SpmdRuntime rt{scc::RuntimeConfig{}};
    FarmOptions opts;
    opts.batch = batch_of[round];
    rt.run(3, [&](scc::CoreCtx& ctx) {
      rcce::Comm comm(ctx);
      if (comm.ue() == 0) {
        (void)farm(comm, Task::make_par({1, 2}, uniform), opts);
        makespan[round] = ctx.now();
      } else {
        farm_slave_batch(comm, 0, doubling_batch_worker, opts);
      }
    });
  }
  EXPECT_LE(makespan[1], makespan[0]);
}

}  // namespace
}  // namespace rck::rckskel
