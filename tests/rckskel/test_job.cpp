#include "rck/rckskel/job.hpp"

#include <gtest/gtest.h>

namespace rck::rckskel {
namespace {

bio::Bytes some_payload() {
  bio::WireWriter w;
  w.str("job payload");
  w.u32(99);
  return w.take();
}

TEST(JobCodec, ReadyRoundTrip) {
  const Message m = decode_message(encode_ready());
  EXPECT_EQ(m.type, MsgType::Ready);
  EXPECT_TRUE(m.payload.empty());
}

TEST(JobCodec, TerminateRoundTrip) {
  const Message m = decode_message(encode_terminate());
  EXPECT_EQ(m.type, MsgType::Terminate);
}

TEST(JobCodec, JobRoundTrip) {
  Job job;
  job.id = 1234567890123ull;
  job.payload = some_payload();
  const Message m = decode_message(encode_job(job));
  EXPECT_EQ(m.type, MsgType::Job);
  EXPECT_EQ(m.job_id, job.id);
  EXPECT_EQ(m.payload, job.payload);
}

TEST(JobCodec, ResultRoundTrip) {
  const bio::Bytes payload = some_payload();
  const Message m = decode_message(encode_result(77, payload));
  EXPECT_EQ(m.type, MsgType::Result);
  EXPECT_EQ(m.job_id, 77u);
  EXPECT_EQ(m.payload, payload);
}

TEST(JobCodec, EmptyPayloadJob) {
  Job job;
  job.id = 5;
  const Message m = decode_message(encode_job(job));
  EXPECT_EQ(m.job_id, 5u);
  EXPECT_TRUE(m.payload.empty());
}

TEST(JobCodec, UnknownTypeThrows) {
  bio::WireWriter w;
  w.u8(9);
  EXPECT_THROW(decode_message(w.take()), bio::WireError);
}

TEST(JobCodec, TruncatedJobThrows) {
  bio::WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::Job));
  w.u32(1);  // not a full u64 id
  EXPECT_THROW(decode_message(w.take()), bio::WireError);
}

TEST(JobCodec, EmptyBufferThrows) {
  EXPECT_THROW(decode_message(bio::Bytes{}), bio::WireError);
}

}  // namespace
}  // namespace rck::rckskel
