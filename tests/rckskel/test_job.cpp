#include "rck/rckskel/job.hpp"

#include <gtest/gtest.h>

namespace rck::rckskel {
namespace {

bio::Bytes some_payload() {
  bio::WireWriter w;
  w.str("job payload");
  w.u32(99);
  return w.take();
}

TEST(JobCodec, ReadyRoundTrip) {
  const Message m = decode_message(encode_ready());
  EXPECT_EQ(m.type, MsgType::Ready);
  EXPECT_TRUE(m.payload.empty());
}

TEST(JobCodec, TerminateRoundTrip) {
  const Message m = decode_message(encode_terminate());
  EXPECT_EQ(m.type, MsgType::Terminate);
}

TEST(JobCodec, JobRoundTrip) {
  Job job;
  job.id = 1234567890123ull;
  job.payload = some_payload();
  const Message m = decode_message(encode_job(job));
  EXPECT_EQ(m.type, MsgType::Job);
  EXPECT_EQ(m.job_id, job.id);
  EXPECT_EQ(m.payload, job.payload);
}

TEST(JobCodec, ResultRoundTrip) {
  const bio::Bytes payload = some_payload();
  const Message m = decode_message(encode_result(77, payload));
  EXPECT_EQ(m.type, MsgType::Result);
  EXPECT_EQ(m.job_id, 77u);
  EXPECT_EQ(m.payload, payload);
}

TEST(JobCodec, EmptyPayloadJob) {
  Job job;
  job.id = 5;
  const Message m = decode_message(encode_job(job));
  EXPECT_EQ(m.job_id, 5u);
  EXPECT_TRUE(m.payload.empty());
}

// Hand-craft a frame with a *valid* checksum around the given body, so the
// tests below exercise the post-checksum validation too.
bio::Bytes sealed(const bio::Bytes& body) {
  bio::WireWriter w;
  w.u32(wire_checksum(body));
  w.raw(body);
  return w.take();
}

TEST(JobCodec, UnknownTypeThrows) {
  bio::WireWriter w;
  w.u8(9);
  EXPECT_THROW(decode_message(sealed(w.take())), bio::WireError);
}

TEST(JobCodec, TruncatedJobThrows) {
  bio::WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::Job));
  w.u32(1);  // not a full u64 id
  EXPECT_THROW(decode_message(sealed(w.take())), bio::WireError);
}

TEST(JobCodec, EmptyBufferThrows) {
  EXPECT_THROW(decode_message(bio::Bytes{}), bio::WireError);
}

TEST(JobCodec, FrameShorterThanHeaderThrows) {
  // Fewer bytes than checksum + type can never be a frame.
  EXPECT_THROW(decode_message(bio::Bytes(3, std::byte{0})), bio::WireError);
}

TEST(JobCodec, SingleFlippedBitFailsChecksum) {
  Job job;
  job.id = 42;
  job.payload = some_payload();
  bio::Bytes frame = encode_job(job);
  for (std::size_t pos : {std::size_t{4}, frame.size() / 2, frame.size() - 1}) {
    bio::Bytes mangled = frame;
    mangled[pos] ^= std::byte{0x01};
    EXPECT_THROW(decode_message(std::move(mangled)), bio::WireError) << pos;
  }
}

TEST(JobCodec, CorruptedChecksumFieldItselfThrows) {
  bio::Bytes frame = encode_ready();
  frame[0] ^= std::byte{0xFF};
  EXPECT_THROW(decode_message(std::move(frame)), bio::WireError);
}

TEST(JobCodec, TruncatedTailFailsChecksum) {
  Job job;
  job.id = 42;
  job.payload = some_payload();
  bio::Bytes frame = encode_job(job);
  frame.pop_back();
  EXPECT_THROW(decode_message(std::move(frame)), bio::WireError);
}

TEST(JobCodec, ChecksumIsDeterministicAndPositionSensitive) {
  const bio::Bytes a = some_payload();
  EXPECT_EQ(wire_checksum(a), wire_checksum(a));
  const bio::Bytes b(a.rbegin(), a.rend());  // same bytes, reversed order
  EXPECT_NE(wire_checksum(a), wire_checksum(b));  // FNV-1a is order-sensitive
}

}  // namespace
}  // namespace rck::rckskel
