// Master failover: checkpoint replication, heartbeat-timeout detection,
// standby takeover, and the no-rerun guarantee for checkpointed jobs.
//
// Topology in every test: rank 0 master, ranks 1..nslaves slaves, rank
// nslaves+1 the standby — the same layout rckalign uses for master_ft runs.
#include "rck/rckskel/skeletons.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "rck/bio/serialize.hpp"
#include "rck/scc/runtime.hpp"

namespace rck::rckskel {
namespace {

using bio::Bytes;
using bio::WireReader;
using bio::WireWriter;

std::vector<Job> numbered_jobs(std::uint32_t count) {
  std::vector<Job> jobs;
  for (std::uint32_t k = 0; k < count; ++k) {
    Job j;
    j.id = k;
    WireWriter w;
    w.u32(k + 1);
    j.payload = w.take();
    j.cost_hint = k + 1;
    jobs.push_back(std::move(j));
  }
  return jobs;
}

std::uint32_t result_value(const JobResult& r) {
  WireReader rd(r.payload);
  return rd.u32();
}

MasterFtOptions test_mft_options(int nslaves) {
  MasterFtOptions o;
  o.ft.ready_timeout = 10 * noc::kPsPerMs;
  o.ft.lease = 20 * noc::kPsPerMs;
  o.ft.master_silence_timeout = 10 * noc::kPsPerMs;
  o.ft.standby_ue = nslaves + 1;
  o.checkpoint_every = 4;
  o.heartbeat_period = 2 * noc::kPsPerMs;
  o.heartbeat_timeout = 10 * noc::kPsPerMs;
  return o;
}

struct MftRun {
  noc::SimTime makespan = 0;
  std::vector<JobResult> results;     ///< master's copy (empty if it crashed)
  std::optional<std::vector<JobResult>> standby_results;  ///< set on takeover
  FarmReport master_report;
  FarmReport standby_report;
  std::vector<int> executions;  ///< per-job worker execution count

  /// Whichever side finished the farm.
  const std::vector<JobResult>& final_results() const {
    return standby_results ? *standby_results : results;
  }
  const FarmReport& final_report() const {
    return standby_results ? standby_report : master_report;
  }
};

MftRun run_mft(const scc::FaultPlan& plan, std::uint32_t njobs, int nslaves,
               const MasterFtOptions& opts) {
  scc::RuntimeConfig cfg;
  cfg.faults = plan;
  scc::SpmdRuntime rt(cfg);
  MftRun out;
  // Per-job execution counters, shared across slave host threads.
  auto counters = std::make_unique<std::atomic<int>[]>(njobs);
  for (std::uint32_t k = 0; k < njobs; ++k) counters[k] = 0;
  const Worker worker = [&counters](rcce::Comm& comm, const Bytes& payload) {
    WireReader r(payload);
    const std::uint32_t n = r.u32();
    counters[n - 1].fetch_add(1, std::memory_order_relaxed);
    comm.charge_time(static_cast<noc::SimTime>(n % 5 + 1) * noc::kPsPerMs);
    WireWriter w;
    w.u32(2 * n);
    return w.take();
  };
  out.makespan = rt.run(nslaves + 2, [&](scc::CoreCtx& ctx) {
    rcce::Comm comm(ctx);
    std::vector<int> slaves;
    for (int s = 1; s <= nslaves; ++s) slaves.push_back(s);
    if (comm.ue() == 0) {
      const Task task = Task::make_par(slaves, numbered_jobs(njobs));
      out.results = farm_ft_master(comm, task, opts, &out.master_report);
    } else if (comm.ue() == nslaves + 1) {
      const Task task = Task::make_par(slaves, numbered_jobs(njobs));
      out.standby_results =
          farm_standby(comm, 0, task, opts, &out.standby_report);
    } else {
      farm_slave_ft(comm, 0, worker, opts.ft);
    }
  });
  out.executions.resize(njobs);
  for (std::uint32_t k = 0; k < njobs; ++k) out.executions[k] = counters[k];
  return out;
}

void expect_all_jobs_done(const std::vector<JobResult>& results,
                          std::uint32_t njobs) {
  ASSERT_EQ(results.size(), njobs);
  std::set<std::uint64_t> ids;
  for (const JobResult& r : results) {
    ids.insert(r.id);
    EXPECT_EQ(result_value(r), 2 * (static_cast<std::uint32_t>(r.id) + 1));
  }
  EXPECT_EQ(ids.size(), njobs);  // every job exactly once, values correct
}

TEST(MasterFt, CleanRunReplicatesAndTerminatesStandby) {
  const MftRun run = run_mft({}, 20, 4, test_mft_options(4));
  expect_all_jobs_done(run.results, 20);
  EXPECT_FALSE(run.standby_results.has_value());  // TERMINATE, no takeover
  EXPECT_EQ(run.master_report.failovers, 0u);
  EXPECT_EQ(run.master_report.resumed_jobs, 0u);
  // Baseline + cadence + final snapshot all counted.
  EXPECT_GE(run.master_report.checkpoints, 20u / 4u);
  // No fault, no retry: every job ran exactly once.
  for (int n : run.executions) EXPECT_EQ(n, 1);
}

TEST(MasterFt, MasterMustNameAStandby) {
  scc::SpmdRuntime rt{scc::RuntimeConfig{}};
  MasterFtOptions opts;  // standby_ue left at -1
  EXPECT_THROW(rt.run(2,
                      [&](scc::CoreCtx& ctx) {
                        rcce::Comm comm(ctx);
                        if (comm.ue() == 0) {
                          const Task task =
                              Task::make_par({1}, numbered_jobs(2));
                          (void)farm_ft_master(comm, task, opts);
                        }
                      }),
               SkelError);
}

// The tentpole acceptance criterion: a master crash at any scheduled point
// completes via standby failover with the full, correct result set.
class MasterFtCrash : public ::testing::TestWithParam<noc::SimTime> {};

TEST_P(MasterFtCrash, AllJobsCompleteViaFailover) {
  scc::FaultPlan plan;
  plan.crashes.push_back({0, GetParam()});
  const int nslaves = 4;
  const std::uint32_t njobs = 20;
  const MftRun run = run_mft(plan, njobs, nslaves, test_mft_options(nslaves));
  ASSERT_TRUE(run.standby_results.has_value());
  expect_all_jobs_done(*run.standby_results, njobs);
  EXPECT_EQ(run.standby_report.failovers, 1u);
  // Checkpointed jobs are never re-run: only jobs in flight at the crash
  // (bounded by the slave count) plus results accepted since the last
  // snapshot (bounded by the checkpoint cadence) can execute twice.
  int reruns = 0;
  for (int n : run.executions) {
    EXPECT_GE(n, 1);
    reruns += n - 1;
  }
  EXPECT_LE(reruns,
            nslaves + static_cast<int>(test_mft_options(nslaves)
                                           .checkpoint_every) - 1);
}

INSTANTIATE_TEST_SUITE_P(CrashPhases, MasterFtCrash,
                         ::testing::Values(noc::SimTime{0},     // pre-dispatch
                                           2 * noc::kPsPerMs,   // early
                                           8 * noc::kPsPerMs,   // mid-run
                                           12 * noc::kPsPerMs));  // late

TEST(MasterFt, EventScheduledMasterCrashFailsOver) {
  // Crash pinned to a protocol step (the K-th fired event) instead of a
  // simulated time — deterministic under both serial and parallel hosts.
  scc::FaultPlan plan;
  plan.event_crashes.push_back({0, 40});
  const MftRun run = run_mft(plan, 20, 4, test_mft_options(4));
  ASSERT_TRUE(run.standby_results.has_value());
  expect_all_jobs_done(*run.standby_results, 20);
  EXPECT_EQ(run.standby_report.failovers, 1u);
}

TEST(MasterFt, LateCrashResumesFromCheckpointWithoutRerun) {
  // Checkpoint after every result: by the time the master dies mid-run, the
  // standby's snapshot carries completed jobs which must not run again.
  MasterFtOptions opts = test_mft_options(4);
  opts.checkpoint_every = 1;
  scc::FaultPlan plan;
  plan.crashes.push_back({0, 12 * noc::kPsPerMs});
  const MftRun run = run_mft(plan, 20, 4, opts);
  ASSERT_TRUE(run.standby_results.has_value());
  expect_all_jobs_done(*run.standby_results, 20);
  EXPECT_GT(run.standby_report.resumed_jobs, 0u);
  int reruns = 0;
  for (int n : run.executions) reruns += n - 1;
  EXPECT_LE(reruns, 4);  // only in-flight jobs, never checkpointed ones
}

TEST(MasterFt, MasterAndSlaveCrashCompose) {
  scc::FaultPlan plan;
  plan.crashes.push_back({2, 3 * noc::kPsPerMs});   // slave dies first
  plan.crashes.push_back({0, 15 * noc::kPsPerMs});  // then the master
  const MftRun run = run_mft(plan, 20, 4, test_mft_options(4));
  ASSERT_TRUE(run.standby_results.has_value());
  expect_all_jobs_done(*run.standby_results, 20);
  EXPECT_EQ(run.standby_report.failovers, 1u);
  // The slave blacklist survives the failover (carried in the checkpoint or
  // re-detected by the promoted standby's liveness probe).
  bool found = false;
  for (int ue : run.standby_report.dead_ues) found |= (ue == 2);
  EXPECT_TRUE(found);
}

TEST(MasterFt, StandbyCrashLeavesMasterUnharmed) {
  // Losing the safety net must not take the farm down with it.
  scc::FaultPlan plan;
  plan.crashes.push_back({5, 5 * noc::kPsPerMs});  // the standby itself
  const MftRun run = run_mft(plan, 20, 4, test_mft_options(4));
  expect_all_jobs_done(run.results, 20);
  EXPECT_EQ(run.master_report.failovers, 0u);
}

TEST(MasterFt, RestartedSlaveRejoinsTheFarm) {
  // Lease 20ms: the master blacklists the silent slave at ~22ms, then the
  // revived core (fresh READY) re-enlists via the rejoin path.
  scc::FaultPlan plan;
  plan.crashes.push_back({2, 2 * noc::kPsPerMs});
  plan.restarts.push_back({2, 30 * noc::kPsPerMs});
  const MftRun run = run_mft(plan, 20, 4, test_mft_options(4));
  expect_all_jobs_done(run.results, 20);
  // The crash was observed (blacklist) even though the core later revived.
  bool found = false;
  for (int ue : run.master_report.dead_ues) found |= (ue == 2);
  EXPECT_TRUE(found);
}

// Same FaultPlan, same task: bit-identical makespan, results and report —
// the property the chaos harness replays rely on.
TEST(MasterFt, DeterministicReplayAcrossFailover) {
  scc::FaultPlan plan;
  plan.crashes.push_back({0, 10 * noc::kPsPerMs});
  plan.crashes.push_back({3, 4 * noc::kPsPerMs});
  const MftRun a = run_mft(plan, 20, 4, test_mft_options(4));
  const MftRun b = run_mft(plan, 20, 4, test_mft_options(4));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_TRUE(a.final_report() == b.final_report());
  ASSERT_EQ(a.final_results().size(), b.final_results().size());
  for (std::size_t i = 0; i < a.final_results().size(); ++i) {
    EXPECT_TRUE(a.final_results()[i] == b.final_results()[i]);
  }
}

}  // namespace
}  // namespace rck::rckskel
