// Property tests for the skeleton-protocol frame codec.
//
// Complements the example-based tests in test_job.cpp: random payloads must
// survive an encode/decode round trip byte-for-byte, and any single flipped
// bit anywhere in a frame — checksum field, type byte, or body — must be
// rejected by the FNV-1a checksum (bio::WireError), never decoded into a
// plausible-but-wrong message. This is the integrity property the
// fault-tolerant farm's corrupt-frame handling rests on.
#include "rck/rckskel/job.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "rck/bio/serialize.hpp"

namespace rck::rckskel {
namespace {

bio::Bytes random_payload(std::mt19937_64& rng, std::size_t size) {
  bio::Bytes p(size);
  for (auto& b : p) b = static_cast<std::byte>(rng() & 0xff);
  return p;
}

// Every frame the protocol can produce for one RNG draw.
std::vector<bio::Bytes> sample_frames(std::mt19937_64& rng) {
  const std::size_t size = static_cast<std::size_t>(rng() % 2048);
  Job job;
  job.id = rng();
  job.cost_hint = rng();
  job.payload = random_payload(rng, size);
  return {encode_ready(), encode_terminate(), encode_job(job),
          encode_result(rng(), random_payload(rng, size / 2))};
}

TEST(JobCodecProperty, RandomPayloadsRoundTrip) {
  std::mt19937_64 rng(20260805);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t size = static_cast<std::size_t>(rng() % 4096);
    Job job;
    job.id = rng();
    job.cost_hint = rng();
    job.payload = random_payload(rng, size);
    const Message m = decode_message(encode_job(job));
    EXPECT_EQ(m.type, MsgType::Job);
    EXPECT_EQ(m.job_id, job.id);
    EXPECT_EQ(m.payload, job.payload);

    const std::uint64_t rid = rng();
    const bio::Bytes rp = random_payload(rng, size / 3);
    const Message r = decode_message(encode_result(rid, rp));
    EXPECT_EQ(r.type, MsgType::Result);
    EXPECT_EQ(r.job_id, rid);
    EXPECT_EQ(r.payload, rp);
  }
}

TEST(JobCodecProperty, EverySingleBitFlipIsRejectedInSmallFrames) {
  // Small frames: exhaustively flip every bit of every frame type.
  std::mt19937_64 rng(1);
  Job job;
  job.id = 0xDEADBEEFCAFEull;
  job.payload = random_payload(rng, 24);
  const std::vector<bio::Bytes> frames = {encode_ready(), encode_terminate(),
                                          encode_job(job),
                                          encode_result(42, job.payload)};
  for (const bio::Bytes& frame : frames) {
    for (std::size_t bit = 0; bit < frame.size() * 8; ++bit) {
      bio::Bytes corrupt = frame;
      corrupt[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
      EXPECT_THROW(decode_message(std::move(corrupt)), bio::WireError)
          << "frame size " << frame.size() << " bit " << bit;
    }
  }
}

TEST(JobCodecProperty, SampledBitFlipsRejectedInLargeRandomFrames) {
  std::mt19937_64 rng(77);
  for (int iter = 0; iter < 20; ++iter) {
    for (const bio::Bytes& frame : sample_frames(rng)) {
      for (int k = 0; k < 32; ++k) {
        const std::size_t bit = rng() % (frame.size() * 8);
        bio::Bytes corrupt = frame;
        corrupt[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
        EXPECT_THROW(decode_message(std::move(corrupt)), bio::WireError)
            << "iter " << iter << " frame size " << frame.size() << " bit "
            << bit;
      }
    }
  }
}

TEST(JobCodecProperty, TruncationsRejected) {
  std::mt19937_64 rng(5);
  Job job;
  job.id = 7;
  job.payload = random_payload(rng, 64);
  const bio::Bytes frame = encode_job(job);
  for (std::size_t len = 0; len < frame.size(); ++len) {
    bio::Bytes cut(frame.begin(),
                   frame.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(decode_message(std::move(cut)), bio::WireError) << len;
  }
}

}  // namespace
}  // namespace rck::rckskel
